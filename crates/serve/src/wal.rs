//! Write-ahead log and checkpoint/recovery for the serving engine.
//!
//! An on-call RCA service must survive being killed mid-stream: redeploys,
//! OOM kills and node failures all land during exactly the incident storms
//! the service exists for. The engine therefore journals its durable
//! state transitions — in-order event commits, per-shard online-index
//! epoch publishes and OCE feedback corrections — as JSON lines, and
//! periodically folds the journal into a single [`WalRecord::Checkpoint`]
//! carrying the committed records plus a serialized [`ShardedCheckpoint`]
//! of the retrieval index.
//!
//! **Recovery invariant**: a run resumed from a WAL produces a prediction
//! log byte-identical to the uninterrupted run, for any worker count and
//! any crash point. Three properties make this hold:
//!
//! 1. Commits are journaled at the in-order watermark, so the WAL always
//!    holds a *prefix* of the stream's records.
//! 2. The JSON shim prints `f64` with shortest-round-trip formatting, so
//!    every confidence/completeness survives the round trip exactly and
//!    re-rendered [`EventRecord::log_line`]s are byte-identical.
//! 3. Recovery re-inserts index entries in commit order — the
//!    deterministic category router reassigns shards and global sequence
//!    numbers identically — and publishes every shard once; epoch-batch
//!    boundaries are immaterial to retrieval because visibility is
//!    filtered per query by `visible_from`. A checkpoint therefore
//!    restores correctly into *any* shard count, and [`WalRecord::Epoch`]
//!    records are tagged with the shard they published purely for
//!    journal/epoch-counter continuity.
//!
//! The journal has two backends behind one record API:
//!
//! - the default in-memory line buffer (durability to disk is one
//!   `write` of [`WriteAheadLog::serialized`]), used by tests and the
//!   virtual-time benches;
//! - a durable fsync'd append-only file ([`WriteAheadLog::open_durable`]):
//!   every [`WriteAheadLog::append`] writes its line and `fsync`s before
//!   returning, checkpoint folding rewrites through a temp file + atomic
//!   rename, and reopening a journal with a torn final line — the
//!   signature of a crash mid-append — truncates the file back to the
//!   parseable prefix.
//!
//! Both backends parse identically: [`WriteAheadLog::load`] tolerates a
//! torn final line but rejects corruption anywhere else. A durable-sink
//! I/O failure never aborts the engine: the sink is detached, the failure
//! is counted in [`WriteAheadLog::sink_failures`], and the journal
//! degrades to in-memory operation.
//!
//! **Multi-tenancy**: every record is tagged with its owning
//! [`TenantId`], and sequence numbers are *tenant-local* — each tenant's
//! commits form their own gapless prefix. [`WriteAheadLog::split_tenants`]
//! partitions an interleaved journal into per-tenant journals,
//! [`WriteAheadLog::merge_tenants`] interleaves per-tenant journals back
//! by virtual anchor time (ties broken by tenant id, then journal order),
//! and [`WriteAheadLog::recover_tenants`] recovers each tenant's stream
//! independently — a torn tail in one tenant's stream rolls back only
//! that tenant's watermark. [`WriteAheadLog::adopt`] writes a merged
//! journal back through an existing durable sink.

use crate::engine::EventRecord;
use rcacopilot_core::retrieval::{CheckpointEntry, ShardedCheckpoint};
use rcacopilot_telemetry::ids::TenantId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// One journaled state transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// Event `seq` committed at the in-order watermark. `entry` carries
    /// the online-index insertion performed at commit time (`None` for
    /// shed/failed events or frozen-index mode). The owning tenant rides
    /// on the committed record itself.
    Commit {
        /// Tenant-local stream sequence number (== position in the
        /// tenant's record prefix).
        seq: usize,
        /// The committed record.
        record: EventRecord,
        /// Index entry inserted at this commit, if any.
        entry: Option<CheckpointEntry>,
    },
    /// Shard `shard` of tenant `tenant`'s online index published epoch
    /// `epoch` after commit `committed`.
    Epoch {
        /// Shard that published.
        shard: usize,
        /// The shard's published epoch number.
        epoch: u64,
        /// Commits covered by the epoch.
        committed: usize,
        /// Tenant whose index partition published.
        tenant: TenantId,
    },
    /// An OCE corrected a served prediction: the corrected entry is
    /// re-inserted into its category's shard on replay, visible to
    /// queries from its `visible_from` watermark.
    Feedback {
        /// The corrected entry and its visibility watermark.
        entry: CheckpointEntry,
        /// Tenant whose serving history is corrected.
        tenant: TenantId,
    },
    /// A checkpoint folding every earlier record of one tenant's stream:
    /// the tenant's full committed prefix plus its serialized index
    /// state.
    Checkpoint {
        /// Number of committed events in the prefix.
        committed: usize,
        /// The committed records, stream order.
        records: Vec<EventRecord>,
        /// Serialized online-index state (`None` in frozen-index mode).
        index: Option<ShardedCheckpoint>,
        /// Tenant whose stream the checkpoint folds.
        tenant: TenantId,
    },
}

impl WalRecord {
    /// The tenant stream this record belongs to. [`TenantId::default`]
    /// (tenant 0) is the single-tenant deployment.
    pub fn tenant(&self) -> TenantId {
        match self {
            WalRecord::Commit { record, .. } => record.tenant,
            WalRecord::Epoch { tenant, .. }
            | WalRecord::Feedback { tenant, .. }
            | WalRecord::Checkpoint { tenant, .. } => *tenant,
        }
    }
}

/// Why a WAL could not be read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// A line before the final one failed to parse (mid-log corruption —
    /// a torn *final* line is tolerated as a crash mid-append).
    Corrupt {
        /// Zero-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// Commit sequence numbers skipped or repeated a slot.
    Gap {
        /// The next sequence number the prefix needed.
        expected: usize,
        /// The sequence number found.
        found: usize,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Corrupt { line, message } => {
                write!(f, "corrupt WAL line {line}: {message}")
            }
            WalError::Gap { expected, found } => {
                write!(f, "WAL commit gap: expected seq {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for WalError {}

/// What recovery reconstructed from a journal.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Committed event records, stream order (the prefix `0..committed`).
    pub records: Vec<EventRecord>,
    /// Index checkpoint to rebuild from, if one was folded.
    pub checkpoint: Option<ShardedCheckpoint>,
    /// Index entries journaled after the checkpoint — commits and
    /// feedback corrections interleaved — in journal order.
    pub entries: Vec<CheckpointEntry>,
    /// Last journaled epoch number per shard (absent if the shard never
    /// published after the checkpoint).
    pub shard_epochs: BTreeMap<usize, u64>,
}

impl Recovery {
    /// Number of committed events recovered.
    pub fn committed(&self) -> usize {
        self.records.len()
    }

    /// True when the journal held nothing (a fresh run).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.checkpoint.is_none()
    }
}

/// The durable file behind a [`WriteAheadLog::open_durable`] journal.
#[derive(Debug)]
struct FileSink {
    file: File,
    path: PathBuf,
}

impl FileSink {
    /// Appends one serialized line and syncs it to stable storage before
    /// returning — the commit is durable once `append_line` succeeds.
    /// I/O failures bubble up so the journal can detach the sink and
    /// carry on in memory instead of aborting mid-storm.
    fn append_line(&mut self, line: &str) -> std::io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.sync_data()
    }

    /// Atomically replaces the file's contents (checkpoint folding):
    /// write-and-sync a temp file, then rename it over the journal, so a
    /// crash mid-fold leaves either the old journal or the new one —
    /// never a half-written mix.
    fn rewrite(&mut self, contents: &str) -> std::io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(contents.as_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }
}

/// The engine's journal: an append-only buffer of serialized
/// [`WalRecord`] lines with checkpoint folding, optionally mirrored to a
/// durable fsync'd file ([`WriteAheadLog::open_durable`]).
#[derive(Debug, Default)]
pub struct WriteAheadLog {
    lines: Vec<String>,
    /// Commits folded into the last installed checkpoint.
    checkpointed: usize,
    /// Durable backend, when opened via [`WriteAheadLog::open_durable`].
    sink: Option<FileSink>,
    /// Durable-sink I/O failures absorbed by detaching the sink. The
    /// in-memory journal stays consistent; the engine folds this into
    /// its fault counters at report time.
    sink_failures: u64,
}

impl Clone for WriteAheadLog {
    /// Clones the in-memory journal state. The clone is detached from any
    /// durable file backend: two handles appending to one file would
    /// interleave corruptly, so only the original keeps the sink.
    fn clone(&self) -> Self {
        WriteAheadLog {
            lines: self.lines.clone(),
            checkpointed: self.checkpointed,
            sink: None,
            sink_failures: self.sink_failures,
        }
    }
}

impl WriteAheadLog {
    /// An empty in-memory journal.
    pub fn new() -> Self {
        WriteAheadLog::default()
    }

    /// Opens (or creates) a durable journal at `path`. Existing contents
    /// are parsed exactly like [`WriteAheadLog::load`] — a torn final
    /// line is dropped **and truncated off the file**, so the disk state
    /// always equals the parseable prefix. Every subsequent
    /// [`WriteAheadLog::append`] writes through to the file and `fsync`s
    /// before returning.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from reading/creating the file, or an
    /// [`std::io::ErrorKind::InvalidData`] error wrapping the
    /// [`WalError`] when the journal is corrupt before its final line.
    pub fn open_durable(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut contents = String::new();
        if path.exists() {
            File::open(&path)?.read_to_string(&mut contents)?;
        }
        let mut wal = WriteAheadLog::load(&contents)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let good = wal.serialized();
        if good != contents {
            // Torn tail (or stray blank lines): truncate the file back to
            // the parseable prefix so append resumes from a clean state.
            std::fs::write(&path, &good)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        file.sync_data()?;
        wal.sink = Some(FileSink { file, path });
        Ok(wal)
    }

    /// True when this journal writes through to a durable file.
    pub fn is_durable(&self) -> bool {
        self.sink.is_some()
    }

    /// Appends one record. On a durable journal the record is fsync'd to
    /// the backing file before this returns; a sink I/O failure detaches
    /// the sink (counted in [`WriteAheadLog::sink_failures`]) and the
    /// journal degrades to in-memory rather than aborting the engine.
    pub fn append(&mut self, record: &WalRecord) {
        let line = serde_json::to_string(record).expect("WAL records are serializable");
        if let Some(sink) = self.sink.as_mut() {
            if sink.append_line(&line).is_err() {
                self.sink = None;
                self.sink_failures += 1;
            }
        }
        self.lines.push(line);
    }

    /// Durable-sink I/O failures absorbed so far (each one detaches the
    /// sink, so the count is 0 or 1 per open; it accumulates across
    /// [`WriteAheadLog::adopt`]).
    pub fn sink_failures(&self) -> u64 {
        self.sink_failures
    }

    /// Replaces the whole journal with a single checkpoint record for
    /// `tenant`'s stream — the journal-side compaction that bounds replay
    /// work. On a durable journal the file is rewritten through a temp
    /// file + atomic rename; a rewrite failure detaches the sink and is
    /// counted like an append failure.
    pub fn install_checkpoint(
        &mut self,
        records: Vec<EventRecord>,
        index: Option<ShardedCheckpoint>,
        tenant: TenantId,
    ) {
        let committed = records.len();
        self.lines.clear();
        let record = WalRecord::Checkpoint {
            committed,
            records,
            index,
            tenant,
        };
        self.lines
            .push(serde_json::to_string(&record).expect("WAL records are serializable"));
        self.checkpointed = committed;
        let contents = self.serialized();
        if let Some(sink) = self.sink.as_mut() {
            if sink.rewrite(&contents).is_err() {
                self.sink = None;
                self.sink_failures += 1;
            }
        }
    }

    /// Commits folded into the last installed checkpoint.
    pub fn checkpointed(&self) -> usize {
        self.checkpointed
    }

    /// Number of journal lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The durable byte form: one JSON record per line.
    pub fn serialized(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Parses a serialized journal. A final line that fails to parse is
    /// dropped (crash mid-append); failures anywhere else are
    /// [`WalError::Corrupt`].
    pub fn load(serialized: &str) -> Result<Self, WalError> {
        let lines: Vec<&str> = serialized
            .lines()
            .filter(|l| !l.trim().is_empty())
            .collect();
        let mut kept: Vec<String> = Vec::with_capacity(lines.len());
        let mut checkpointed = 0;
        for (i, line) in lines.iter().enumerate() {
            match serde_json::from_str::<WalRecord>(line) {
                Ok(record) => {
                    if let WalRecord::Checkpoint { committed, .. } = &record {
                        checkpointed = *committed;
                    }
                    kept.push((*line).to_string());
                }
                // Torn final line: crash mid-append, drop it.
                Err(_) if i + 1 == lines.len() => {}
                Err(e) => {
                    return Err(WalError::Corrupt {
                        line: i,
                        message: e.to_string(),
                    });
                }
            }
        }
        Ok(WriteAheadLog {
            lines: kept,
            checkpointed,
            sink: None,
            sink_failures: 0,
        })
    }

    /// Parses every journaled record.
    pub fn records(&self) -> Result<Vec<WalRecord>, WalError> {
        self.lines
            .iter()
            .enumerate()
            .map(|(i, line)| {
                serde_json::from_str(line).map_err(|e| WalError::Corrupt {
                    line: i,
                    message: e.to_string(),
                })
            })
            .collect()
    }

    /// Folds the journal into the state a resumed run starts from. The
    /// commit prefix must be gapless ([`WalError::Gap`] otherwise).
    pub fn recover(&self) -> Result<Recovery, WalError> {
        let mut recovery = Recovery::default();
        for record in self.records()? {
            match record {
                WalRecord::Checkpoint {
                    committed: _,
                    records,
                    index,
                    tenant: _,
                } => {
                    recovery.records = records;
                    recovery.checkpoint = index;
                    recovery.entries.clear();
                    recovery.shard_epochs.clear();
                }
                WalRecord::Commit { seq, record, entry } => {
                    if seq != recovery.records.len() {
                        return Err(WalError::Gap {
                            expected: recovery.records.len(),
                            found: seq,
                        });
                    }
                    recovery.records.push(record);
                    recovery.entries.extend(entry);
                }
                WalRecord::Feedback { entry, tenant: _ } => {
                    recovery.entries.push(entry);
                }
                WalRecord::Epoch {
                    shard,
                    epoch,
                    committed: _,
                    tenant: _,
                } => {
                    recovery.shard_epochs.insert(shard, epoch);
                }
            }
        }
        Ok(recovery)
    }

    /// Splits a multi-tenant journal into one in-memory journal per
    /// tenant, each preserving its tenant's record order. A record's
    /// owner comes from [`WalRecord::tenant`]; a single-tenant journal
    /// splits into one part keyed by [`TenantId::default`].
    pub fn split_tenants(&self) -> Result<BTreeMap<TenantId, WriteAheadLog>, WalError> {
        let mut parts: BTreeMap<TenantId, WriteAheadLog> = BTreeMap::new();
        for (line, record) in self.lines.iter().zip(self.records()?) {
            let part = parts.entry(record.tenant()).or_default();
            if let WalRecord::Checkpoint { committed, .. } = &record {
                part.checkpointed = *committed;
            }
            part.lines.push(line.clone());
        }
        Ok(parts)
    }

    /// Recovers each tenant's stream independently: the journal is split
    /// by owner and every part folds through [`WriteAheadLog::recover`]
    /// with its own tenant-local gap check. This is the bulkhead property
    /// a shared journal must give recovery: a torn tail only ever drops
    /// the final journal line, so only the tenant that owned it rolls
    /// back — every other tenant's committed watermark is untouched.
    ///
    /// [`WriteAheadLog::recover`] itself remains the single-tenant path;
    /// calling it on an interleaved journal fails its global gap check by
    /// design (tenant-local sequence numbers restart at 0).
    pub fn recover_tenants(&self) -> Result<BTreeMap<TenantId, Recovery>, WalError> {
        self.split_tenants()?
            .into_iter()
            .map(|(tenant, part)| Ok((tenant, part.recover()?)))
            .collect()
    }

    /// Interleaves per-tenant journals into one multi-tenant journal.
    ///
    /// Ordering is by *virtual-time anchor*: each record sorts at the
    /// arrival instant of the latest commit at or before it in its own
    /// stream (records ahead of any commit anchor at 0; a checkpoint
    /// anchors at its last folded record), with ties broken by tenant id
    /// and then stream position — fully deterministic, and stable within
    /// every tenant, so [`WriteAheadLog::split_tenants`] is an exact
    /// inverse. The merged journal is in-memory with `checkpointed == 0`:
    /// fold state is per-tenant and only meaningful on the parts.
    pub fn merge_tenants(
        parts: &BTreeMap<TenantId, WriteAheadLog>,
    ) -> Result<WriteAheadLog, WalError> {
        let mut keyed: Vec<(u64, u64, usize, &str)> = Vec::new();
        for (tenant, part) in parts {
            let mut anchor = 0u64;
            for (i, record) in part.records()?.iter().enumerate() {
                match record {
                    WalRecord::Commit { record, .. } => anchor = record.at.as_secs(),
                    WalRecord::Checkpoint { records, .. } => {
                        if let Some(last) = records.last() {
                            anchor = last.at.as_secs();
                        }
                    }
                    _ => {}
                }
                keyed.push((anchor, tenant.0, i, part.lines[i].as_str()));
            }
        }
        keyed.sort_unstable_by_key(|&(anchor, tenant, i, _)| (anchor, tenant, i));
        Ok(WriteAheadLog {
            lines: keyed
                .into_iter()
                .map(|(_, _, _, line)| line.to_string())
                .collect(),
            checkpointed: 0,
            sink: None,
            sink_failures: 0,
        })
    }

    /// Replaces this journal's contents with `other`'s — the write-back
    /// half of a split → per-tenant-run → merge cycle — while keeping
    /// this journal's durable sink. On a durable journal the file is
    /// rewritten atomically; a rewrite failure detaches the sink and is
    /// counted in [`WriteAheadLog::sink_failures`].
    pub fn adopt(&mut self, other: WriteAheadLog) {
        self.lines = other.lines;
        self.checkpointed = other.checkpointed;
        let contents = self.serialized();
        if let Some(sink) = self.sink.as_mut() {
            if sink.rewrite(&contents).is_err() {
                self.sink = None;
                self.sink_failures += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EventOutcome;
    use rcacopilot_telemetry::{AlertType, Severity, SimTime};

    fn shed_record(seq: usize) -> EventRecord {
        tenant_record(TenantId::default(), seq, seq as u64 * 60)
    }

    fn tenant_record(tenant: TenantId, seq: usize, at_secs: u64) -> EventRecord {
        EventRecord {
            seq,
            incident_idx: seq,
            at: SimTime::from_secs(at_secs),
            severity: Severity::Sev3,
            alert_type: AlertType::default(),
            tenant,
            outcome: EventOutcome::Shed {
                backlog_secs: 42 + seq as u64,
            },
        }
    }

    fn commit(seq: usize) -> WalRecord {
        WalRecord::Commit {
            seq,
            record: shed_record(seq),
            entry: None,
        }
    }

    fn tenant_commit(tenant: TenantId, seq: usize, at_secs: u64) -> WalRecord {
        WalRecord::Commit {
            seq,
            record: tenant_record(tenant, seq, at_secs),
            entry: None,
        }
    }

    #[test]
    fn append_serialize_load_round_trips() {
        let mut wal = WriteAheadLog::new();
        wal.append(&commit(0));
        wal.append(&commit(1));
        wal.append(&WalRecord::Epoch {
            shard: 0,
            epoch: 3,
            committed: 2,
            tenant: TenantId::default(),
        });
        wal.append(&WalRecord::Epoch {
            shard: 2,
            epoch: 5,
            committed: 2,
            tenant: TenantId::default(),
        });
        let loaded = WriteAheadLog::load(&wal.serialized()).expect("clean journal");
        assert_eq!(loaded.records().unwrap(), wal.records().unwrap());
        let recovery = loaded.recover().expect("gapless");
        assert_eq!(recovery.committed(), 2);
        assert_eq!(recovery.shard_epochs.get(&0), Some(&3));
        assert_eq!(recovery.shard_epochs.get(&2), Some(&5));
        assert_eq!(recovery.shard_epochs.get(&1), None);
        assert_eq!(recovery.records[1].log_line(), shed_record(1).log_line());
    }

    #[test]
    fn feedback_records_replay_in_journal_order() {
        use rcacopilot_core::retrieval::HistoricalEntry;
        let corrected = CheckpointEntry {
            entry: HistoricalEntry {
                id: 0,
                category: "CorrectedCategory".to_string(),
                summary: "OCE-corrected summary".to_string(),
                at: SimTime::from_secs(120),
                embedding: vec![0.5, -0.25],
            },
            visible_from: SimTime::from_secs(600),
        };
        let mut wal = WriteAheadLog::new();
        wal.append(&commit(0));
        wal.append(&WalRecord::Feedback {
            entry: corrected.clone(),
            tenant: TenantId::default(),
        });
        wal.append(&commit(1));
        let loaded = WriteAheadLog::load(&wal.serialized()).expect("clean journal");
        let recovery = loaded.recover().expect("gapless");
        assert_eq!(recovery.committed(), 2);
        assert_eq!(recovery.entries, vec![corrected.clone()]);
        // A checkpoint folds feedback into the index state like any
        // other entry: replay starts clean after it.
        wal.install_checkpoint(
            vec![shed_record(0), shed_record(1)],
            None,
            TenantId::default(),
        );
        assert!(wal.recover().unwrap().entries.is_empty());
    }

    #[test]
    fn checkpoint_folds_and_bounds_replay() {
        let mut wal = WriteAheadLog::new();
        wal.append(&commit(0));
        wal.append(&commit(1));
        wal.install_checkpoint(
            vec![shed_record(0), shed_record(1)],
            None,
            TenantId::default(),
        );
        assert_eq!(wal.len(), 1, "checkpoint replaces the journal");
        assert_eq!(wal.checkpointed(), 2);
        wal.append(&commit(2));
        let recovery = wal.recover().expect("gapless");
        assert_eq!(recovery.committed(), 3);
        assert!(recovery.checkpoint.is_none());
        assert!(!recovery.is_empty());
    }

    #[test]
    fn torn_final_line_is_dropped_but_mid_log_corruption_is_fatal() {
        let mut wal = WriteAheadLog::new();
        wal.append(&commit(0));
        wal.append(&commit(1));
        let mut torn = wal.serialized();
        torn.truncate(torn.len() - 10); // rip the tail of the last line
        let loaded = WriteAheadLog::load(&torn).expect("torn tail tolerated");
        assert_eq!(loaded.recover().unwrap().committed(), 1);

        let corrupt = format!("not json at all\n{}", wal.serialized());
        let err = WriteAheadLog::load(&corrupt).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { line: 0, .. }), "{err}");
    }

    /// A scratch path under the workspace `target/` dir, fresh per test.
    fn scratch_path(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/wal-tests");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn durable_journal_round_trips_through_the_file() {
        let path = scratch_path("round_trip.wal");
        {
            let mut wal = WriteAheadLog::open_durable(&path).expect("create");
            assert!(wal.is_durable());
            wal.append(&commit(0));
            wal.append(&commit(1));
        } // drop the handle: durability must not depend on a clean close
        let on_disk = std::fs::read_to_string(&path).expect("journal file");
        let reopened = WriteAheadLog::open_durable(&path).expect("reopen");
        assert_eq!(reopened.serialized(), on_disk);
        assert_eq!(reopened.recover().unwrap().committed(), 2);

        // Clones are in-memory snapshots: they must not share the sink.
        let clone = reopened.clone();
        assert!(!clone.is_durable());
        assert!(reopened.is_durable());
    }

    #[test]
    fn durable_reopen_truncates_a_torn_tail() {
        let path = scratch_path("torn_tail.wal");
        {
            let mut wal = WriteAheadLog::open_durable(&path).expect("create");
            wal.append(&commit(0));
            wal.append(&commit(1));
            wal.append(&commit(2));
        }
        // Crash mid-append: rip the tail of the last fsync'd line.
        let full = std::fs::read_to_string(&path).expect("journal file");
        std::fs::write(&path, &full[..full.len() - 10]).expect("tear tail");

        let mut wal = WriteAheadLog::open_durable(&path).expect("reopen");
        assert_eq!(wal.recover().unwrap().committed(), 2);
        // The file itself was truncated back to the parseable prefix...
        let truncated = std::fs::read_to_string(&path).expect("journal file");
        assert_eq!(truncated, wal.serialized());
        assert!(truncated.ends_with('\n'));
        // ...so appending resumes on a clean line boundary.
        wal.append(&commit(2));
        let reopened = WriteAheadLog::open_durable(&path).expect("reopen again");
        assert_eq!(reopened.recover().unwrap().committed(), 3);
    }

    #[test]
    fn durable_checkpoint_rewrites_the_file_atomically() {
        let path = scratch_path("checkpoint.wal");
        let mut wal = WriteAheadLog::open_durable(&path).expect("create");
        wal.append(&commit(0));
        wal.append(&commit(1));
        wal.install_checkpoint(
            vec![shed_record(0), shed_record(1)],
            None,
            TenantId::default(),
        );
        wal.append(&commit(2));

        let on_disk = std::fs::read_to_string(&path).expect("journal file");
        assert_eq!(on_disk, wal.serialized());
        assert!(
            !path.with_extension("tmp").exists(),
            "checkpoint temp file must be renamed away"
        );
        let reopened = WriteAheadLog::open_durable(&path).expect("reopen");
        let recovery = reopened.recover().expect("gapless");
        assert_eq!(recovery.committed(), 3);
        assert_eq!(reopened.checkpointed(), 2, "fold survives reopen");
    }

    #[test]
    fn durable_reopen_rejects_mid_log_corruption() {
        let path = scratch_path("corrupt.wal");
        {
            let mut wal = WriteAheadLog::open_durable(&path).expect("create");
            wal.append(&commit(0));
        }
        let good = std::fs::read_to_string(&path).expect("journal file");
        std::fs::write(&path, format!("not json at all\n{good}")).expect("corrupt");
        let err = WriteAheadLog::open_durable(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn split_and_merge_are_inverse_on_an_interleaved_journal() {
        let (a, b) = (TenantId(1), TenantId(2));
        let mut parts: BTreeMap<TenantId, WriteAheadLog> = BTreeMap::new();
        let mut wal_a = WriteAheadLog::new();
        wal_a.append(&tenant_commit(a, 0, 100));
        wal_a.append(&WalRecord::Epoch {
            shard: 0,
            epoch: 1,
            committed: 1,
            tenant: a,
        });
        wal_a.append(&tenant_commit(a, 1, 400));
        let mut wal_b = WriteAheadLog::new();
        wal_b.append(&tenant_commit(b, 0, 200));
        wal_b.append(&tenant_commit(b, 1, 300));
        parts.insert(a, wal_a);
        parts.insert(b, wal_b);

        let merged = WriteAheadLog::merge_tenants(&parts).expect("clean parts");
        // Anchored interleave: a@100, a's epoch (anchor 100), b@200,
        // b@300, a@400.
        let order: Vec<(TenantId, bool)> = merged
            .records()
            .unwrap()
            .iter()
            .map(|r| (r.tenant(), matches!(r, WalRecord::Commit { .. })))
            .collect();
        assert_eq!(
            order,
            vec![(a, true), (a, false), (b, true), (b, true), (a, true)]
        );
        // Round trip: splitting the merge recovers each part's lines.
        let split = merged.split_tenants().expect("clean journal");
        assert_eq!(split.len(), 2);
        for (tenant, part) in &parts {
            assert_eq!(split[tenant].serialized(), part.serialized());
        }
        // Per-tenant recovery sees two gapless commits each.
        let recovered = merged.recover_tenants().expect("gapless per tenant");
        assert_eq!(recovered[&a].committed(), 2);
        assert_eq!(recovered[&b].committed(), 2);
        assert_eq!(recovered[&a].shard_epochs.get(&0), Some(&1));
        // The global recover() is the single-tenant path: tenant-local
        // seqs restart at 0, so it must refuse the interleave.
        assert!(matches!(merged.recover(), Err(WalError::Gap { .. })));
    }

    #[test]
    fn torn_tail_rolls_back_only_the_owning_tenant() {
        let (a, b) = (TenantId(1), TenantId(2));
        let mut wal = WriteAheadLog::new();
        wal.append(&tenant_commit(a, 0, 100));
        wal.append(&tenant_commit(b, 0, 200));
        wal.append(&tenant_commit(b, 1, 300));
        wal.append(&tenant_commit(a, 1, 400)); // the line the crash tears
        let mut torn = wal.serialized();
        torn.truncate(torn.len() - 10);
        let loaded = WriteAheadLog::load(&torn).expect("torn tail tolerated");
        let recovered = loaded.recover_tenants().expect("gapless per tenant");
        assert_eq!(recovered[&a].committed(), 1, "owner loses the torn commit");
        assert_eq!(recovered[&b].committed(), 2, "neighbor watermark intact");
    }

    #[test]
    fn checkpoint_rewrite_failure_detaches_sink_and_counts() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/wal-tests/sink-fail");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("fail.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = WriteAheadLog::open_durable(&path).expect("create");
        wal.append(&commit(0));
        assert_eq!(wal.sink_failures(), 0);
        // Yank the directory out from under the sink: the checkpoint's
        // temp-file create must fail.
        std::fs::remove_file(&path).expect("remove journal");
        std::fs::remove_dir(&dir).expect("remove dir");
        wal.install_checkpoint(vec![shed_record(0)], None, TenantId::default());
        assert_eq!(wal.sink_failures(), 1);
        assert!(!wal.is_durable(), "failed sink is detached");
        // The in-memory journal stays consistent and writable.
        wal.append(&commit(1));
        assert_eq!(wal.recover().unwrap().committed(), 2);
        assert_eq!(wal.sink_failures(), 1, "detached sink fails only once");
    }

    #[test]
    fn adopt_replaces_contents_and_keeps_the_sink() {
        let path = scratch_path("adopt.wal");
        let mut durable = WriteAheadLog::open_durable(&path).expect("create");
        durable.append(&commit(0));
        let mut replacement = WriteAheadLog::new();
        replacement.append(&tenant_commit(TenantId(3), 0, 50));
        replacement.append(&tenant_commit(TenantId(3), 1, 90));
        durable.adopt(replacement.clone());
        assert!(durable.is_durable(), "adopt keeps the durable backend");
        assert_eq!(durable.serialized(), replacement.serialized());
        let on_disk = std::fs::read_to_string(&path).expect("journal file");
        assert_eq!(on_disk, replacement.serialized(), "adopt rewrote the file");
        let reopened = WriteAheadLog::open_durable(&path).expect("reopen");
        let recovered = reopened.recover_tenants().expect("gapless");
        assert_eq!(recovered[&TenantId(3)].committed(), 2);
    }

    #[test]
    fn commit_gaps_are_detected() {
        let mut wal = WriteAheadLog::new();
        wal.append(&commit(0));
        wal.append(&commit(2));
        let err = wal.recover().unwrap_err();
        assert_eq!(
            err,
            WalError::Gap {
                expected: 1,
                found: 2
            }
        );
        assert!(err.to_string().contains("gap"));
    }
}
