//! Write-ahead log and checkpoint/recovery for the serving engine.
//!
//! An on-call RCA service must survive being killed mid-stream: redeploys,
//! OOM kills and node failures all land during exactly the incident storms
//! the service exists for. The engine therefore journals its durable
//! state transitions — in-order event commits, per-shard online-index
//! epoch publishes and OCE feedback corrections — as checksummed JSON
//! lines, and periodically folds the journal into a single
//! [`WalRecord::Checkpoint`] carrying the committed records plus a
//! serialized [`ShardedCheckpoint`] of the retrieval index.
//!
//! **Recovery invariant**: a run resumed from a WAL produces a prediction
//! log byte-identical to the uninterrupted run, for any worker count and
//! any crash point. Three properties make this hold:
//!
//! 1. Commits are journaled at the in-order watermark, so the WAL always
//!    holds a *prefix* of the stream's records.
//! 2. The JSON shim prints `f64` with shortest-round-trip formatting, so
//!    every confidence/completeness survives the round trip exactly and
//!    re-rendered [`EventRecord::log_line`]s are byte-identical.
//! 3. Recovery re-inserts index entries in commit order — the
//!    deterministic category router reassigns shards and global sequence
//!    numbers identically — and publishes every shard once; epoch-batch
//!    boundaries are immaterial to retrieval because visibility is
//!    filtered per query by `visible_from`. A checkpoint therefore
//!    restores correctly into *any* shard count, and [`WalRecord::Epoch`]
//!    records are tagged with the shard they published purely for
//!    journal/epoch-counter continuity.
//!
//! **Record framing**: each line is `crc32c:<8 hex digits>:<JSON>`, the
//! CRC-32C of the payload guarding against bit rot and torn pages.
//! Legacy unchecksummed journals (bare JSON lines) stay readable — and
//! are preserved *verbatim* in memory, so reopening a clean legacy file
//! never rewrites it. Corruption is never fatal: a record that fails its
//! CRC or does not parse becomes a counted, quarantined dead letter
//! ([`WriteAheadLog::quarantined`]), and the loader *resyncs forward* —
//! a zeroed page that eats a newline fuses junk with the next record on
//! one physical line, so the loader scans for the next `crc32c:` frame
//! marker inside the line and salvages the suffix. Because a quarantined
//! commit breaks its tenant's gapless prefix, recovery then prunes that
//! tenant's now-unreachable later records (counted in
//! [`WriteAheadLog::dropped_records`]; a later [`WalRecord::Checkpoint`]
//! heals the stream, since it carries the full prefix) — so a loaded
//! journal is always internally consistent and
//! [`WriteAheadLog::recover`]'s strict gap check only ever fires on
//! genuine misuse, exactly as before.
//!
//! The journal writes through a byte-sink abstraction
//! ([`crate::storage::WalSink`]) with pluggable backends:
//!
//! - the default in-memory line buffer (no sink), used by tests and the
//!   virtual-time benches;
//! - a durable fsync'd append-only file ([`WriteAheadLog::open_durable`]
//!   → [`crate::storage::DurableFile`]): every
//!   [`WriteAheadLog::append`] writes its line and `fsync`s before
//!   returning, and checkpoint folding rewrites through a temp file +
//!   atomic rename;
//! - a seeded simulated disk ([`crate::storage::SimDisk`], via
//!   [`WriteAheadLog::with_sink`]) whose crash images drive the WAL
//!   torture fuzzer.
//!
//! Sink failures degrade, never abort: transient write/fsync errors are
//! retried once (counted in [`WriteAheadLog::sink_retries`] /
//! [`WriteAheadLog::fsync_failures`]); a persistent failure detaches the
//! sink ([`WriteAheadLog::sink_failures`]) and the journal carries on in
//! memory. `ENOSPC` is special-cased: the sink is *kept* and the journal
//! enters a **durability-paused** span ([`WriteAheadLog::is_paused`]) —
//! appends are withheld from the sink (counted in
//! [`WriteAheadLog::paused_appends`]) until the engine's next
//! checkpoint fold rewrites the whole journal, which both frees space
//! and lands every withheld record, resuming durability.
//!
//! **Multi-tenancy**: every record is tagged with its owning
//! [`TenantId`], and sequence numbers are *tenant-local* — each tenant's
//! commits form their own gapless prefix. [`WriteAheadLog::split_tenants`]
//! partitions an interleaved journal into per-tenant journals,
//! [`WriteAheadLog::merge_tenants`] interleaves per-tenant journals back
//! by virtual anchor time (ties broken by tenant id, then journal order),
//! and [`WriteAheadLog::recover_tenants`] recovers each tenant's stream
//! independently — a torn tail or a quarantined mid-log record in one
//! tenant's stream rolls back only that tenant's watermark.
//! [`WriteAheadLog::adopt`] writes a merged journal back through an
//! existing durable sink.

use crate::engine::EventRecord;
use crate::storage::{crc32c, is_out_of_space, DurableFile, WalSink};
use rcacopilot_core::retrieval::{CheckpointEntry, ShardedCheckpoint};
use rcacopilot_telemetry::ids::TenantId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;

/// One journaled state transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// Event `seq` committed at the in-order watermark. `entry` carries
    /// the online-index insertion performed at commit time (`None` for
    /// shed/failed events or frozen-index mode). The owning tenant rides
    /// on the committed record itself.
    Commit {
        /// Tenant-local stream sequence number (== position in the
        /// tenant's record prefix).
        seq: usize,
        /// The committed record.
        record: EventRecord,
        /// Index entry inserted at this commit, if any.
        entry: Option<CheckpointEntry>,
    },
    /// Shard `shard` of tenant `tenant`'s online index published epoch
    /// `epoch` after commit `committed`.
    Epoch {
        /// Shard that published.
        shard: usize,
        /// The shard's published epoch number.
        epoch: u64,
        /// Commits covered by the epoch.
        committed: usize,
        /// Tenant whose index partition published.
        tenant: TenantId,
    },
    /// An OCE corrected a served prediction: the corrected entry is
    /// re-inserted into its category's shard on replay, visible to
    /// queries from its `visible_from` watermark.
    Feedback {
        /// The corrected entry and its visibility watermark.
        entry: CheckpointEntry,
        /// Tenant whose serving history is corrected.
        tenant: TenantId,
    },
    /// A checkpoint folding every earlier record of one tenant's stream:
    /// the tenant's full committed prefix plus its serialized index
    /// state.
    Checkpoint {
        /// Number of committed events in the prefix.
        committed: usize,
        /// The committed records, stream order.
        records: Vec<EventRecord>,
        /// Serialized online-index state (`None` in frozen-index mode).
        index: Option<ShardedCheckpoint>,
        /// Tenant whose stream the checkpoint folds.
        tenant: TenantId,
    },
}

impl WalRecord {
    /// The tenant stream this record belongs to. [`TenantId::default`]
    /// (tenant 0) is the single-tenant deployment.
    pub fn tenant(&self) -> TenantId {
        match self {
            WalRecord::Commit { record, .. } => record.tenant,
            WalRecord::Epoch { tenant, .. }
            | WalRecord::Feedback { tenant, .. }
            | WalRecord::Checkpoint { tenant, .. } => *tenant,
        }
    }
}

/// Why a journal's records could not be interpreted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// A kept line failed to parse. Loading never produces this (corrupt
    /// lines are quarantined at load time); it guards
    /// [`WriteAheadLog::records`] against in-memory misuse.
    Corrupt {
        /// Zero-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// Commit sequence numbers skipped or repeated a slot.
    Gap {
        /// The next sequence number the prefix needed.
        expected: usize,
        /// The sequence number found.
        found: usize,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Corrupt { line, message } => {
                write!(f, "corrupt WAL line {line}: {message}")
            }
            WalError::Gap { expected, found } => {
                write!(f, "WAL commit gap: expected seq {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for WalError {}

/// A corrupt journal record quarantined as a dead letter at load time
/// instead of failing recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRecord {
    /// Zero-based physical line index in the loaded image.
    pub line: usize,
    /// Why the record was rejected (CRC mismatch, parse failure, …).
    pub reason: String,
    /// A short prefix of the rejected bytes, for forensics.
    pub preview: String,
}

/// What recovery reconstructed from a journal.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Committed event records, stream order (the prefix `0..committed`).
    pub records: Vec<EventRecord>,
    /// Index checkpoint to rebuild from, if one was folded.
    pub checkpoint: Option<ShardedCheckpoint>,
    /// Index entries journaled after the checkpoint — commits and
    /// feedback corrections interleaved — in journal order.
    pub entries: Vec<CheckpointEntry>,
    /// Last journaled epoch number per shard (absent if the shard never
    /// published after the checkpoint).
    pub shard_epochs: BTreeMap<usize, u64>,
}

impl Recovery {
    /// Number of committed events recovered.
    pub fn committed(&self) -> usize {
        self.records.len()
    }

    /// True when the journal held nothing (a fresh run).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.checkpoint.is_none()
    }
}

/// Frame marker opening every checksummed journal line.
const FRAME_PREFIX: &str = "crc32c:";

/// Frames one serialized record: `crc32c:<8 hex>:<payload>`.
fn frame(payload: &str) -> String {
    format!("{FRAME_PREFIX}{:08x}:{payload}", crc32c(payload.as_bytes()))
}

/// Parses one journal line: a checksummed frame, or a legacy bare-JSON
/// line from a pre-framing journal.
fn parse_wal_line(line: &str) -> Result<WalRecord, String> {
    let Some(rest) = line.strip_prefix(FRAME_PREFIX) else {
        return serde_json::from_str(line).map_err(|e| e.to_string());
    };
    let hex = rest
        .get(..8)
        .ok_or_else(|| "truncated crc32c frame header".to_string())?;
    if rest.as_bytes().get(8) != Some(&b':') {
        return Err("malformed crc32c frame header".to_string());
    }
    let payload = rest.get(9..).unwrap_or_default();
    let framed = u32::from_str_radix(hex, 16).map_err(|_| format!("bad crc32c hex {hex:?}"))?;
    let computed = crc32c(payload.as_bytes());
    if framed != computed {
        return Err(format!(
            "crc32c mismatch: framed {framed:08x}, computed {computed:08x}"
        ));
    }
    serde_json::from_str(payload).map_err(|e| format!("checksummed payload unparseable: {e}"))
}

/// A short, char-boundary-safe prefix of rejected bytes.
fn preview(s: &str) -> String {
    const MAX: usize = 48;
    if s.len() <= MAX {
        return s.to_string();
    }
    let mut end = MAX;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &s[..end])
}

/// The engine's journal: an append-only buffer of framed [`WalRecord`]
/// lines with checkpoint folding, optionally written through a
/// [`WalSink`] backend (durable file, simulated disk).
#[derive(Debug, Default)]
pub struct WriteAheadLog {
    lines: Vec<String>,
    /// Commits folded into the last installed checkpoint.
    checkpointed: usize,
    /// Byte-sink backend, when opened via [`WriteAheadLog::open_durable`]
    /// or [`WriteAheadLog::with_sink`].
    sink: Option<Box<dyn WalSink>>,
    /// Durability paused: the sink is attached but `ENOSPC` blocked the
    /// last operation; appends are withheld until a fold frees space.
    paused: bool,
    /// Persistent sink I/O failures absorbed by detaching the sink.
    sink_failures: u64,
    /// Sink fsync attempts that returned an error.
    fsync_failures: u64,
    /// Transient sink errors retried in place.
    sink_retries: u64,
    /// Sink operations refused with `ENOSPC`.
    enospc_events: u64,
    /// Durability-paused spans entered.
    paused_spans: u64,
    /// Appends withheld from the sink while durability was paused (or
    /// bounced by the `ENOSPC` that started the pause).
    paused_appends: u64,
    /// Corrupt records quarantined as dead letters at load time.
    quarantined: Vec<QuarantinedRecord>,
    /// Valid records dropped at load time because a quarantined record
    /// broke their tenant's commit chain.
    dropped_records: u64,
    /// A torn final line (crash mid-append) was dropped at load time.
    torn_tail: bool,
}

impl Clone for WriteAheadLog {
    /// Clones the in-memory journal state. The clone is detached from any
    /// sink backend: two handles appending to one sink would interleave
    /// corruptly, so only the original keeps it.
    fn clone(&self) -> Self {
        WriteAheadLog {
            lines: self.lines.clone(),
            checkpointed: self.checkpointed,
            sink: None,
            paused: false,
            sink_failures: self.sink_failures,
            fsync_failures: self.fsync_failures,
            sink_retries: self.sink_retries,
            enospc_events: self.enospc_events,
            paused_spans: self.paused_spans,
            paused_appends: self.paused_appends,
            quarantined: self.quarantined.clone(),
            dropped_records: self.dropped_records,
            torn_tail: self.torn_tail,
        }
    }
}

impl WriteAheadLog {
    /// An empty in-memory journal.
    pub fn new() -> Self {
        WriteAheadLog::default()
    }

    /// Opens (or creates) a durable journal at `path`, backed by a
    /// [`DurableFile`] — which first removes any stale checkpoint
    /// `.tmp` a crash mid-fold left beside the journal. Existing
    /// contents are parsed exactly like [`WriteAheadLog::load`]; if the
    /// parse dropped anything (torn tail, quarantined corruption,
    /// pruned gap), the file is rewritten to the consistent prefix so
    /// appends resume from a clean state. Every subsequent
    /// [`WriteAheadLog::append`] writes through to the file and `fsync`s
    /// before returning.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from reading, creating or rewriting the
    /// file. Corruption is *not* an error: corrupt records come back
    /// quarantined ([`WriteAheadLog::quarantined`]).
    pub fn open_durable(path: impl AsRef<Path>) -> std::io::Result<Self> {
        WriteAheadLog::with_sink(Box::new(DurableFile::open(path)?))
    }

    /// Opens a journal over an arbitrary [`WalSink`] backend: reads the
    /// sink's contents, loads them with quarantine/prune semantics, and
    /// — if anything was dropped — rewrites the sink to the consistent
    /// prefix before attaching it.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from reading or rewriting the sink.
    pub fn with_sink(mut sink: Box<dyn WalSink>) -> std::io::Result<Self> {
        let contents = sink.contents()?;
        let mut wal = WriteAheadLog::load_bytes(&contents);
        let good = wal.serialized();
        if good.as_bytes() != contents.as_slice() {
            sink.rewrite(good.as_bytes())?;
        }
        wal.sink = Some(sink);
        Ok(wal)
    }

    /// True when this journal writes through to a sink backend.
    pub fn is_durable(&self) -> bool {
        self.sink.is_some()
    }

    /// True when the journal is in a durability-paused span: the sink is
    /// attached but `ENOSPC` blocked it, and appends are withheld until
    /// a checkpoint fold frees space.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// True when the engine should fold a checkpoint *now* to free sink
    /// space and resume durability, regardless of the fold cadence.
    pub fn needs_space_fold(&self) -> bool {
        self.paused && self.sink.is_some()
    }

    fn pause(&mut self) {
        if !self.paused {
            self.paused = true;
            self.paused_spans += 1;
        }
    }

    /// Appends one record. With a sink attached the framed line is
    /// written and fsync'd before this returns — that sync is the
    /// durability barrier acknowledging the record. Failures degrade
    /// instead of aborting: transient errors are retried once, `ENOSPC`
    /// enters the durability-paused span (the sink is kept; the next
    /// successful fold re-lands everything), and a persistent error
    /// detaches the sink (counted in [`WriteAheadLog::sink_failures`]).
    pub fn append(&mut self, record: &WalRecord) {
        let payload = serde_json::to_string(record).expect("WAL records are serializable");
        let line = frame(&payload);
        self.durable_append_line(&line);
        self.lines.push(line);
    }

    /// Writes one framed line + newline through the sink with the
    /// retry/pause/detach policy.
    fn durable_append_line(&mut self, line: &str) {
        if self.paused {
            if self.sink.is_some() {
                self.paused_appends += 1;
            }
            return;
        }
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        let wrote = match sink.append(&buf) {
            Ok(()) => Ok(()),
            Err(e) if is_out_of_space(&e) => Err(e),
            Err(_) => {
                // A failed write may have landed partial bytes; the
                // retried full line then follows them. Load-time resync
                // handles exactly that shape (junk fused with a valid
                // frame on one line).
                self.sink_retries += 1;
                sink.append(&buf)
            }
        };
        let result = match wrote {
            Err(e) => Err(e),
            Ok(()) => match sink.sync() {
                Ok(()) => Ok(()),
                Err(e) => {
                    self.fsync_failures += 1;
                    if is_out_of_space(&e) {
                        Err(e)
                    } else {
                        self.sink_retries += 1;
                        match sink.sync() {
                            Ok(()) => Ok(()),
                            Err(e2) => {
                                self.fsync_failures += 1;
                                Err(e2)
                            }
                        }
                    }
                }
            },
        };
        match result {
            Ok(()) => {}
            Err(e) if is_out_of_space(&e) => {
                self.enospc_events += 1;
                self.pause();
                // The bounced record lives only in memory until the
                // next successful fold rewrites the whole journal.
                self.paused_appends += 1;
            }
            Err(_) => {
                self.sink = None;
                self.sink_failures += 1;
            }
        }
    }

    /// Rewrites the sink to the journal's current serialized form, with
    /// one retry for transient errors. Success covers every withheld
    /// append (the rewrite carries the whole journal), so it ends any
    /// durability-paused span.
    fn rewrite_sink(&mut self) {
        let contents = self.serialized();
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        let result = match sink.rewrite(contents.as_bytes()) {
            Ok(()) => Ok(()),
            Err(e) if is_out_of_space(&e) => Err(e),
            Err(_) => {
                self.sink_retries += 1;
                sink.rewrite(contents.as_bytes())
            }
        };
        match result {
            Ok(()) => self.paused = false,
            Err(e) if is_out_of_space(&e) => {
                self.enospc_events += 1;
                self.pause();
            }
            Err(_) => {
                self.sink = None;
                self.sink_failures += 1;
            }
        }
    }

    /// Persistent sink I/O failures absorbed so far (each one detaches
    /// the sink, so the count is 0 or 1 per open; it accumulates across
    /// [`WriteAheadLog::adopt`]).
    pub fn sink_failures(&self) -> u64 {
        self.sink_failures
    }

    /// Sink fsync attempts that returned an error (transient or fatal).
    pub fn fsync_failures(&self) -> u64 {
        self.fsync_failures
    }

    /// Cumulative wall nanoseconds the sink has spent inside durability
    /// barriers ([`WalSink::sync_nanos`]). 0 without a sink, and 0 for
    /// virtual backends — real time only accrues under a
    /// [`DurableFile`], which is how fsync stalls become visible in the
    /// engine's real-clock observability plane.
    pub fn fsync_nanos(&self) -> u64 {
        self.sink.as_ref().map_or(0, |s| s.sync_nanos())
    }

    /// Transient sink errors retried in place.
    pub fn sink_retries(&self) -> u64 {
        self.sink_retries
    }

    /// Sink operations refused with `ENOSPC`.
    pub fn enospc_events(&self) -> u64 {
        self.enospc_events
    }

    /// Durability-paused spans entered (see [`WriteAheadLog::is_paused`]).
    pub fn durability_paused_spans(&self) -> u64 {
        self.paused_spans
    }

    /// Appends withheld from the sink during paused spans.
    pub fn paused_appends(&self) -> u64 {
        self.paused_appends
    }

    /// Corrupt records quarantined as dead letters at load time.
    pub fn quarantined(&self) -> &[QuarantinedRecord] {
        &self.quarantined
    }

    /// Valid records dropped at load time because a quarantined record
    /// broke their tenant's commit chain (a later checkpoint heals it).
    pub fn dropped_records(&self) -> u64 {
        self.dropped_records
    }

    /// True when loading dropped a torn final line (crash mid-append).
    pub fn had_torn_tail(&self) -> bool {
        self.torn_tail
    }

    /// Replaces the whole journal with a single checkpoint record for
    /// `tenant`'s stream — the journal-side compaction that bounds replay
    /// work. With a sink attached the backend is rewritten atomically
    /// (temp file + rename for [`DurableFile`]); because the rewrite is
    /// smaller than the journal it folds, this is also how the engine
    /// answers `ENOSPC`: fold, rewrite, resume durability.
    pub fn install_checkpoint(
        &mut self,
        records: Vec<EventRecord>,
        index: Option<ShardedCheckpoint>,
        tenant: TenantId,
    ) {
        let committed = records.len();
        self.lines.clear();
        let record = WalRecord::Checkpoint {
            committed,
            records,
            index,
            tenant,
        };
        let payload = serde_json::to_string(&record).expect("WAL records are serializable");
        self.lines.push(frame(&payload));
        self.checkpointed = committed;
        self.rewrite_sink();
    }

    /// Commits folded into the last installed checkpoint.
    pub fn checkpointed(&self) -> usize {
        self.checkpointed
    }

    /// Number of journal lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The durable byte form: one framed record per line.
    pub fn serialized(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Parses a serialized journal. Never fails:
    ///
    /// - a final line that fails to parse with no salvageable suffix is
    ///   a torn tail (crash mid-append) and is silently dropped;
    /// - any other unparseable run is quarantined as a dead letter, with
    ///   scan-forward resync salvaging a valid framed record fused onto
    ///   the same physical line by a lost newline;
    /// - when anything was quarantined, records made unreachable by a
    ///   broken tenant commit chain are pruned (counted in
    ///   [`WriteAheadLog::dropped_records`]) so the journal stays
    ///   gapless per tenant — a later checkpoint heals its stream.
    pub fn load(serialized: &str) -> Self {
        let lines: Vec<&str> = serialized
            .lines()
            .filter(|l| !l.trim().is_empty())
            .collect();
        let mut kept: Vec<(String, WalRecord)> = Vec::with_capacity(lines.len());
        let mut quarantined: Vec<QuarantinedRecord> = Vec::new();
        let mut torn_tail = false;
        let last = lines.len().saturating_sub(1);
        for (i, raw) in lines.iter().enumerate() {
            match parse_wal_line(raw) {
                Ok(record) => kept.push(((*raw).to_string(), record)),
                Err(reason) => {
                    let mut salvaged = None;
                    for (idx, _) in raw.match_indices(FRAME_PREFIX) {
                        if idx == 0 {
                            continue; // already failed at the line start
                        }
                        let suffix = &raw[idx..];
                        if let Ok(record) = parse_wal_line(suffix) {
                            salvaged = Some((idx, suffix.to_string(), record));
                            break;
                        }
                    }
                    match salvaged {
                        Some((idx, line, record)) => {
                            quarantined.push(QuarantinedRecord {
                                line: i,
                                reason,
                                preview: preview(&raw[..idx]),
                            });
                            kept.push((line, record));
                        }
                        None if i == last => torn_tail = true,
                        None => quarantined.push(QuarantinedRecord {
                            line: i,
                            reason,
                            preview: preview(raw),
                        }),
                    }
                }
            }
        }
        let mut dropped_records = 0u64;
        if !quarantined.is_empty() {
            // A quarantined commit breaks its tenant's gapless prefix:
            // prune that tenant's later records so the surviving journal
            // is a valid per-tenant prefix (and appending to it can
            // never create a fatally gapped journal). A checkpoint
            // carries the full prefix, so it heals its stream.
            let mut expected: BTreeMap<TenantId, usize> = BTreeMap::new();
            let mut broken: BTreeSet<TenantId> = BTreeSet::new();
            let mut pruned = Vec::with_capacity(kept.len());
            for (line, record) in kept {
                let tenant = record.tenant();
                match &record {
                    WalRecord::Checkpoint { committed, .. } => {
                        broken.remove(&tenant);
                        expected.insert(tenant, *committed);
                        pruned.push((line, record));
                    }
                    WalRecord::Commit { seq, .. } => {
                        let want = expected.entry(tenant).or_insert(0);
                        if broken.contains(&tenant) || *seq != *want {
                            broken.insert(tenant);
                            dropped_records += 1;
                        } else {
                            *want += 1;
                            pruned.push((line, record));
                        }
                    }
                    _ => {
                        if broken.contains(&tenant) {
                            dropped_records += 1;
                        } else {
                            pruned.push((line, record));
                        }
                    }
                }
            }
            kept = pruned;
        }
        let mut checkpointed = 0;
        for (_, record) in &kept {
            if let WalRecord::Checkpoint { committed, .. } = record {
                checkpointed = *committed;
            }
        }
        WriteAheadLog {
            lines: kept.into_iter().map(|(line, _)| line).collect(),
            checkpointed,
            quarantined,
            dropped_records,
            torn_tail,
            ..WriteAheadLog::default()
        }
    }

    /// [`WriteAheadLog::load`] over raw media bytes: bit rot can leave
    /// invalid UTF-8, which is replaced lossily and then quarantined by
    /// the normal parse path.
    pub fn load_bytes(bytes: &[u8]) -> Self {
        WriteAheadLog::load(&String::from_utf8_lossy(bytes))
    }

    /// Parses every journaled record.
    ///
    /// # Errors
    ///
    /// [`WalError::Corrupt`] if an in-memory line does not parse — loaded
    /// journals never contain one (corruption is quarantined at load).
    pub fn records(&self) -> Result<Vec<WalRecord>, WalError> {
        self.lines
            .iter()
            .enumerate()
            .map(|(i, line)| {
                parse_wal_line(line).map_err(|message| WalError::Corrupt { line: i, message })
            })
            .collect()
    }

    /// Folds the journal into the state a resumed run starts from. The
    /// commit prefix must be gapless ([`WalError::Gap`] otherwise) —
    /// load-time pruning guarantees that for anything corruption did to
    /// a stored journal, so a gap here means in-memory misuse (e.g.
    /// recovering an interleaved multi-tenant journal without
    /// [`WriteAheadLog::recover_tenants`]).
    pub fn recover(&self) -> Result<Recovery, WalError> {
        let mut recovery = Recovery::default();
        for record in self.records()? {
            match record {
                WalRecord::Checkpoint {
                    committed: _,
                    records,
                    index,
                    tenant: _,
                } => {
                    recovery.records = records;
                    recovery.checkpoint = index;
                    recovery.entries.clear();
                    recovery.shard_epochs.clear();
                }
                WalRecord::Commit { seq, record, entry } => {
                    if seq != recovery.records.len() {
                        return Err(WalError::Gap {
                            expected: recovery.records.len(),
                            found: seq,
                        });
                    }
                    recovery.records.push(record);
                    recovery.entries.extend(entry);
                }
                WalRecord::Feedback { entry, tenant: _ } => {
                    recovery.entries.push(entry);
                }
                WalRecord::Epoch {
                    shard,
                    epoch,
                    committed: _,
                    tenant: _,
                } => {
                    recovery.shard_epochs.insert(shard, epoch);
                }
            }
        }
        Ok(recovery)
    }

    /// Splits a multi-tenant journal into one in-memory journal per
    /// tenant, each preserving its tenant's record order. A record's
    /// owner comes from [`WalRecord::tenant`]; a single-tenant journal
    /// splits into one part keyed by [`TenantId::default`].
    ///
    /// # Errors
    ///
    /// Propagates [`WriteAheadLog::records`] errors.
    pub fn split_tenants(&self) -> Result<BTreeMap<TenantId, WriteAheadLog>, WalError> {
        let mut parts: BTreeMap<TenantId, WriteAheadLog> = BTreeMap::new();
        for (line, record) in self.lines.iter().zip(self.records()?) {
            let part = parts.entry(record.tenant()).or_default();
            if let WalRecord::Checkpoint { committed, .. } = &record {
                part.checkpointed = *committed;
            }
            part.lines.push(line.clone());
        }
        Ok(parts)
    }

    /// Recovers each tenant's stream independently: the journal is split
    /// by owner and every part folds through [`WriteAheadLog::recover`]
    /// with its own tenant-local gap check. This is the bulkhead property
    /// a shared journal must give recovery: a torn tail or a quarantined
    /// corrupt record only ever rolls back the tenant that owned it —
    /// every other tenant's committed watermark is untouched.
    ///
    /// [`WriteAheadLog::recover`] itself remains the single-tenant path;
    /// calling it on an interleaved journal fails its global gap check by
    /// design (tenant-local sequence numbers restart at 0).
    ///
    /// # Errors
    ///
    /// Propagates per-part [`WriteAheadLog::recover`] errors.
    pub fn recover_tenants(&self) -> Result<BTreeMap<TenantId, Recovery>, WalError> {
        self.split_tenants()?
            .into_iter()
            .map(|(tenant, part)| Ok((tenant, part.recover()?)))
            .collect()
    }

    /// Interleaves per-tenant journals into one multi-tenant journal.
    ///
    /// Ordering is by *virtual-time anchor*: each record sorts at the
    /// arrival instant of the latest commit at or before it in its own
    /// stream (records ahead of any commit anchor at 0; a checkpoint
    /// anchors at its last folded record), with ties broken by tenant id
    /// and then stream position — fully deterministic, and stable within
    /// every tenant, so [`WriteAheadLog::split_tenants`] is an exact
    /// inverse. The merged journal is in-memory with `checkpointed == 0`:
    /// fold state is per-tenant and only meaningful on the parts.
    ///
    /// # Errors
    ///
    /// Propagates [`WriteAheadLog::records`] errors from the parts.
    pub fn merge_tenants(
        parts: &BTreeMap<TenantId, WriteAheadLog>,
    ) -> Result<WriteAheadLog, WalError> {
        let mut keyed: Vec<(u64, u64, usize, &str)> = Vec::new();
        for (tenant, part) in parts {
            let mut anchor = 0u64;
            for (i, record) in part.records()?.iter().enumerate() {
                match record {
                    WalRecord::Commit { record, .. } => anchor = record.at.as_secs(),
                    WalRecord::Checkpoint { records, .. } => {
                        if let Some(last) = records.last() {
                            anchor = last.at.as_secs();
                        }
                    }
                    _ => {}
                }
                keyed.push((anchor, tenant.0, i, part.lines[i].as_str()));
            }
        }
        keyed.sort_unstable_by_key(|&(anchor, tenant, i, _)| (anchor, tenant, i));
        Ok(WriteAheadLog {
            lines: keyed
                .into_iter()
                .map(|(_, _, _, line)| line.to_string())
                .collect(),
            ..WriteAheadLog::default()
        })
    }

    /// Replaces this journal's contents with `other`'s — the write-back
    /// half of a split → per-tenant-run → merge cycle — while keeping
    /// this journal's sink and degradation counters. With a sink the
    /// backend is rewritten atomically, with the same retry / `ENOSPC`
    /// pause / detach policy as a checkpoint fold.
    pub fn adopt(&mut self, other: WriteAheadLog) {
        self.lines = other.lines;
        self.checkpointed = other.checkpointed;
        self.rewrite_sink();
    }

    /// Folds per-tenant journal parts back into this journal — the
    /// single adoption point of the tenant-sharded runtime. Shard
    /// workers journal each tenant into its own in-memory
    /// [`WriteAheadLog`] part (no contention on the durable sink while
    /// they run); after the shards join, this call interleaves the parts
    /// with [`WriteAheadLog::merge_tenants`] and rewrites the durable
    /// backend once through this journal's [`WalSink`], so the sink sees
    /// exactly one writer regardless of how many shards produced the
    /// streams. Because the merge key is `(virtual anchor, tenant,
    /// stream position)`, the adopted journal is byte-identical for any
    /// shard count — including a later recovery into a *different* one.
    ///
    /// # Errors
    ///
    /// Propagates [`WriteAheadLog::records`] errors from the parts.
    pub fn adopt_tenants(
        &mut self,
        parts: &BTreeMap<TenantId, WriteAheadLog>,
    ) -> Result<(), WalError> {
        let merged = WriteAheadLog::merge_tenants(parts)?;
        self.adopt(merged);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EventOutcome;
    use crate::storage::{SimDisk, SimDiskConfig};
    use rcacopilot_telemetry::{AlertType, Severity, SimTime};
    use std::path::PathBuf;

    fn shed_record(seq: usize) -> EventRecord {
        tenant_record(TenantId::default(), seq, seq as u64 * 60)
    }

    fn tenant_record(tenant: TenantId, seq: usize, at_secs: u64) -> EventRecord {
        EventRecord {
            seq,
            incident_idx: seq,
            at: SimTime::from_secs(at_secs),
            severity: Severity::Sev3,
            alert_type: AlertType::default(),
            tenant,
            outcome: EventOutcome::Shed {
                backlog_secs: 42 + seq as u64,
            },
        }
    }

    fn commit(seq: usize) -> WalRecord {
        WalRecord::Commit {
            seq,
            record: shed_record(seq),
            entry: None,
        }
    }

    fn tenant_commit(tenant: TenantId, seq: usize, at_secs: u64) -> WalRecord {
        WalRecord::Commit {
            seq,
            record: tenant_record(tenant, seq, at_secs),
            entry: None,
        }
    }

    #[test]
    fn append_serialize_load_round_trips() {
        let mut wal = WriteAheadLog::new();
        wal.append(&commit(0));
        wal.append(&commit(1));
        wal.append(&WalRecord::Epoch {
            shard: 0,
            epoch: 3,
            committed: 2,
            tenant: TenantId::default(),
        });
        wal.append(&WalRecord::Epoch {
            shard: 2,
            epoch: 5,
            committed: 2,
            tenant: TenantId::default(),
        });
        let loaded = WriteAheadLog::load(&wal.serialized());
        assert_eq!(loaded.records().unwrap(), wal.records().unwrap());
        assert!(loaded.quarantined().is_empty());
        assert!(!loaded.had_torn_tail());
        let recovery = loaded.recover().expect("gapless");
        assert_eq!(recovery.committed(), 2);
        assert_eq!(recovery.shard_epochs.get(&0), Some(&3));
        assert_eq!(recovery.shard_epochs.get(&2), Some(&5));
        assert_eq!(recovery.shard_epochs.get(&1), None);
        assert_eq!(recovery.records[1].log_line(), shed_record(1).log_line());
    }

    #[test]
    fn lines_are_crc32c_framed_and_legacy_journals_stay_readable() {
        let mut wal = WriteAheadLog::new();
        wal.append(&commit(0));
        assert!(
            wal.serialized().starts_with("crc32c:"),
            "new appends are framed"
        );
        // A legacy journal: bare JSON lines, no checksums.
        let legacy: String = (0..3)
            .map(|i| format!("{}\n", serde_json::to_string(&commit(i)).unwrap()))
            .collect();
        let loaded = WriteAheadLog::load(&legacy);
        assert!(loaded.quarantined().is_empty());
        assert_eq!(loaded.recover().unwrap().committed(), 3);
        // Legacy lines are preserved verbatim: a clean legacy file
        // round-trips byte-identically (no rewrite churn on reopen).
        assert_eq!(loaded.serialized(), legacy);
        // Appends onto a legacy journal are framed; the mix loads fine.
        let mut mixed = loaded;
        mixed.append(&commit(3));
        let reloaded = WriteAheadLog::load(&mixed.serialized());
        assert_eq!(reloaded.recover().unwrap().committed(), 4);
    }

    #[test]
    fn checkpoint_folds_and_bounds_replay() {
        let mut wal = WriteAheadLog::new();
        wal.append(&commit(0));
        wal.append(&commit(1));
        wal.install_checkpoint(
            vec![shed_record(0), shed_record(1)],
            None,
            TenantId::default(),
        );
        assert_eq!(wal.len(), 1, "checkpoint replaces the journal");
        assert_eq!(wal.checkpointed(), 2);
        wal.append(&commit(2));
        let recovery = wal.recover().expect("gapless");
        assert_eq!(recovery.committed(), 3);
        assert!(recovery.checkpoint.is_none());
        assert!(!recovery.is_empty());
    }

    #[test]
    fn feedback_records_replay_in_journal_order() {
        use rcacopilot_core::retrieval::HistoricalEntry;
        let corrected = CheckpointEntry {
            entry: HistoricalEntry {
                id: 0,
                category: "CorrectedCategory".to_string(),
                summary: "OCE-corrected summary".to_string(),
                at: SimTime::from_secs(120),
                embedding: vec![0.5, -0.25],
            },
            visible_from: SimTime::from_secs(600),
        };
        let mut wal = WriteAheadLog::new();
        wal.append(&commit(0));
        wal.append(&WalRecord::Feedback {
            entry: corrected.clone(),
            tenant: TenantId::default(),
        });
        wal.append(&commit(1));
        let loaded = WriteAheadLog::load(&wal.serialized());
        let recovery = loaded.recover().expect("gapless");
        assert_eq!(recovery.committed(), 2);
        assert_eq!(recovery.entries, vec![corrected.clone()]);
        // A checkpoint folds feedback into the index state like any
        // other entry: replay starts clean after it.
        wal.install_checkpoint(
            vec![shed_record(0), shed_record(1)],
            None,
            TenantId::default(),
        );
        assert!(wal.recover().unwrap().entries.is_empty());
    }

    #[test]
    fn torn_final_line_is_dropped_and_mid_log_corruption_is_quarantined() {
        let mut wal = WriteAheadLog::new();
        wal.append(&commit(0));
        wal.append(&commit(1));
        let mut torn = wal.serialized();
        torn.truncate(torn.len() - 10); // rip the tail of the last line
        let loaded = WriteAheadLog::load(&torn);
        assert_eq!(loaded.recover().unwrap().committed(), 1);
        assert!(loaded.had_torn_tail());
        assert!(
            loaded.quarantined().is_empty(),
            "a torn tail is not corruption"
        );

        // Junk *before* valid records: quarantined, never fatal — and
        // since the junk was no commit, the chain is intact.
        let corrupt = format!("not json at all\n{}", wal.serialized());
        let loaded = WriteAheadLog::load(&corrupt);
        assert_eq!(loaded.quarantined().len(), 1);
        assert_eq!(loaded.quarantined()[0].line, 0);
        assert_eq!(loaded.quarantined()[0].preview, "not json at all");
        assert_eq!(loaded.dropped_records(), 0);
        assert_eq!(loaded.recover().unwrap().committed(), 2);

        // A corrupted *commit* quarantines that record and prunes the
        // records stranded past the break.
        let mut flipped = wal.serialized().into_bytes();
        flipped[20] ^= 0x40; // damage commit 0's line
        let loaded = WriteAheadLog::load_bytes(&flipped);
        assert_eq!(loaded.quarantined().len(), 1);
        assert!(
            loaded.quarantined()[0].reason.contains("crc32c mismatch"),
            "{}",
            loaded.quarantined()[0].reason
        );
        assert_eq!(loaded.dropped_records(), 1, "commit 1 is stranded");
        assert_eq!(loaded.recover().unwrap().committed(), 0);
        // The loaded journal stays internally consistent: appending the
        // re-executed commits produces a clean journal again.
        let mut resumed = loaded;
        resumed.append(&commit(0));
        resumed.append(&commit(1));
        let reloaded = WriteAheadLog::load(&resumed.serialized());
        assert!(reloaded.quarantined().is_empty());
        assert_eq!(reloaded.recover().unwrap().committed(), 2);
    }

    #[test]
    fn resync_salvages_the_record_fused_past_a_lost_newline() {
        let mut wal = WriteAheadLog::new();
        wal.append(&commit(0));
        wal.append(&WalRecord::Epoch {
            shard: 0,
            epoch: 1,
            committed: 1,
            tenant: TenantId::default(),
        });
        wal.append(&commit(1));
        // Zero the newline after the epoch line: the epoch record and
        // commit 1 fuse into one physical line.
        let serialized = wal.serialized();
        let lines: Vec<&str> = serialized.lines().collect();
        let newline_at = lines[0].len() + 1 + lines[1].len();
        let mut bytes = serialized.into_bytes();
        assert_eq!(bytes[newline_at], b'\n');
        bytes[newline_at] = 0;
        let loaded = WriteAheadLog::load_bytes(&bytes);
        assert_eq!(loaded.quarantined().len(), 1, "the fused epoch is junk");
        assert_eq!(loaded.dropped_records(), 0);
        let recovery = loaded.recover().expect("commit chain intact");
        assert_eq!(
            recovery.committed(),
            2,
            "commit 1 is salvaged by scan-forward resync"
        );
        assert!(recovery.shard_epochs.is_empty(), "the epoch was the victim");
    }

    #[test]
    fn a_checkpoint_heals_a_tenant_stream_broken_by_corruption() {
        let mut wal = WriteAheadLog::new();
        wal.append(&commit(0));
        wal.append(&commit(1));
        let mut bytes = wal.serialized().into_bytes();
        bytes[20] ^= 0x40; // break commit 0
        let mut text = String::from_utf8_lossy(&bytes).into_owned();
        // A later checkpoint carries the full prefix: everything after
        // it is reachable again.
        let mut healed = WriteAheadLog::new();
        healed.install_checkpoint(
            vec![shed_record(0), shed_record(1), shed_record(2)],
            None,
            TenantId::default(),
        );
        text.push_str(&healed.serialized());
        let chk = serde_json::to_string(&commit(3)).unwrap();
        text.push_str(&frame(&chk));
        text.push('\n');
        let loaded = WriteAheadLog::load(&text);
        assert_eq!(loaded.quarantined().len(), 1);
        assert_eq!(
            loaded.dropped_records(),
            1,
            "commit 1 stranded before the heal"
        );
        assert_eq!(loaded.checkpointed(), 3);
        let recovery = loaded.recover().expect("healed");
        assert_eq!(recovery.committed(), 4);
    }

    /// A scratch path under the workspace `target/` dir, fresh per test.
    fn scratch_path(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/wal-tests");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("tmp"));
        path
    }

    #[test]
    fn durable_journal_round_trips_through_the_file() {
        let path = scratch_path("round_trip.wal");
        {
            let mut wal = WriteAheadLog::open_durable(&path).expect("create");
            assert!(wal.is_durable());
            assert!(!wal.is_paused());
            wal.append(&commit(0));
            wal.append(&commit(1));
        } // drop the handle: durability must not depend on a clean close
        let on_disk = std::fs::read_to_string(&path).expect("journal file");
        let reopened = WriteAheadLog::open_durable(&path).expect("reopen");
        assert_eq!(reopened.serialized(), on_disk);
        assert_eq!(reopened.recover().unwrap().committed(), 2);

        // Clones are in-memory snapshots: they must not share the sink.
        let clone = reopened.clone();
        assert!(!clone.is_durable());
        assert!(reopened.is_durable());
    }

    #[test]
    fn durable_reopen_truncates_a_torn_tail() {
        let path = scratch_path("torn_tail.wal");
        {
            let mut wal = WriteAheadLog::open_durable(&path).expect("create");
            wal.append(&commit(0));
            wal.append(&commit(1));
            wal.append(&commit(2));
        }
        // Crash mid-append: rip the tail of the last fsync'd line.
        let full = std::fs::read_to_string(&path).expect("journal file");
        std::fs::write(&path, &full[..full.len() - 10]).expect("tear tail");

        let mut wal = WriteAheadLog::open_durable(&path).expect("reopen");
        assert_eq!(wal.recover().unwrap().committed(), 2);
        assert!(wal.had_torn_tail());
        // The file itself was truncated back to the parseable prefix...
        let truncated = std::fs::read_to_string(&path).expect("journal file");
        assert_eq!(truncated, wal.serialized());
        assert!(truncated.ends_with('\n'));
        // ...so appending resumes on a clean line boundary.
        wal.append(&commit(2));
        let reopened = WriteAheadLog::open_durable(&path).expect("reopen again");
        assert_eq!(reopened.recover().unwrap().committed(), 3);
    }

    #[test]
    fn durable_checkpoint_rewrites_the_file_atomically() {
        let path = scratch_path("checkpoint.wal");
        let mut wal = WriteAheadLog::open_durable(&path).expect("create");
        wal.append(&commit(0));
        wal.append(&commit(1));
        wal.install_checkpoint(
            vec![shed_record(0), shed_record(1)],
            None,
            TenantId::default(),
        );
        wal.append(&commit(2));

        let on_disk = std::fs::read_to_string(&path).expect("journal file");
        assert_eq!(on_disk, wal.serialized());
        assert!(
            !path.with_extension("tmp").exists(),
            "checkpoint temp file must be renamed away"
        );
        let reopened = WriteAheadLog::open_durable(&path).expect("reopen");
        let recovery = reopened.recover().expect("gapless");
        assert_eq!(recovery.committed(), 3);
        assert_eq!(reopened.checkpointed(), 2, "fold survives reopen");
    }

    #[test]
    fn durable_reopen_quarantines_mid_log_corruption_and_cleans_the_file() {
        let path = scratch_path("corrupt.wal");
        {
            let mut wal = WriteAheadLog::open_durable(&path).expect("create");
            wal.append(&commit(0));
            wal.append(&commit(1));
        }
        let good = std::fs::read_to_string(&path).expect("journal file");
        std::fs::write(&path, format!("not json at all\n{good}")).expect("corrupt");
        // Mid-log corruption is no longer fatal: the journal opens with
        // the junk quarantined and the file rewritten to the clean form.
        let wal = WriteAheadLog::open_durable(&path).expect("reopen succeeds");
        assert_eq!(wal.quarantined().len(), 1);
        assert_eq!(wal.recover().unwrap().committed(), 2);
        let cleaned = std::fs::read_to_string(&path).expect("journal file");
        assert_eq!(cleaned, good, "the rewrite dropped exactly the junk line");
    }

    #[test]
    fn stale_checkpoint_tmp_is_removed_on_open() {
        let path = scratch_path("stale_tmp.wal");
        {
            let mut wal = WriteAheadLog::open_durable(&path).expect("create");
            wal.append(&commit(0));
        }
        // A crash between the checkpoint's temp-file write and its
        // rename leaves the half-written fold beside the journal.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, "half-written checkpoint").expect("stale tmp");
        let wal = WriteAheadLog::open_durable(&path).expect("reopen");
        assert!(!tmp.exists(), "stale checkpoint tmp must be cleaned up");
        assert_eq!(wal.recover().unwrap().committed(), 1);
    }

    #[test]
    fn enospc_pauses_durability_and_a_fold_resumes_it() {
        // A tight disk: two framed commit lines fit, the third does not.
        let line_len = frame(&serde_json::to_string(&commit(0)).unwrap()).len() + 1;
        let disk = SimDisk::new(SimDiskConfig {
            capacity_bytes: Some(2 * line_len + line_len / 2),
            ..SimDiskConfig::default()
        });
        let mut wal = WriteAheadLog::with_sink(Box::new(disk.clone())).expect("open");
        wal.append(&commit(0));
        wal.append(&commit(1));
        assert!(!wal.is_paused());
        wal.append(&commit(2)); // ENOSPC: enters the paused span
        assert!(wal.is_paused());
        assert!(wal.needs_space_fold());
        assert_eq!(wal.enospc_events(), 1);
        assert_eq!(wal.durability_paused_spans(), 1);
        assert_eq!(wal.paused_appends(), 1);
        wal.append(&commit(3)); // withheld, not an ENOSPC storm
        assert_eq!(wal.enospc_events(), 1);
        assert_eq!(wal.paused_appends(), 2);
        assert!(wal.is_durable(), "the sink is kept through the pause");
        // The engine's answer: fold the journal into a (smaller)
        // checkpoint and rewrite. That lands every withheld record.
        wal.install_checkpoint(vec![shed_record(0)], None, TenantId::default());
        assert!(!wal.is_paused(), "a successful fold resumes durability");
        wal.append(&commit(1));
        let mut media = disk.clone();
        let on_disk = media.contents().expect("media");
        assert_eq!(String::from_utf8_lossy(&on_disk), wal.serialized());
        assert_eq!(wal.durability_paused_spans(), 1, "one span, now closed");
    }

    #[test]
    fn split_and_merge_are_inverse_on_an_interleaved_journal() {
        let (a, b) = (TenantId(1), TenantId(2));
        let mut parts: BTreeMap<TenantId, WriteAheadLog> = BTreeMap::new();
        let mut wal_a = WriteAheadLog::new();
        wal_a.append(&tenant_commit(a, 0, 100));
        wal_a.append(&WalRecord::Epoch {
            shard: 0,
            epoch: 1,
            committed: 1,
            tenant: a,
        });
        wal_a.append(&tenant_commit(a, 1, 400));
        let mut wal_b = WriteAheadLog::new();
        wal_b.append(&tenant_commit(b, 0, 200));
        wal_b.append(&tenant_commit(b, 1, 300));
        parts.insert(a, wal_a);
        parts.insert(b, wal_b);

        let merged = WriteAheadLog::merge_tenants(&parts).expect("clean parts");
        // Anchored interleave: a@100, a's epoch (anchor 100), b@200,
        // b@300, a@400.
        let order: Vec<(TenantId, bool)> = merged
            .records()
            .unwrap()
            .iter()
            .map(|r| (r.tenant(), matches!(r, WalRecord::Commit { .. })))
            .collect();
        assert_eq!(
            order,
            vec![(a, true), (a, false), (b, true), (b, true), (a, true)]
        );
        // Round trip: splitting the merge recovers each part's lines.
        let split = merged.split_tenants().expect("clean journal");
        assert_eq!(split.len(), 2);
        for (tenant, part) in &parts {
            assert_eq!(split[tenant].serialized(), part.serialized());
        }
        // Per-tenant recovery sees two gapless commits each.
        let recovered = merged.recover_tenants().expect("gapless per tenant");
        assert_eq!(recovered[&a].committed(), 2);
        assert_eq!(recovered[&b].committed(), 2);
        assert_eq!(recovered[&a].shard_epochs.get(&0), Some(&1));
        // The global recover() is the single-tenant path: tenant-local
        // seqs restart at 0, so it must refuse the interleave.
        assert!(matches!(merged.recover(), Err(WalError::Gap { .. })));
    }

    #[test]
    fn torn_tail_rolls_back_only_the_owning_tenant() {
        let (a, b) = (TenantId(1), TenantId(2));
        let mut wal = WriteAheadLog::new();
        wal.append(&tenant_commit(a, 0, 100));
        wal.append(&tenant_commit(b, 0, 200));
        wal.append(&tenant_commit(b, 1, 300));
        wal.append(&tenant_commit(a, 1, 400)); // the line the crash tears
        let mut torn = wal.serialized();
        torn.truncate(torn.len() - 10);
        let loaded = WriteAheadLog::load(&torn);
        let recovered = loaded.recover_tenants().expect("gapless per tenant");
        assert_eq!(recovered[&a].committed(), 1, "owner loses the torn commit");
        assert_eq!(recovered[&b].committed(), 2, "neighbor watermark intact");
    }

    #[test]
    fn mid_log_corruption_rolls_back_only_the_owning_tenant() {
        let (a, b) = (TenantId(1), TenantId(2));
        let mut wal = WriteAheadLog::new();
        wal.append(&tenant_commit(a, 0, 100));
        wal.append(&tenant_commit(b, 0, 200));
        wal.append(&tenant_commit(a, 1, 300));
        wal.append(&tenant_commit(b, 1, 400));
        wal.append(&tenant_commit(a, 2, 500));
        // Bit rot strikes tenant A's *first* commit, mid-log.
        let serialized = wal.serialized();
        let mut bytes = serialized.into_bytes();
        bytes[20] ^= 0x01;
        let loaded = WriteAheadLog::load_bytes(&bytes);
        assert_eq!(loaded.quarantined().len(), 1);
        assert_eq!(
            loaded.dropped_records(),
            2,
            "a@1 and a@2 are stranded past the break"
        );
        let recovered = loaded.recover_tenants().expect("per-tenant prefixes");
        // The break hit a@0, so *every* record of tenant A was pruned:
        // the owner rolls back to an empty stream (no entry at all, or
        // an empty recovery — both mean watermark 0).
        assert_eq!(recovered.get(&a).map_or(0, Recovery::committed), 0);
        assert_eq!(recovered[&b].committed(), 2, "neighbor watermark intact");
    }

    #[test]
    fn checkpoint_rewrite_failure_detaches_sink_and_counts() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/wal-tests/sink-fail");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("fail.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = WriteAheadLog::open_durable(&path).expect("create");
        wal.append(&commit(0));
        assert_eq!(wal.sink_failures(), 0);
        // Yank the directory out from under the sink: the checkpoint's
        // temp-file create must fail.
        std::fs::remove_file(&path).expect("remove journal");
        std::fs::remove_dir(&dir).expect("remove dir");
        wal.install_checkpoint(vec![shed_record(0)], None, TenantId::default());
        assert_eq!(wal.sink_failures(), 1);
        assert_eq!(wal.sink_retries(), 1, "one transient retry before detach");
        assert!(!wal.is_durable(), "failed sink is detached");
        // The in-memory journal stays consistent and writable.
        wal.append(&commit(1));
        assert_eq!(wal.recover().unwrap().committed(), 2);
        assert_eq!(wal.sink_failures(), 1, "detached sink fails only once");
    }

    #[test]
    fn adopt_replaces_contents_and_keeps_the_sink() {
        let path = scratch_path("adopt.wal");
        let mut durable = WriteAheadLog::open_durable(&path).expect("create");
        durable.append(&commit(0));
        let mut replacement = WriteAheadLog::new();
        replacement.append(&tenant_commit(TenantId(3), 0, 50));
        replacement.append(&tenant_commit(TenantId(3), 1, 90));
        durable.adopt(replacement.clone());
        assert!(durable.is_durable(), "adopt keeps the durable backend");
        assert_eq!(durable.serialized(), replacement.serialized());
        let on_disk = std::fs::read_to_string(&path).expect("journal file");
        assert_eq!(on_disk, replacement.serialized(), "adopt rewrote the file");
        let reopened = WriteAheadLog::open_durable(&path).expect("reopen");
        let recovered = reopened.recover_tenants().expect("gapless");
        assert_eq!(recovered[&TenantId(3)].committed(), 2);
    }

    #[test]
    fn commit_gaps_are_detected() {
        let mut wal = WriteAheadLog::new();
        wal.append(&commit(0));
        wal.append(&commit(2));
        let err = wal.recover().unwrap_err();
        assert_eq!(
            err,
            WalError::Gap {
                expected: 1,
                found: 2
            }
        );
        assert!(err.to_string().contains("gap"));
    }

    #[test]
    fn load_bytes_survives_invalid_utf8() {
        let mut wal = WriteAheadLog::new();
        wal.append(&commit(0));
        wal.append(&commit(1));
        let mut bytes = wal.serialized().into_bytes();
        bytes[15] = 0xFF; // not valid UTF-8 anywhere
        let loaded = WriteAheadLog::load_bytes(&bytes);
        assert_eq!(loaded.quarantined().len(), 1);
        assert_eq!(loaded.recover().unwrap().committed(), 0);
    }
}
