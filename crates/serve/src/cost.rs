//! Ex-ante virtual service-cost model.
//!
//! Admission control must price an incident *before* processing it, the
//! way a real triage system budgets from ticket metadata. The model
//! therefore reads only what the alert itself carries — type, severity,
//! message length — plus a seeded jitter hashed from the incident id, and
//! never the collected diagnostics (unknown at admission time). Because
//! the estimate depends only on the alert and the engine's cost seed, it
//! is identical no matter which worker later runs the incident — the
//! cornerstone of the engine's worker-count-independent output.
//!
//! Unwrap/lock audit (PR 9, DESIGN.md audit table): this module holds no
//! `unwrap`/`expect`/lock sites at all — it is pure arithmetic over the
//! alert, with division guarded inside the private `jitter` helper — so
//! there is nothing
//! to convert to counted degradation. Keep it that way.

use rcacopilot_core::retrieval::fnv1a;
use rcacopilot_telemetry::alert::{Alert, AlertType};

/// Virtual duration of each pipeline stage for one incident, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageCosts {
    /// Diagnostic collection (handler fan-out to telemetry sources).
    pub collect_secs: u64,
    /// LLM summarization of the collected diagnostics.
    pub summarize_secs: u64,
    /// Embedding of the raw diagnostics.
    pub embed_secs: u64,
    /// Nearest-neighbor retrieval over the historical index.
    pub retrieve_secs: u64,
    /// Chain-of-thought prediction.
    pub predict_secs: u64,
}

impl StageCosts {
    /// Full-service total.
    pub fn total(&self) -> u64 {
        self.collect_secs
            + self.summarize_secs
            + self.embed_secs
            + self.retrieve_secs
            + self.predict_secs
    }

    /// Degraded-service total: summarization is skipped (replaced by a
    /// cheap truncation) when the engine is shedding load.
    pub fn degraded_total(&self) -> u64 {
        self.total() - self.summarize_secs + DEGRADED_SUMMARIZE_SECS
    }

    /// Virtual cost of one named pipeline stage — the
    /// [`PipelineStage::name`](crate::fault::PipelineStage::name) /
    /// `StageHook` vocabulary — honoring the degraded-mode summarization
    /// substitute. `assemble` (and any unknown name) is free: string
    /// formatting, not a modeled service round trip. This is the
    /// real-clock backend's sleep schedule: summing it over the five
    /// modeled stages reproduces [`total`](StageCosts::total) /
    /// [`degraded_total`](StageCosts::degraded_total) exactly, so a wall
    /// run burns the same modeled budget the admission plane priced.
    pub fn stage_secs(&self, stage: &str, degraded: bool) -> u64 {
        match stage {
            "collect" => self.collect_secs,
            "summarize" if degraded => DEGRADED_SUMMARIZE_SECS,
            "summarize" => self.summarize_secs,
            "embed" => self.embed_secs,
            "retrieve" => self.retrieve_secs,
            "predict" => self.predict_secs,
            _ => 0,
        }
    }
}

/// Cost of the truncation that replaces summarization in degraded mode.
pub const DEGRADED_SUMMARIZE_SECS: u64 = 2;

/// Handlers fan out to different numbers of telemetry sources; collection
/// cost scales with that fan-out.
fn collect_base(alert_type: AlertType) -> u64 {
    match alert_type {
        AlertType::DeliveryQueueBacklog | AlertType::ResourcePressure => 110,
        AlertType::OutboundConnectionFailure | AlertType::DependencyTimeout => 95,
        AlertType::ProcessCrashSpike | AlertType::PoisonedMessage => 85,
        AlertType::AuthenticationFailure | AlertType::ConnectionLimitExceeded => 75,
        AlertType::AvailabilityDrop | AlertType::DeliveryLatencyHigh => 65,
    }
}

/// Deterministic jitter in `0..span` derived from the hash chain.
fn jitter(h: &mut u64, tag: &[u8], span: u64) -> u64 {
    let mut bytes = h.to_le_bytes().to_vec();
    bytes.extend_from_slice(tag);
    *h = fnv1a(&bytes);
    if span == 0 {
        0
    } else {
        *h % span
    }
}

/// Estimates per-stage virtual costs for one alert under `seed`.
///
/// Pure in `(alert, seed)`: re-raised duplicates of the same incident get
/// the same estimate.
pub fn estimate(alert: &Alert, seed: u64) -> StageCosts {
    let mut bytes = seed.to_le_bytes().to_vec();
    bytes.extend_from_slice(&alert.incident.0.to_le_bytes());
    bytes.extend_from_slice(alert.message.as_bytes());
    let mut h = fnv1a(&bytes);
    let msg = alert.message.len() as u64;
    StageCosts {
        collect_secs: collect_base(alert.alert_type) + (msg / 8).min(40) + jitter(&mut h, b"c", 30),
        summarize_secs: 20 + (msg / 16).min(25) + jitter(&mut h, b"s", 15),
        embed_secs: 1 + jitter(&mut h, b"e", 4),
        retrieve_secs: 2 + jitter(&mut h, b"r", 6),
        predict_secs: 20 + jitter(&mut h, b"p", 20),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcacopilot_telemetry::ids::{ForestId, IncidentId, TenantId};
    use rcacopilot_telemetry::query::Scope;
    use rcacopilot_telemetry::time::SimTime;
    use rcacopilot_telemetry::Severity;

    fn alert(id: u64, msg: &str) -> Alert {
        Alert {
            incident: IncidentId(id),
            alert_type: AlertType::ProcessCrashSpike,
            scope: Scope::Forest(ForestId(0)),
            severity: Severity::Sev2,
            tenant: TenantId::default(),
            raised_at: SimTime::from_days(1),
            monitor: "CrashMonitor".into(),
            message: msg.into(),
        }
    }

    #[test]
    fn estimate_is_deterministic_and_seed_sensitive() {
        let a = alert(7, "Transport.exe crashed 12 times in 5 minutes");
        assert_eq!(estimate(&a, 3), estimate(&a, 3));
        assert_ne!(estimate(&a, 3), estimate(&a, 4));
        assert_ne!(
            estimate(&a, 3),
            estimate(&alert(8, "Transport.exe crashed 12 times in 5 minutes"), 3)
        );
    }

    #[test]
    fn stage_secs_partitions_the_totals() {
        let c = estimate(&alert(11, "backlog rising on hub transport queue"), 5);
        let stages = [
            "collect",
            "summarize",
            "assemble",
            "embed",
            "retrieve",
            "predict",
        ];
        let full: u64 = stages.iter().map(|s| c.stage_secs(s, false)).sum();
        assert_eq!(full, c.total());
        let degraded: u64 = stages.iter().map(|s| c.stage_secs(s, true)).sum();
        assert_eq!(degraded, c.degraded_total());
        assert_eq!(c.stage_secs("assemble", false), 0);
        assert_eq!(c.stage_secs("not-a-stage", false), 0);
    }

    #[test]
    fn costs_fall_in_plausible_bands() {
        for id in 0..50 {
            let c = estimate(
                &alert(id, "some monitor message of moderate length here"),
                9,
            );
            assert!((60..=200).contains(&c.collect_secs), "{c:?}");
            assert!((20..=60).contains(&c.summarize_secs), "{c:?}");
            assert!((1..=5).contains(&c.embed_secs), "{c:?}");
            assert!((2..=8).contains(&c.retrieve_secs), "{c:?}");
            assert!((20..=40).contains(&c.predict_secs), "{c:?}");
            assert!(c.degraded_total() < c.total());
        }
    }
}
