//! Deterministic worker-fault injection for the serving engine.
//!
//! PR 1's telemetry fault plane exercises the *collection* stage: queries
//! time out, return partial rows, or go dark, and the resilient executor
//! degrades gracefully. This module extends the same discipline one layer
//! up, to the serving plane itself: the **workers** running the pipeline
//! can fail. Three fault kinds are modeled, mirroring how real serving
//! fleets die during incident storms:
//!
//! - [`WorkerFault::Panic`]: the worker thread processing the event
//!   panics outright (a bug, an OOM abort handler, a poisoned
//!   invariant). The supervisor must catch the unwind, respawn the
//!   worker, and re-dispatch the lost in-flight event.
//! - [`WorkerFault::Stall`]: the attempt exceeds its stage deadline on
//!   the virtual clock — the worker is alive but the work is lost and
//!   must be retried.
//! - [`WorkerFault::Transient`]: a stage returns a retryable error
//!   (a flaky downstream dependency) without killing the worker.
//!
//! Determinism is a hard requirement, exactly as for
//! [`rcacopilot_telemetry::fault::FaultInjector`]: a decision may depend
//! only on the plan's seed and the `(event seq, attempt)` tuple — never
//! on the worker's identity, the host clock, or thread interleaving.
//! Because every retry re-rolls with a fresh attempt number, the full
//! per-event attempt history (and therefore the engine's prediction log)
//! is byte-identical for every worker count.
//!
//! **Stall semantics per clock mode** (PR 9): fault *decisions* are
//! always drawn on the virtual plane, so fates are identical across
//! [`crate::clock::Clock`] backends. What changes is what a
//! [`WorkerFault::Stall`] *costs*: under the DES backend the stalled
//! stage's virtual duration is pure bookkeeping, while under
//! [`crate::clock::RealClock`] the worker actually sleeps the scaled
//! stage cost — a stall occupies a real thread for real wall time,
//! which is exactly the head-of-line blocking the real-mode bench
//! measures.

use rcacopilot_core::retrieval::fnv1a;
use std::fmt;

/// The pipeline stage a worker fault is attributed to (flavor for
/// counters and panic messages; the whole attempt is lost either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineStage {
    /// Diagnostic collection.
    Collect,
    /// LLM summarization.
    Summarize,
    /// Embedding.
    Embed,
    /// Historical retrieval.
    Retrieve,
    /// Chain-of-thought prediction.
    Predict,
}

impl PipelineStage {
    /// Every stage, in pipeline order.
    pub const ALL: [PipelineStage; 5] = [
        PipelineStage::Collect,
        PipelineStage::Summarize,
        PipelineStage::Embed,
        PipelineStage::Retrieve,
        PipelineStage::Predict,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineStage::Collect => "collect",
            PipelineStage::Summarize => "summarize",
            PipelineStage::Embed => "embed",
            PipelineStage::Retrieve => "retrieve",
            PipelineStage::Predict => "predict",
        }
    }
}

impl fmt::Display for PipelineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What the injector does to one processing attempt of one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The attempt runs normally.
    None,
    /// The worker thread panics mid-stage.
    Panic {
        /// Stage the panic is attributed to.
        stage: PipelineStage,
    },
    /// The attempt stalls past the stage deadline and is abandoned.
    Stall {
        /// Stage that stalled.
        stage: PipelineStage,
    },
    /// The stage returns a retryable transient error.
    Transient {
        /// Stage that errored.
        stage: PipelineStage,
    },
}

/// Worker-fault injection parameters, threaded through
/// [`EngineConfig`](crate::engine::EngineConfig). The default disables
/// every fault, reproducing the fault-free engine exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFaultConfig {
    /// Seed of the per-`(seq, attempt)` decision hash.
    pub seed: u64,
    /// Probability (per mille) that an attempt panics its worker.
    pub panic_per_mille: u16,
    /// Probability (per mille) that an attempt stalls past its deadline.
    pub stall_per_mille: u16,
    /// Probability (per mille) that an attempt hits a transient error.
    pub error_per_mille: u16,
}

impl Default for WorkerFaultConfig {
    fn default() -> Self {
        WorkerFaultConfig {
            seed: 23,
            panic_per_mille: 0,
            stall_per_mille: 0,
            error_per_mille: 0,
        }
    }
}

impl WorkerFaultConfig {
    /// No injected faults (the default).
    pub fn disabled() -> Self {
        WorkerFaultConfig::default()
    }

    /// True when any fault kind has a non-zero rate.
    pub fn enabled(&self) -> bool {
        self.panic_per_mille > 0 || self.stall_per_mille > 0 || self.error_per_mille > 0
    }

    /// Combined fault probability per attempt, in per mille (capped at
    /// 1000).
    pub fn total_per_mille(&self) -> u16 {
        (self.panic_per_mille as u32 + self.stall_per_mille as u32 + self.error_per_mille as u32)
            .min(1000) as u16
    }
}

/// The seeded worker-fault plan: a pure function of
/// `(seed, event seq, attempt)`.
#[derive(Debug, Clone, Copy)]
pub struct WorkerFaultPlan {
    config: WorkerFaultConfig,
}

impl WorkerFaultPlan {
    /// Builds the plan for a fault configuration.
    pub fn new(config: WorkerFaultConfig) -> Self {
        WorkerFaultPlan { config }
    }

    /// The configuration the plan rolls against.
    pub fn config(&self) -> &WorkerFaultConfig {
        &self.config
    }

    /// Decides the fate of processing attempt `attempt` (1-based) of the
    /// event with stream sequence number `seq`. Pure: the same tuple
    /// always returns the same decision, so retries re-roll (a transient
    /// fault can clear) while the whole history stays reproducible.
    pub fn decide(&self, seq: usize, attempt: u32) -> WorkerFault {
        if !self.config.enabled() {
            return WorkerFault::None;
        }
        let mut bytes = self.config.seed.to_le_bytes().to_vec();
        bytes.extend_from_slice(&(seq as u64).to_le_bytes());
        bytes.extend_from_slice(&attempt.to_le_bytes());
        let h = fnv1a(&bytes);
        let roll = (h % 1000) as u16;
        let stage = PipelineStage::ALL[(h >> 32) as usize % PipelineStage::ALL.len()];
        let panic_to = self.config.panic_per_mille;
        let stall_to = panic_to.saturating_add(self.config.stall_per_mille);
        let error_to = stall_to.saturating_add(self.config.error_per_mille);
        if roll < panic_to {
            WorkerFault::Panic { stage }
        } else if roll < stall_to {
            WorkerFault::Stall { stage }
        } else if roll < error_to {
            WorkerFault::Transient { stage }
        } else {
            WorkerFault::None
        }
    }

    /// Replays the supervisor's attempt/kill ledger against the pure
    /// fault plan and returns the event's fate, without dispatching
    /// anything. The loop mirrors
    /// [`AttemptLedger`](crate::supervisor::AttemptLedger) exactly: a
    /// panic counts a kill (quarantining at `quarantine_kills`), every
    /// lost attempt counts toward `max_attempts`, and a clean roll
    /// completes the event. Pure in `(seed, seq, thresholds)`, which is
    /// what lets per-tenant circuit breakers trip on *planned* fates
    /// before any worker runs — keeping the prediction log byte-identical
    /// across worker counts.
    pub fn simulate_fate(
        &self,
        seq: usize,
        quarantine_kills: u32,
        max_attempts: u32,
    ) -> AttemptFate {
        let quarantine_kills = quarantine_kills.max(1);
        let max_attempts = max_attempts.max(1);
        let mut kills = 0u32;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.decide(seq, attempt) {
                WorkerFault::None => {
                    return AttemptFate::Completes {
                        attempts: attempt,
                        kills,
                    }
                }
                WorkerFault::Panic { .. } => {
                    kills += 1;
                    if kills >= quarantine_kills || attempt >= max_attempts {
                        return AttemptFate::Quarantined {
                            attempts: attempt,
                            kills,
                        };
                    }
                }
                WorkerFault::Stall { .. } | WorkerFault::Transient { .. } => {
                    if attempt >= max_attempts {
                        return AttemptFate::Quarantined {
                            attempts: attempt,
                            kills,
                        };
                    }
                }
            }
        }
    }
}

/// The planned end state of one event under a fault plan and a pair of
/// quarantine thresholds — the output of
/// [`WorkerFaultPlan::simulate_fate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptFate {
    /// Some attempt rolls clean and the event commits a prediction.
    Completes {
        /// Attempts consumed, including the clean one.
        attempts: u32,
        /// Worker kills along the way.
        kills: u32,
    },
    /// The thresholds exhaust first: the event becomes a poison pill.
    Quarantined {
        /// Attempts consumed.
        attempts: u32,
        /// Worker kills along the way.
        kills: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(panic: u16, stall: u16, error: u16) -> WorkerFaultPlan {
        WorkerFaultPlan::new(WorkerFaultConfig {
            seed: 7,
            panic_per_mille: panic,
            stall_per_mille: stall,
            error_per_mille: error,
        })
    }

    #[test]
    fn disabled_plan_never_faults() {
        let p = WorkerFaultPlan::new(WorkerFaultConfig::disabled());
        for seq in 0..100 {
            for attempt in 1..5 {
                assert_eq!(p.decide(seq, attempt), WorkerFault::None);
            }
        }
    }

    #[test]
    fn decisions_are_deterministic_and_attempt_sensitive() {
        let p = plan(100, 100, 100);
        for seq in 0..50 {
            for attempt in 1..4 {
                assert_eq!(p.decide(seq, attempt), p.decide(seq, attempt));
            }
        }
        // Some event must get different fates on different attempts
        // (otherwise retries could never clear a fault).
        let differs = (0..200).any(|seq| p.decide(seq, 1) != p.decide(seq, 2));
        assert!(differs, "attempt number must enter the decision hash");
    }

    #[test]
    fn rates_are_respected_within_tolerance() {
        let p = plan(100, 100, 0);
        let n = 20_000u32;
        let mut panics = 0u32;
        let mut stalls = 0u32;
        let mut errors = 0u32;
        for seq in 0..n as usize {
            match p.decide(seq, 1) {
                WorkerFault::Panic { .. } => panics += 1,
                WorkerFault::Stall { .. } => stalls += 1,
                WorkerFault::Transient { .. } => errors += 1,
                WorkerFault::None => {}
            }
        }
        assert_eq!(errors, 0);
        let frac = |c: u32| f64::from(c) / f64::from(n);
        assert!((frac(panics) - 0.1).abs() < 0.02, "panic rate {panics}");
        assert!((frac(stalls) - 0.1).abs() < 0.02, "stall rate {stalls}");
    }

    #[test]
    fn seed_changes_decisions() {
        let a = WorkerFaultPlan::new(WorkerFaultConfig {
            seed: 1,
            panic_per_mille: 300,
            ..WorkerFaultConfig::default()
        });
        let b = WorkerFaultPlan::new(WorkerFaultConfig {
            seed: 2,
            panic_per_mille: 300,
            ..WorkerFaultConfig::default()
        });
        let differs = (0..100).any(|seq| a.decide(seq, 1) != b.decide(seq, 1));
        assert!(differs, "different seeds must differ somewhere");
    }

    #[test]
    fn simulated_fates_match_a_real_ledger_replay() {
        use crate::supervisor::{AttemptLedger, Verdict};
        let p = plan(250, 120, 120);
        let mut quarantined = 0usize;
        for seq in 0..300usize {
            let fate = p.simulate_fate(seq, 2, 6);
            let ledger = AttemptLedger::new(seq + 1, 2, 6);
            let replayed = loop {
                let attempt = ledger.begin_attempt(seq);
                let verdict = match p.decide(seq, attempt) {
                    WorkerFault::None => {
                        break AttemptFate::Completes {
                            attempts: attempt,
                            kills: 0,
                        }
                    }
                    WorkerFault::Panic { .. } => ledger.record_kill(seq),
                    WorkerFault::Stall { .. } | WorkerFault::Transient { .. } => {
                        ledger.record_loss(seq)
                    }
                };
                if let Verdict::Quarantine { kills, attempts } = verdict {
                    break AttemptFate::Quarantined { attempts, kills };
                }
            };
            match (fate, replayed) {
                (
                    AttemptFate::Completes { attempts: a, .. },
                    AttemptFate::Completes { attempts: b, .. },
                ) => {
                    assert_eq!(a, b, "seq {seq}: attempt counts diverged")
                }
                (q @ AttemptFate::Quarantined { .. }, r) => {
                    quarantined += 1;
                    assert_eq!(q, r, "seq {seq}: quarantine fates diverged");
                }
                (f, r) => panic!("seq {seq}: {f:?} vs ledger {r:?}"),
            }
        }
        assert!(quarantined > 0, "rates this high must quarantine someone");
    }

    #[test]
    fn fate_respects_threshold_overrides() {
        let p = plan(1000, 0, 0); // every attempt panics
        assert_eq!(
            p.simulate_fate(0, 1, 6),
            AttemptFate::Quarantined {
                attempts: 1,
                kills: 1
            }
        );
        assert_eq!(
            p.simulate_fate(0, 4, 2),
            AttemptFate::Quarantined {
                attempts: 2,
                kills: 2
            }
        );
    }

    #[test]
    fn stages_render_and_cover_all() {
        for s in PipelineStage::ALL {
            assert!(!s.name().is_empty());
            assert_eq!(s.to_string(), s.name());
        }
    }
}
