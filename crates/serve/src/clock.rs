//! The dual-mode clock boundary: one `Clock` trait, two backends.
//!
//! Every time read, sleep, deadline and backoff decision in the serving
//! stack goes through [`Clock`], so the same engine runs in two modes:
//!
//! - **[`VirtualClock`]** — the existing deterministic DES semantics.
//!   Planning (admission, visibility, costs, fault fates) happens on the
//!   stream's virtual timeline before dispatch; `sleep`/`sleep_until`
//!   are no-ops, `wall_nanos` is always 0, and `now` tracks the
//!   dispatcher's planning cursor. Engine outputs under this backend are
//!   byte-identical to the pre-refactor engine — the refactor only moved
//!   where the (non-)sleeps live.
//! - **[`RealClock`]** — workers are the same real `std::thread`s, but
//!   sleeps are *actual* sleeps on the host clock: each virtual second
//!   maps to [`RealClockConfig::nanos_per_virtual_sec`] wall nanoseconds.
//!   Stage costs (which model LLM/service latency, not local compute)
//!   become real blocking waits, injected stalls burn real time, and
//!   respawn backoff pauses the worker. Because the waits overlap across
//!   threads, wall-clock throughput scales with the worker count even on
//!   a single-core host — exactly how a fleet serving remote-LLM calls
//!   scales.
//!
//! What stays deterministic in real mode: the *prediction log*. All
//! ordering decisions (admission, visibility, the commit watermark) are
//! planned on virtual time before execution, and workers compute pure
//! functions — so a `RealClock` frozen-replay run with faults disabled
//! produces a log byte-identical to the DES run (pinned by
//! `tests/realtime_parity.rs`). What is *not* deterministic: wall-clock
//! durations, metrics histograms, and span timings — those are the
//! measurements real mode exists to take.

use rcacopilot_telemetry::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which backend a [`Clock`] implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Deterministic virtual time (discrete-event simulation).
    Virtual,
    /// Host wall-clock time; sleeps block real threads.
    Real,
}

/// The single time boundary of the serving stack.
///
/// Contract: `now` is monotone non-decreasing; `sleep`/`sleep_until`
/// return immediately under [`ClockMode::Virtual`] and block under
/// [`ClockMode::Real`]; `wall_nanos` is 0 in virtual mode and a
/// monotonic nanosecond reading in real mode. Implementations must be
/// shareable across worker threads.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Which backend this is — engine code branches on it only to decide
    /// whether to *record* wall measurements, never to change planning.
    fn mode(&self) -> ClockMode;

    /// Current instant on the stream timeline.
    fn now(&self) -> SimTime;

    /// Advances the stream-timeline cursor to `at` (dispatcher only).
    /// Virtual: moves the cursor. Real: no-op (`now` derives from the
    /// host clock).
    fn advance_to(&self, at: SimTime);

    /// Blocks until the stream timeline reaches `at`. Virtual: no-op.
    /// Real: sleeps the scaled remainder (arrival pacing, when enabled).
    fn sleep_until(&self, at: SimTime);

    /// Blocks for a virtual duration. Virtual: no-op. Real: sleeps
    /// `d × nanos_per_virtual_sec`.
    fn sleep(&self, d: SimDuration);

    /// Monotonic wall-clock nanoseconds since the clock was built;
    /// always 0 in virtual mode so DES reports carry no host timing.
    fn wall_nanos(&self) -> u64;
}

/// The DES backend: a cursor the dispatcher advances, and no real waits.
#[derive(Debug, Default)]
pub struct VirtualClock {
    cursor_secs: AtomicU64,
}

impl VirtualClock {
    /// A clock at the stream epoch.
    pub fn new() -> Self {
        VirtualClock::default()
    }
}

impl Clock for VirtualClock {
    fn mode(&self) -> ClockMode {
        ClockMode::Virtual
    }

    fn now(&self) -> SimTime {
        SimTime::from_secs(self.cursor_secs.load(Ordering::Relaxed))
    }

    fn advance_to(&self, at: SimTime) {
        self.cursor_secs.fetch_max(at.as_secs(), Ordering::Relaxed);
    }

    fn sleep_until(&self, _at: SimTime) {}

    fn sleep(&self, _d: SimDuration) {}

    fn wall_nanos(&self) -> u64 {
        0
    }
}

/// Parameters of the [`RealClock`] backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RealClockConfig {
    /// Wall nanoseconds one virtual second maps to. The default
    /// (100 000 ns = 0.1 ms) makes a typical ~250-virtual-second incident
    /// cost a ~25 ms wait — long enough to dominate local compute and
    /// exhibit thread scaling, short enough for CI.
    pub nanos_per_virtual_sec: u64,
    /// Pace the dispatcher to the stream's arrival schedule
    /// (`sleep_until` blocks). Off by default: a throughput bench wants
    /// the pool saturated, not idling between arrivals.
    pub pace_arrivals: bool,
}

impl Default for RealClockConfig {
    fn default() -> Self {
        RealClockConfig {
            nanos_per_virtual_sec: 100_000,
            pace_arrivals: false,
        }
    }
}

/// The wall-clock backend: virtual durations become scaled real sleeps.
#[derive(Debug)]
pub struct RealClock {
    start: Instant,
    config: RealClockConfig,
}

impl RealClock {
    /// A clock starting now.
    pub fn new(config: RealClockConfig) -> Self {
        RealClock {
            start: Instant::now(),
            config,
        }
    }

    /// The configured virtual→wall scale.
    pub fn config(&self) -> RealClockConfig {
        self.config
    }

    fn scale(&self) -> u64 {
        self.config.nanos_per_virtual_sec
    }
}

impl Clock for RealClock {
    fn mode(&self) -> ClockMode {
        ClockMode::Real
    }

    fn now(&self) -> SimTime {
        // Invert the scale: elapsed wall nanos → virtual seconds.
        let scale = self.scale().max(1);
        SimTime::from_secs(self.wall_nanos() / scale)
    }

    fn advance_to(&self, _at: SimTime) {}

    fn sleep_until(&self, at: SimTime) {
        if !self.config.pace_arrivals {
            return;
        }
        let target = at.as_secs().saturating_mul(self.scale());
        let elapsed = self.wall_nanos();
        if target > elapsed {
            std::thread::sleep(std::time::Duration::from_nanos(target - elapsed));
        }
    }

    fn sleep(&self, d: SimDuration) {
        let nanos = d.as_secs().saturating_mul(self.scale());
        if nanos > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(nanos));
        }
    }

    fn wall_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// Engine-facing clock selection; part of
/// [`EngineConfig`](crate::engine::EngineConfig). The default is
/// [`ClockConfig::Virtual`], under which every output is byte-identical
/// to the pre-clock engine.
#[derive(Debug, Clone, Default)]
pub enum ClockConfig {
    /// Deterministic DES (the default).
    #[default]
    Virtual,
    /// Real threads, real sleeps, wall-clock measurements.
    Real(RealClockConfig),
    /// Deterministic DES on a cursor *shared* with other engines — the
    /// tenant-sharded runtime's shard-aware virtual-time merge. Every
    /// tenant engine advances the same plane-wide cursor; because
    /// [`VirtualClock::advance_to`] is a `fetch_max`, the merged horizon
    /// is the maximum over all shards' planning cursors regardless of
    /// how shard threads interleave, so sharing the clock changes no
    /// engine output (virtual-mode planning never *reads* `now`).
    SharedVirtual(Arc<VirtualClock>),
}

impl PartialEq for ClockConfig {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ClockConfig::Virtual, ClockConfig::Virtual) => true,
            (ClockConfig::Real(a), ClockConfig::Real(b)) => a == b,
            // Shared clocks are equal only when they are the *same* cursor.
            (ClockConfig::SharedVirtual(a), ClockConfig::SharedVirtual(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for ClockConfig {}

impl ClockConfig {
    /// Instantiates the configured backend.
    pub fn build(&self) -> Arc<dyn Clock> {
        match self {
            ClockConfig::Virtual => Arc::new(VirtualClock::new()),
            ClockConfig::Real(config) => Arc::new(RealClock::new(*config)),
            ClockConfig::SharedVirtual(clock) => Arc::clone(clock) as Arc<dyn Clock>,
        }
    }

    /// The mode the built clock will report.
    pub fn mode(&self) -> ClockMode {
        match self {
            ClockConfig::Virtual | ClockConfig::SharedVirtual(_) => ClockMode::Virtual,
            ClockConfig::Real(_) => ClockMode::Real,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_never_sleeps_and_reports_zero_wall() {
        let clock = VirtualClock::new();
        assert_eq!(clock.mode(), ClockMode::Virtual);
        clock.advance_to(SimTime::from_secs(100));
        assert_eq!(clock.now(), SimTime::from_secs(100));
        // Cursor is monotone: advancing backwards is a no-op.
        clock.advance_to(SimTime::from_secs(50));
        assert_eq!(clock.now(), SimTime::from_secs(100));
        let t0 = std::time::Instant::now();
        clock.sleep(SimDuration::from_secs(1 << 30));
        clock.sleep_until(SimTime::from_secs(1 << 40));
        assert!(t0.elapsed().as_millis() < 100, "virtual sleeps are free");
        assert_eq!(clock.wall_nanos(), 0);
    }

    #[test]
    fn real_clock_sleeps_scale_virtual_durations() {
        let clock = RealClock::new(RealClockConfig {
            nanos_per_virtual_sec: 1_000_000, // 1 ms per virtual second
            pace_arrivals: false,
        });
        assert_eq!(clock.mode(), ClockMode::Real);
        let before = clock.wall_nanos();
        clock.sleep(SimDuration::from_secs(10)); // ≈ 10 ms
        let elapsed = clock.wall_nanos() - before;
        assert!(elapsed >= 9_000_000, "slept only {elapsed} ns");
        // Unpaced sleep_until returns immediately.
        let t0 = clock.wall_nanos();
        clock.sleep_until(SimTime::from_secs(1 << 40));
        assert!(clock.wall_nanos() - t0 < 50_000_000);
    }

    #[test]
    fn real_clock_now_inverts_the_scale() {
        let clock = RealClock::new(RealClockConfig {
            nanos_per_virtual_sec: 1_000,
            pace_arrivals: true,
        });
        clock.sleep_until(SimTime::from_secs(2_000)); // 2 ms wall
        assert!(clock.now() >= SimTime::from_secs(2_000));
    }

    #[test]
    fn config_builds_the_matching_backend() {
        assert_eq!(ClockConfig::default(), ClockConfig::Virtual);
        assert_eq!(ClockConfig::Virtual.build().mode(), ClockMode::Virtual);
        let real = ClockConfig::Real(RealClockConfig::default());
        assert_eq!(real.build().mode(), ClockMode::Real);
        assert_eq!(real.mode(), ClockMode::Real);
    }

    #[test]
    fn shared_virtual_clock_merges_cursors_across_handles() {
        let plane = Arc::new(VirtualClock::new());
        let config = ClockConfig::SharedVirtual(Arc::clone(&plane));
        assert_eq!(config.mode(), ClockMode::Virtual);
        assert_eq!(config, config.clone(), "same cursor compares equal");
        assert_ne!(
            config,
            ClockConfig::SharedVirtual(Arc::new(VirtualClock::new())),
            "distinct cursors are distinct configs"
        );
        // Two engine-side handles advance one plane-wide horizon; the
        // merge is a fetch_max, so interleaving order cannot matter.
        let a = config.build();
        let b = config.build();
        a.advance_to(SimTime::from_secs(40));
        b.advance_to(SimTime::from_secs(90));
        a.advance_to(SimTime::from_secs(60));
        assert_eq!(plane.now(), SimTime::from_secs(90));
        assert_eq!(a.wall_nanos(), 0, "shared virtual stays DES");
    }
}
