//! RCACopilot serving plane: an online incident-serving engine.
//!
//! The batch harness in `rcacopilot-core` evaluates the pipeline over a
//! frozen dataset; this crate runs the same pipeline as a *service*. A
//! seeded alert stream ([`stream`]) delivers incidents on virtual time —
//! Poisson background traffic, alert storms, flapping monitors — and the
//! multi-worker engine ([`engine`]) pushes each admitted alert through
//! collection → summarization → embedding → retrieval → prediction on a
//! pool of OS threads behind a bounded queue.
//!
//! Three subsystems make the engine behave like a production triage
//! plane while staying fully deterministic:
//!
//! - **Admission control** ([`admission`]): a severity-aware virtual
//!   token bucket sheds low-severity alerts first during storms and
//!   degrades summarization under pressure, priced by an ex-ante cost
//!   model ([`cost`]) that reads only alert metadata.
//! - **Sharded incremental history**: in [`engine::IndexMode::Online`]
//!   each incident joins the retrieval index when it *resolves*, through
//!   epoch-snapshotted read views, so the stream learns from itself
//!   without ever letting an unresolved (or future) incident leak into a
//!   prompt. The index is split into per-category shards
//!   (`EngineConfig::shards`), each with its own lock and epoch state;
//!   a bound-ordered cross-shard merge keeps the prediction log
//!   byte-identical to the single-lock plane for any shard count, and
//!   the memo caches (`rcacopilot_core::memo`, keyed by the engine's
//!   pluggable [`engine::EngineConfig::memo`] policy) shard to the same
//!   width. OCE corrections re-enter the index via
//!   [`engine::ServeEngine::ingest_feedback`], journaled and replayed
//!   with a visibility watermark.
//! - **Virtual-time metrics** ([`vmetrics`]): per-stage latency
//!   histograms, queue depths and throughput come from a deterministic
//!   discrete-event simulation of the worker pool on the stream's own
//!   clock, so benchmark numbers are reproducible on any host.
//!
//! The engine's prediction log is byte-identical for every worker count:
//! planning (admission, visibility) happens on the virtual clock before
//! execution, workers compute pure functions, and results commit in
//! stream order.
//!
//! On top of that determinism sits a **crash-tolerance layer**:
//!
//! - **Worker-fault injection** ([`fault`]): seeded, per-attempt worker
//!   panics, stage stalls and transient errors, pure in
//!   `(seed, event seq, attempt)` so faulty runs stay byte-reproducible.
//! - **Supervision** ([`supervisor`]): panics are caught and the worker
//!   respawned; lost in-flight events are re-dispatched; poisoned locks
//!   are recovered, not fatal. An event that keeps killing workers is
//!   quarantined as a poison pill with a dead-letter
//!   [`engine::EventOutcome::Failed`] record.
//! - **Write-ahead log** ([`wal`]): commits, shard-tagged index epochs
//!   and feedback corrections are journaled (with periodic checkpoint
//!   folding) so an engine killed mid-stream resumes — via
//!   [`engine::ServeEngine::run_with_wal`] — with a prediction log
//!   byte-identical to an uninterrupted run, even when the resumed run
//!   uses a different shard count. Every record is CRC32C-framed;
//!   corruption is quarantined as a counted dead letter (with
//!   scan-forward resync), never fatal.
//! - **Storage fault plane** ([`storage`]): the WAL writes through a
//!   [`storage::WalSink`] byte-sink abstraction — a real fsync'd file
//!   ([`storage::DurableFile`]) or a seeded simulated disk
//!   ([`storage::SimDisk`]) with page-granular crash images, torn/dropped
//!   pages, bit rot, injected write/fsync errors and `ENOSPC` budgets,
//!   all pure functions of `(seed, offset)`. Transient sink errors are
//!   retried once, `ENOSPC` enters a counted durability-paused span
//!   answered by checkpoint-fold-and-retry, and persistent failures
//!   detach the sink — degraded, never fatal. A crash-point torture
//!   fuzzer (`tests/wal_torture.rs`, `wal_torture` bench) sweeps crash
//!   points and fault mixes asserting no fsync-acknowledged commit is
//!   ever lost.
//!
//! The topmost layer is **multi-tenancy as a robustness boundary**
//! ([`tenant`]): each tenant (OCE team) gets a weighted fair share of
//! admission capacity ([`admission::AdmissionConfig::share`]) and of the
//! worker pool (deficit round robin, [`vmetrics::simulate_drr`]), its own
//! attempt ledger and optional planned circuit breaker
//! ([`engine::BreakerConfig`]), namespaced memo caches
//! (`rcacopilot_core::memo::NamespacedMemo`), and a tenant-tagged WAL
//! stream with independent per-tenant recovery
//! ([`wal::WriteAheadLog::recover_tenants`]). A merged
//! [`tenant::MultiTenantEngine`] run composes per-tenant engine runs
//! whose logs are byte-identical to solo baselines — one tenant's
//! flapping-monitor fault storm cannot perturb another tenant's
//! predictions, watermarks, or cache keys. The composition itself is a
//! **tenant-sharded parallel runtime**: tenants deal round-robin over
//! [`tenant::MultiTenantConfig::shards`] shard workers sharing one
//! `Arc`'d pipeline ([`engine::ServeEngine::shared`]), one plane-wide
//! virtual clock ([`clock::ClockConfig::SharedVirtual`]), the namespaced
//! memo pool, and pre-split per-tenant WAL streams
//! ([`wal::WriteAheadLog::adopt_tenants`]) — scaling to thousands of
//! streams with every output byte-identical at any shard count.
//!
//! Finally, the engine is a **dual-mode runtime** ([`clock`]): every
//! time read, sleep and deadline decision goes through one [`Clock`]
//! trait with two backends. The default [`clock::VirtualClock`] is the
//! deterministic DES above — byte-identical outputs, no real waits.
//! [`clock::RealClock`] runs the same workers as real blocking threads:
//! stage costs (which model remote LLM/service latency) become actual
//! scaled sleeps, injected stalls burn wall time, and respawn backoff
//! pauses the thread — so wall-clock throughput scales with worker
//! count and `BENCH_serve_realtime.json` carries hardware-grounded
//! numbers next to the virtual ones. An observability plane rides on
//! the same boundary: structured `tracing` spans per event/stage/tenant
//! (behind the off-by-default `tracing` feature) and a [`metrics`]
//! registry of labeled counters and fixed-bucket histograms, rendered
//! as Prometheus text or versioned JSON and served from a tiny blocking
//! HTTP endpoint ([`metrics::MetricsServer`]) in real mode or dumped to
//! a file in DES mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod clock;
pub mod cost;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod storage;
pub mod stream;
pub mod supervisor;
pub mod tenant;
pub mod vmetrics;
pub mod wal;

pub use admission::{AdmissionConfig, AdmissionPlan, Disposition};
pub use clock::{Clock, ClockConfig, ClockMode, RealClock, RealClockConfig, VirtualClock};
pub use cost::StageCosts;
pub use engine::{
    BreakerConfig, EngineConfig, EventOutcome, EventRecord, IndexMode, OceFeedback, ServeEngine,
    ServeOutcome,
};
pub use fault::{AttemptFate, PipelineStage, WorkerFault, WorkerFaultConfig, WorkerFaultPlan};
pub use metrics::{MetricsRegistry, MetricsServer, OVERFLOW_LABEL_VALUE};
pub use rcacopilot_core::memo::MemoCache;
pub use storage::{crc32c, CrashImage, CrashPoint, DurableFile, SimDisk, SimDiskConfig, WalSink};
pub use stream::{ArrivalModel, StreamConfig, StreamEvent};
pub use supervisor::{AttemptLedger, RetryQueue, Verdict};
pub use tenant::{
    MultiTenantConfig, MultiTenantEngine, MultiTenantOutcome, TenantError, TenantRun, TenantSpec,
};
pub use vmetrics::{
    simulate_drr, simulate_tenant_shards, DrrJob, DrrStats, ExecStats, FaultCounters,
    ShardScaleStats, VirtualHistogram,
};
pub use wal::{QuarantinedRecord, Recovery, WalError, WalRecord, WriteAheadLog};
