//! Worker supervision primitives for the crash-tolerant engine.
//!
//! The engine's worker threads can die mid-event — by an injected fault
//! ([`crate::fault`]) or an organic bug — and an on-call serving plane
//! must absorb that without aborting or losing work. This module holds
//! the pieces the engine's supervision loop is built from:
//!
//! - **Poison recovery** ([`lock_recovered`], [`wait_recovered`]): a
//!   panicking worker poisons any `Mutex` it holds; treating that as
//!   fatal (the old `.expect("... poisoned")` sites) turns one dead
//!   worker into a dead engine. Commit state is repaired by the
//!   supervisor re-dispatching the lost event, so every lock site
//!   recovers the guard via [`std::sync::PoisonError::into_inner`] and counts the
//!   recovery in [`FaultCounters::poison_recoveries`].
//! - **Re-dispatch queue** ([`RetryQueue`]): events whose attempt was
//!   lost (panic, stall, transient error) go back on a shared queue that
//!   workers drain ahead of the dispatch channel, so a lost event is
//!   retried promptly and the commit watermark keeps advancing.
//! - **Attempt / kill ledger** ([`AttemptLedger`]): per-event counters
//!   deciding when an event stops being retried and becomes a poison
//!   pill. An event that kills a worker [`quarantine_kills`] times — or
//!   burns [`max_attempts`] attempts of any kind — is routed to a
//!   dead-letter record instead of taking another worker down. The
//!   thresholds are engine policy, not fault-plan parameters: they come
//!   from [`EngineConfig`](crate::engine::EngineConfig) so a deployment
//!   can tighten or relax quarantine without touching the seeded plan.
//!
//! [`quarantine_kills`]: crate::engine::EngineConfig::quarantine_kills
//! [`max_attempts`]: crate::engine::EngineConfig::max_attempts

use crate::clock::Clock;
use crate::vmetrics::FaultCounters;
use rcacopilot_telemetry::SimDuration;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Locks `mutex`, recovering (and counting) a poisoned guard instead of
/// panicking. Sound here because every structure the engine guards is
/// repaired at a higher level: a half-written commit slot is overwritten
/// by the re-dispatched attempt, and caches/queues only ever hold values
/// that are pure functions of their keys.
pub fn lock_recovered<'a, T>(mutex: &'a Mutex<T>, counters: &FaultCounters) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(|poisoned| {
        FaultCounters::bump(&counters.poison_recoveries);
        poisoned.into_inner()
    })
}

/// Like [`lock_recovered`], for structures that live outside the
/// engine's fault plane (e.g. the metrics registry) and therefore have
/// no [`FaultCounters`] to report into. Recovery is still sound: every
/// write under these locks is a monotone accumulation, so a poisoned
/// guard holds at worst a partially-updated aggregate, never a broken
/// invariant.
pub fn lock_recovered_plain<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Virtual seconds a supervisor waits before respawning a dead worker
/// incarnation.
pub const RESPAWN_BACKOFF_SECS: u64 = 1;

/// Pause between a worker death and its respawn, through the engine's
/// [`Clock`]: free on the DES timeline (respawn cost is not modeled
/// there — byte-identity with the pre-clock engine), a real scaled
/// sleep under a wall clock, where thrashing respawns would otherwise
/// burn a core.
pub fn respawn_backoff(clock: &dyn Clock) {
    clock.sleep(SimDuration::from_secs(RESPAWN_BACKOFF_SECS));
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_recovered`].
pub fn wait_recovered<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    counters: &FaultCounters,
) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(|poisoned| {
        FaultCounters::bump(&counters.poison_recoveries);
        poisoned.into_inner()
    })
}

/// Shared queue of events awaiting re-dispatch after a lost attempt.
///
/// Workers pop from here before blocking on the dispatch channel, so a
/// re-dispatched event never waits behind the rest of the stream. The
/// thread whose supervisor pushed an event is itself guaranteed to check
/// the queue on its next (respawned) iteration, so a retry can never be
/// orphaned by workers that already observed a closed channel.
#[derive(Debug, Default)]
pub struct RetryQueue {
    queue: Mutex<VecDeque<usize>>,
}

impl RetryQueue {
    /// An empty queue.
    pub fn new() -> Self {
        RetryQueue::default()
    }

    /// Enqueues an event for another attempt.
    pub fn push(&self, event: usize, counters: &FaultCounters) {
        FaultCounters::bump(&counters.redispatches);
        lock_recovered(&self.queue, counters).push_back(event);
    }

    /// Pops the next event to retry, if any.
    pub fn pop(&self, counters: &FaultCounters) -> Option<usize> {
        lock_recovered(&self.queue, counters).pop_front()
    }

    /// True when no retries are pending.
    pub fn is_empty(&self, counters: &FaultCounters) -> bool {
        lock_recovered(&self.queue, counters).is_empty()
    }
}

/// What the ledger tells the supervisor to do with an event whose
/// attempt was just lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Put it back on the retry queue.
    Retry,
    /// Stop retrying: route to a dead-letter record.
    Quarantine {
        /// Worker kills this event caused.
        kills: u32,
        /// Processing attempts consumed.
        attempts: u32,
    },
}

/// Per-event attempt and worker-kill counters.
///
/// Both counters only ever move forward, and each event is processed by
/// at most one worker at a time (queue / retry queue / in-flight are
/// mutually exclusive states), so the per-event history — and therefore
/// the quarantine point — is deterministic for a fixed fault plan.
#[derive(Debug)]
pub struct AttemptLedger {
    attempts: Vec<AtomicU32>,
    kills: Vec<AtomicU32>,
    quarantine_kills: u32,
    max_attempts: u32,
}

impl AttemptLedger {
    /// A ledger for `n` events: quarantine after `quarantine_kills`
    /// worker kills or `max_attempts` attempts of any kind (both clamped
    /// to at least 1).
    pub fn new(n: usize, quarantine_kills: u32, max_attempts: u32) -> Self {
        AttemptLedger {
            attempts: (0..n).map(|_| AtomicU32::new(0)).collect(),
            kills: (0..n).map(|_| AtomicU32::new(0)).collect(),
            quarantine_kills: quarantine_kills.max(1),
            max_attempts: max_attempts.max(1),
        }
    }

    /// Starts a new processing attempt for `event`; returns its 1-based
    /// attempt number (the fault plan's re-roll key).
    pub fn begin_attempt(&self, event: usize) -> u32 {
        self.attempts[event].fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Attempts consumed so far by `event`.
    pub fn attempts(&self, event: usize) -> u32 {
        self.attempts[event].load(Ordering::Relaxed)
    }

    /// Records that `event`'s worker was killed mid-attempt and decides
    /// whether the event retries or quarantines.
    pub fn record_kill(&self, event: usize) -> Verdict {
        let kills = self.kills[event].fetch_add(1, Ordering::Relaxed) + 1;
        let attempts = self.attempts(event);
        if kills >= self.quarantine_kills || attempts >= self.max_attempts {
            Verdict::Quarantine { kills, attempts }
        } else {
            Verdict::Retry
        }
    }

    /// Records a lost (but non-fatal) attempt — stall or transient error
    /// — and decides whether the event retries or quarantines.
    pub fn record_loss(&self, event: usize) -> Verdict {
        let kills = self.kills[event].load(Ordering::Relaxed);
        let attempts = self.attempts(event);
        if attempts >= self.max_attempts {
            Verdict::Quarantine { kills, attempts }
        } else {
            Verdict::Retry
        }
    }
}

/// In-flight event marker for one worker thread, written before an
/// attempt starts and cleared after its slot commits. Lives *outside*
/// the worker's `catch_unwind` so the supervisor can read which event a
/// dead incarnation was holding. (`usize::MAX` = none.)
#[derive(Debug)]
pub struct InFlight(AtomicUsize);

impl InFlight {
    /// No event in flight.
    pub fn empty() -> Self {
        InFlight(AtomicUsize::new(usize::MAX))
    }

    /// Marks `event` as being processed by this worker.
    pub fn set(&self, event: usize) {
        self.0.store(event, Ordering::Release);
    }

    /// Clears and returns the in-flight event, if any.
    pub fn take(&self) -> Option<usize> {
        match self.0.swap(usize::MAX, Ordering::AcqRel) {
            usize::MAX => None,
            event => Some(event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_recovered_survives_poison_and_counts_it() {
        let counters = FaultCounters::new();
        let mutex = Mutex::new(41);
        // Poison it: panic while holding the guard.
        let poisoner = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mutex.lock().unwrap();
            panic!("boom");
        }));
        assert!(poisoner.is_err());
        assert!(mutex.is_poisoned());
        let mut guard = lock_recovered(&mutex, &counters);
        *guard += 1;
        assert_eq!(*guard, 42);
        assert_eq!(FaultCounters::get(&counters.poison_recoveries), 1);
    }

    #[test]
    fn retry_queue_is_fifo_and_counts_redispatches() {
        let counters = FaultCounters::new();
        let q = RetryQueue::new();
        assert!(q.is_empty(&counters));
        q.push(3, &counters);
        q.push(7, &counters);
        assert_eq!(q.pop(&counters), Some(3));
        assert_eq!(q.pop(&counters), Some(7));
        assert_eq!(q.pop(&counters), None);
        assert_eq!(FaultCounters::get(&counters.redispatches), 2);
    }

    #[test]
    fn ledger_quarantines_after_two_kills_by_default() {
        let ledger = AttemptLedger::new(2, 2, 6);
        ledger.begin_attempt(0);
        assert_eq!(ledger.record_kill(0), Verdict::Retry);
        ledger.begin_attempt(0);
        assert_eq!(
            ledger.record_kill(0),
            Verdict::Quarantine {
                kills: 2,
                attempts: 2
            }
        );
    }

    #[test]
    fn ledger_quarantines_on_attempt_exhaustion() {
        let ledger = AttemptLedger::new(1, 2, 3);
        for _ in 0..2 {
            ledger.begin_attempt(0);
            assert_eq!(ledger.record_loss(0), Verdict::Retry);
        }
        ledger.begin_attempt(0);
        assert_eq!(
            ledger.record_loss(0),
            Verdict::Quarantine {
                kills: 0,
                attempts: 3
            }
        );
    }

    #[test]
    fn inflight_marker_round_trips() {
        let marker = InFlight::empty();
        assert_eq!(marker.take(), None);
        marker.set(5);
        assert_eq!(marker.take(), Some(5));
        assert_eq!(marker.take(), None);
    }
}
