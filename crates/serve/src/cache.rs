//! Content-hash memoization for the expensive per-incident stages.
//!
//! Monitors flap: the same incident is frequently re-raised with
//! byte-identical diagnostics. Summarization and embedding are pure
//! functions of the collected text, so the engine memoizes both behind a
//! 64-bit FNV-1a content hash — a cache hit returns the exact value a
//! recomputation would, which keeps the engine's output independent of
//! hit/miss patterns (and therefore of worker scheduling).
//!
//! The cache is sharded N-way by key (matching the retrieval plane's
//! shard count) so concurrent workers memoizing different incidents do
//! not serialize on one global lock, and every lock site goes through
//! [`supervisor::lock_recovered`](crate::supervisor::lock_recovered): a
//! guard poisoned by a dying worker is recovered and counted in
//! [`FaultCounters`] instead of cascading. Recovery is sound here because
//! every cached value is a pure function of its key — the map is
//! consistent no matter where a panicking worker died (at worst one
//! counter bump or one insert is lost, costing only a recomputation).

use crate::supervisor::lock_recovered;
use crate::vmetrics::FaultCounters;
use std::collections::HashMap;
use std::sync::Mutex;

// One FNV-1a definition serves both planes: the retrieval router and the
// memo caches must agree with historical hashes byte-for-byte.
pub use rcacopilot_core::retrieval::fnv1a;

/// Thread-safe memoization cache, sharded by key.
///
/// Values must be pure functions of the hashed content; the cache then
/// never changes observable results, only the work done to produce them.
#[derive(Debug)]
pub struct MemoCache<V: Clone> {
    shards: Vec<Mutex<MemoInner<V>>>,
}

impl<V: Clone> Default for MemoCache<V> {
    fn default() -> Self {
        MemoCache::new(1)
    }
}

#[derive(Debug)]
struct MemoInner<V> {
    map: HashMap<u64, V>,
    hits: u64,
    misses: u64,
}

impl<V> Default for MemoInner<V> {
    fn default() -> Self {
        MemoInner {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }
}

impl<V: Clone> MemoCache<V> {
    /// An empty cache with `shards` lock domains (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        MemoCache {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(MemoInner::default()))
                .collect(),
        }
    }

    /// Number of lock domains.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: u64) -> &Mutex<MemoInner<V>> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Returns the cached value for `key`, computing and inserting it via
    /// `compute` on a miss. The lock is *not* held during `compute`; on a
    /// race the first insert wins and later computations are discarded,
    /// which is harmless because `compute` is pure.
    pub fn get_or_insert_with(
        &self,
        key: u64,
        counters: &FaultCounters,
        compute: impl FnOnce() -> V,
    ) -> V {
        {
            let mut inner = lock_recovered(self.shard(key), counters);
            if let Some(v) = inner.map.get(&key) {
                let v = v.clone();
                inner.hits += 1;
                return v;
            }
            inner.misses += 1;
        }
        let v = compute();
        let mut inner = lock_recovered(self.shard(key), counters);
        inner.map.entry(key).or_insert_with(|| v.clone());
        inner.map[&key].clone()
    }

    /// `(hits, misses)` counters since construction, summed over shards.
    pub fn stats(&self, counters: &FaultCounters) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), shard| {
            let inner = lock_recovered(shard, counters);
            (h + inner.hits, m + inner.misses)
        })
    }

    /// Number of distinct cached entries across shards.
    pub fn len(&self, counters: &FaultCounters) -> usize {
        self.shards
            .iter()
            .map(|shard| lock_recovered(shard, counters).map.len())
            .sum()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self, counters: &FaultCounters) -> bool {
        self.len(counters) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_and_is_stable() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        // Known FNV-1a vector: empty input returns the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn cache_computes_once_per_key() {
        let counters = FaultCounters::default();
        let cache = MemoCache::new(1);
        let mut calls = 0;
        let a = cache.get_or_insert_with(1, &counters, || {
            calls += 1;
            "v1".to_string()
        });
        let b = cache.get_or_insert_with(1, &counters, || {
            calls += 1;
            "other".to_string()
        });
        assert_eq!(a, "v1");
        assert_eq!(b, "v1");
        assert_eq!(calls, 1);
        assert_eq!(cache.stats(&counters), (1, 1));
        assert_eq!(cache.len(&counters), 1);
    }

    #[test]
    fn sharded_cache_spreads_keys_but_answers_identically() {
        let counters = FaultCounters::default();
        let cache = MemoCache::new(4);
        assert_eq!(cache.shard_count(), 4);
        for key in 0..32u64 {
            assert_eq!(
                cache.get_or_insert_with(key, &counters, || key * 3),
                key * 3
            );
        }
        assert_eq!(cache.len(&counters), 32);
        // Re-reads hit regardless of which shard holds the key.
        for key in 0..32u64 {
            assert_eq!(cache.get_or_insert_with(key, &counters, || 0), key * 3);
        }
        assert_eq!(cache.stats(&counters), (32, 32));
        // Keys landed in more than one lock domain.
        let populated = cache
            .shards
            .iter()
            .filter(|s| !lock_recovered(s, &counters).map.is_empty())
            .count();
        assert!(
            populated > 1,
            "expected keys across shards, got {populated}"
        );
        // Zero shards clamps rather than panics.
        assert_eq!(MemoCache::<u64>::new(0).shard_count(), 1);
    }

    #[test]
    fn cache_is_usable_across_threads() {
        let counters = FaultCounters::default();
        let cache = MemoCache::new(4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let (cache, counters) = (&cache, &counters);
                s.spawn(move || {
                    for i in 0..50u64 {
                        let v = cache.get_or_insert_with(i % 10, counters, || (i % 10) * 2);
                        assert_eq!(v, (i % 10) * 2, "thread {t}");
                    }
                });
            }
        });
        assert_eq!(cache.len(&counters), 10);
        let (hits, misses) = cache.stats(&counters);
        assert_eq!(hits + misses, 200);
        assert!(misses >= 10);
    }

    #[test]
    fn poisoned_shard_is_recovered_and_counted() {
        let counters = FaultCounters::default();
        let cache = std::sync::Arc::new(MemoCache::new(1));
        cache.get_or_insert_with(7, &counters, || 7u64);
        // Poison the only shard lock by panicking while holding it.
        let poisoner = cache.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.shards[0].lock().unwrap();
            panic!("worker dies holding the memo lock");
        })
        .join();
        // The cache still answers, and the recovery is observable.
        assert_eq!(cache.get_or_insert_with(7, &counters, || 0), 7);
        assert!(FaultCounters::get(&counters.poison_recoveries) >= 1);
    }
}
