//! Content-hash memoization for the expensive per-incident stages.
//!
//! Monitors flap: the same incident is frequently re-raised with
//! byte-identical diagnostics. Summarization and embedding are pure
//! functions of the collected text, so the engine memoizes both behind a
//! 64-bit FNV-1a content hash — a cache hit returns the exact value a
//! recomputation would, which keeps the engine's output independent of
//! hit/miss patterns (and therefore of worker scheduling).

use std::collections::HashMap;
use std::sync::Mutex;

/// 64-bit FNV-1a hash of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Thread-safe memoization cache keyed by content hash.
///
/// Values must be pure functions of the hashed content; the cache then
/// never changes observable results, only the work done to produce them.
#[derive(Debug, Default)]
pub struct MemoCache<V: Clone> {
    inner: Mutex<MemoInner<V>>,
}

#[derive(Debug)]
struct MemoInner<V> {
    map: HashMap<u64, V>,
    hits: u64,
    misses: u64,
}

impl<V> Default for MemoInner<V> {
    fn default() -> Self {
        MemoInner {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }
}

impl<V: Clone> MemoCache<V> {
    /// An empty cache.
    pub fn new() -> Self {
        MemoCache {
            inner: Mutex::new(MemoInner::default()),
        }
    }

    /// Locks the cache, recovering a poisoned guard: every cached value
    /// is a pure function of its key, so the map is consistent no matter
    /// where a panicking worker died (a poisoned guard can at worst lose
    /// one counter bump or one insert, both of which only cost a
    /// recomputation).
    fn lock(&self) -> std::sync::MutexGuard<'_, MemoInner<V>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the cached value for `key`, computing and inserting it via
    /// `compute` on a miss. The lock is *not* held during `compute`; on a
    /// race the first insert wins and later computations are discarded,
    /// which is harmless because `compute` is pure.
    pub fn get_or_insert_with(&self, key: u64, compute: impl FnOnce() -> V) -> V {
        {
            let mut inner = self.lock();
            if let Some(v) = inner.map.get(&key) {
                let v = v.clone();
                inner.hits += 1;
                return v;
            }
            inner.misses += 1;
        }
        let v = compute();
        let mut inner = self.lock();
        inner.map.entry(key).or_insert_with(|| v.clone());
        inner.map[&key].clone()
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.lock();
        (inner.hits, inner.misses)
    }

    /// Number of distinct cached entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_and_is_stable() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        // Known FNV-1a vector: empty input returns the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn cache_computes_once_per_key() {
        let cache = MemoCache::new();
        let mut calls = 0;
        let a = cache.get_or_insert_with(1, || {
            calls += 1;
            "v1".to_string()
        });
        let b = cache.get_or_insert_with(1, || {
            calls += 1;
            "other".to_string()
        });
        assert_eq!(a, "v1");
        assert_eq!(b, "v1");
        assert_eq!(calls, 1);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_is_usable_across_threads() {
        let cache = MemoCache::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..50u64 {
                        let v = cache.get_or_insert_with(i % 10, || (i % 10) * 2);
                        assert_eq!(v, (i % 10) * 2, "thread {t}");
                    }
                });
            }
        });
        assert_eq!(cache.len(), 10);
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 200);
        assert!(misses >= 10);
    }
}
