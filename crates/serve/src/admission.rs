//! Severity-aware admission control and load shedding.
//!
//! The plan is computed against a *reference* drain rate on the virtual
//! clock, not against the live worker pool: a virtual backlog of
//! service-seconds fills as alerts arrive and drains at a fixed rate.
//! Low-severity alerts are shed first — each severity may only fill its
//! own fraction of the backlog capacity — and once the backlog crosses
//! the degrade threshold, admitted work runs in degraded mode (cheap
//! truncation instead of LLM summarization). Because the plan depends
//! only on arrival times, severities, and ex-ante costs, it is identical
//! for every worker count: shedding policy never couples the engine's
//! *output* to its *parallelism*.
//!
//! **Dual-mode note** (PR 9): the same independence holds across clock
//! backends. Deadline and budget arithmetic here is *always* virtual —
//! [`crate::clock::RealClock`] changes how long dispatch and stages
//! take in wall time, never what the admission plan decides — so the
//! plan (and with it the prediction log) is byte-identical between DES
//! and real-thread runs by construction.

use rcacopilot_telemetry::time::SimTime;
use rcacopilot_telemetry::Severity;

/// Admission-control parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Master switch; when false every event is admitted at full service.
    pub enabled: bool,
    /// Backlog capacity in virtual service-seconds.
    pub capacity_secs: u64,
    /// Reference drain rate: service-seconds retired per virtual second.
    pub drain_rate: f64,
    /// Backlog fraction above which admitted work degrades.
    pub degrade_frac: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: true,
            capacity_secs: 2 * 3_600,
            drain_rate: 1.0,
            degrade_frac: 0.6,
        }
    }
}

impl AdmissionConfig {
    /// No admission control: everything runs at full service (the parity
    /// configuration).
    pub fn unbounded() -> Self {
        AdmissionConfig {
            enabled: false,
            ..AdmissionConfig::default()
        }
    }

    /// This tenant's bulkhead slice of the admission budget: capacity and
    /// drain rate scale by `weight / total_weight`, the degrade threshold
    /// fraction is unchanged. The share is *reserved*, not work-conserving
    /// — a tenant's plan depends only on its own stream, which is what
    /// makes per-tenant prediction logs byte-identical whether neighbors
    /// are quiet or storming. A single tenant (`weight == total_weight`)
    /// keeps the whole budget, reproducing the single-tenant plan exactly.
    pub fn share(&self, weight: u32, total_weight: u32) -> Self {
        assert!(weight > 0, "tenant weight must be positive");
        assert!(total_weight >= weight, "total weight below tenant weight");
        if weight == total_weight {
            return *self;
        }
        let frac = f64::from(weight) / f64::from(total_weight);
        AdmissionConfig {
            enabled: self.enabled,
            capacity_secs: (self.capacity_secs as f64 * frac).floor() as u64,
            drain_rate: self.drain_rate * frac,
            degrade_frac: self.degrade_frac,
        }
    }
}

/// Fraction of backlog capacity a severity may fill (Sev1 preempts all of
/// it; Sev4 is shed once the backlog is half full).
pub fn severity_admit_frac(severity: Severity) -> f64 {
    match severity {
        Severity::Sev1 => 1.0,
        Severity::Sev2 => 0.9,
        Severity::Sev3 => 0.7,
        Severity::Sev4 => 0.5,
    }
}

/// What the plan decided for one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Admitted at full service.
    Full,
    /// Admitted, but summarization is replaced by truncation.
    Degraded,
    /// Rejected: the alert is logged and dropped.
    Shed,
}

/// One event as admission control sees it.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionInput {
    /// Virtual arrival instant.
    pub at: SimTime,
    /// Alert severity.
    pub severity: Severity,
    /// Ex-ante full-service cost, virtual seconds.
    pub full_cost_secs: u64,
    /// Ex-ante degraded-service cost, virtual seconds.
    pub degraded_cost_secs: u64,
}

/// The admission plan over a whole stream.
#[derive(Debug, Clone)]
pub struct AdmissionPlan {
    /// Per-event decision, in stream order.
    pub dispositions: Vec<Disposition>,
    /// Virtual backlog (service-seconds) observed at each arrival,
    /// before the event's own cost is added.
    pub backlog_at_arrival: Vec<u64>,
    /// Peak backlog over the stream.
    pub peak_backlog_secs: u64,
    /// Number of shed events.
    pub shed: usize,
    /// Number of degraded admissions.
    pub degraded: usize,
}

impl AdmissionPlan {
    /// Number of admitted events (full + degraded).
    pub fn admitted(&self) -> usize {
        self.dispositions.len() - self.shed
    }
}

/// Computes the admission plan for `events` (must be sorted by arrival).
pub fn plan(events: &[AdmissionInput], config: &AdmissionConfig) -> AdmissionPlan {
    let mut dispositions = Vec::with_capacity(events.len());
    let mut backlog_at_arrival = Vec::with_capacity(events.len());
    let mut backlog = 0.0f64;
    let mut last = events.first().map(|e| e.at).unwrap_or(SimTime::EPOCH);
    let mut peak = 0u64;
    let mut shed = 0usize;
    let mut degraded = 0usize;
    let capacity = config.capacity_secs as f64;
    for e in events {
        debug_assert!(e.at >= last, "admission input must be arrival-sorted");
        backlog = (backlog - config.drain_rate * (e.at - last).as_secs() as f64).max(0.0);
        last = e.at;
        backlog_at_arrival.push(backlog as u64);
        if !config.enabled {
            dispositions.push(Disposition::Full);
            backlog += e.full_cost_secs as f64;
            peak = peak.max(backlog as u64);
            continue;
        }
        let degrade = backlog > config.degrade_frac * capacity;
        let cost = if degrade {
            e.degraded_cost_secs
        } else {
            e.full_cost_secs
        } as f64;
        let cap = severity_admit_frac(e.severity) * capacity;
        if backlog + cost > cap {
            dispositions.push(Disposition::Shed);
            shed += 1;
        } else {
            backlog += cost;
            peak = peak.max(backlog as u64);
            if degrade {
                dispositions.push(Disposition::Degraded);
                degraded += 1;
            } else {
                dispositions.push(Disposition::Full);
            }
        }
    }
    AdmissionPlan {
        dispositions,
        backlog_at_arrival,
        peak_backlog_secs: peak,
        shed,
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(at_secs: u64, severity: Severity, cost: u64) -> AdmissionInput {
        AdmissionInput {
            at: SimTime::from_secs(at_secs),
            severity,
            full_cost_secs: cost,
            degraded_cost_secs: cost / 2,
        }
    }

    #[test]
    fn quiet_stream_admits_everything_at_full_service() {
        let events: Vec<AdmissionInput> = (0..20)
            .map(|i| input(i * 3_600, Severity::Sev4, 300))
            .collect();
        let plan = plan(&events, &AdmissionConfig::default());
        assert_eq!(plan.shed, 0);
        assert_eq!(plan.degraded, 0);
        assert!(plan.dispositions.iter().all(|d| *d == Disposition::Full));
    }

    #[test]
    fn storm_sheds_low_severity_first_and_degrades_under_pressure() {
        // 60 near-simultaneous arrivals, alternating severities.
        let events: Vec<AdmissionInput> = (0..60)
            .map(|i| {
                let sev = match i % 3 {
                    0 => Severity::Sev1,
                    1 => Severity::Sev3,
                    _ => Severity::Sev4,
                };
                input(i, sev, 400)
            })
            .collect();
        let cfg = AdmissionConfig::default();
        let plan = plan(&events, &cfg);
        assert!(plan.shed > 0, "a storm must shed");
        assert!(plan.degraded > 0, "pressure must degrade some admissions");
        let shed_sev1 = events
            .iter()
            .zip(&plan.dispositions)
            .filter(|(e, d)| e.severity == Severity::Sev1 && **d == Disposition::Shed)
            .count();
        let shed_sev4 = events
            .iter()
            .zip(&plan.dispositions)
            .filter(|(e, d)| e.severity == Severity::Sev4 && **d == Disposition::Shed)
            .count();
        assert!(
            shed_sev4 > shed_sev1,
            "Sev4 shed {shed_sev4} must exceed Sev1 shed {shed_sev1}"
        );
        assert!(plan.peak_backlog_secs <= cfg.capacity_secs);
    }

    #[test]
    fn disabled_config_never_sheds_even_under_storm() {
        let events: Vec<AdmissionInput> =
            (0..100).map(|i| input(i, Severity::Sev4, 1_000)).collect();
        let plan = plan(&events, &AdmissionConfig::unbounded());
        assert_eq!(plan.shed, 0);
        assert_eq!(plan.degraded, 0);
        assert!(plan.peak_backlog_secs > 0, "backlog still tracked");
    }

    #[test]
    fn backlog_drains_between_arrivals() {
        let events = vec![
            input(0, Severity::Sev2, 600),
            input(300, Severity::Sev2, 600),
        ];
        let plan = plan(
            &events,
            &AdmissionConfig {
                drain_rate: 1.0,
                ..AdmissionConfig::default()
            },
        );
        assert_eq!(plan.backlog_at_arrival, vec![0, 300]);
    }

    #[test]
    fn zero_capacity_sheds_every_costed_event_but_never_panics() {
        let events: Vec<AdmissionInput> = (0..10)
            .map(|i| {
                let sev = Severity::from_level(1 + (i % 4) as u8).unwrap();
                input(i * 10, sev, 100)
            })
            .collect();
        let plan = plan(
            &events,
            &AdmissionConfig {
                capacity_secs: 0,
                ..AdmissionConfig::default()
            },
        );
        assert_eq!(plan.shed, events.len(), "no capacity admits nothing");
        assert_eq!(plan.admitted(), 0);
        assert_eq!(plan.degraded, 0);
        assert_eq!(plan.peak_backlog_secs, 0);
        assert!(plan.backlog_at_arrival.iter().all(|&b| b == 0));
    }

    #[test]
    fn zero_cost_events_are_admitted_even_at_zero_capacity() {
        // Strict `>` in the shed test: a free event never tips the
        // backlog over any cap, so it always gets through.
        let events = vec![input(0, Severity::Sev4, 0), input(1, Severity::Sev1, 0)];
        let plan = plan(
            &events,
            &AdmissionConfig {
                capacity_secs: 0,
                ..AdmissionConfig::default()
            },
        );
        assert_eq!(plan.shed, 0);
        assert_eq!(plan.admitted(), 2);
    }

    #[test]
    fn total_storm_sheds_every_severity_including_sev1() {
        // A single arrival instant with per-event cost above even Sev1's
        // share of the capacity: everything sheds, nothing is lost track
        // of, and the backlog stays pinned at zero.
        let events: Vec<AdmissionInput> = (0..8)
            .map(|i| {
                let sev = Severity::from_level(1 + (i % 4) as u8).unwrap();
                input(0, sev, 10_000)
            })
            .collect();
        let cfg = AdmissionConfig {
            capacity_secs: 900,
            ..AdmissionConfig::default()
        };
        let plan = plan(&events, &cfg);
        assert_eq!(plan.shed, events.len());
        assert_eq!(plan.admitted(), 0);
        assert_eq!(plan.peak_backlog_secs, 0);
        assert_eq!(plan.dispositions.len(), events.len());
    }

    #[test]
    fn share_scales_capacity_and_composes_with_severity_caps() {
        let base = AdmissionConfig::default();
        // Full weight: the identity (bit-for-bit, so single-tenant runs
        // reproduce the legacy plan).
        assert_eq!(base.share(3, 3), base);
        // A half share halves capacity and drain, keeps degrade_frac.
        let half = base.share(1, 2);
        assert_eq!(half.capacity_secs, base.capacity_secs / 2);
        assert!((half.drain_rate - base.drain_rate / 2.0).abs() < 1e-12);
        assert_eq!(half.degrade_frac, base.degrade_frac);
        // Severity caps apply to the *scaled* capacity: an event that
        // clears Sev4's share of the full budget sheds under a half
        // share.
        let cfg = AdmissionConfig {
            capacity_secs: 1_000,
            ..AdmissionConfig::default()
        };
        let full = plan(&[input(0, Severity::Sev4, 400)], &cfg);
        assert_eq!(full.dispositions, vec![Disposition::Full]);
        let shared = plan(&[input(0, Severity::Sev4, 400)], &cfg.share(1, 2));
        assert_eq!(shared.dispositions, vec![Disposition::Shed]);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_share_is_rejected() {
        let _ = AdmissionConfig::default().share(0, 4);
    }

    #[test]
    fn severity_admit_frac_boundaries_are_exact() {
        // severity_admit_frac is monotone in severity and spans (0, 1].
        assert_eq!(severity_admit_frac(Severity::Sev1), 1.0);
        assert_eq!(severity_admit_frac(Severity::Sev4), 0.5);
        let fracs: Vec<f64> = [
            Severity::Sev1,
            Severity::Sev2,
            Severity::Sev3,
            Severity::Sev4,
        ]
        .iter()
        .map(|&s| severity_admit_frac(s))
        .collect();
        assert!(fracs.windows(2).all(|w| w[0] > w[1]));

        // An event landing exactly on its severity cap is admitted
        // (strict `>`); one service-second more is shed.
        let cfg = AdmissionConfig {
            capacity_secs: 1_000,
            ..AdmissionConfig::default()
        };
        let at_cap = plan(&[input(0, Severity::Sev4, 500)], &cfg);
        assert_eq!(at_cap.dispositions, vec![Disposition::Full]);
        let over_cap = plan(&[input(0, Severity::Sev4, 501)], &cfg);
        assert_eq!(over_cap.dispositions, vec![Disposition::Shed]);
        // The same 501-second event clears Sev3's larger share.
        let sev3 = plan(&[input(0, Severity::Sev3, 501)], &cfg);
        assert_eq!(sev3.dispositions, vec![Disposition::Full]);
    }
}
