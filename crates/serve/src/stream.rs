//! Seeded alert streams on virtual time.
//!
//! The batch harness walks the dataset offline; the serving engine
//! consumes a *stream*: each incident's alert arrives at a virtual
//! instant drawn from a seeded arrival process. [`ArrivalModel::Replay`]
//! preserves the campaign's own timeline (the parity mode),
//! [`ArrivalModel::Poisson`] compresses it into memoryless arrivals at a
//! configurable rate, and [`ArrivalModel::Bursty`] adds alert storms —
//! bursts of near-simultaneous arrivals that exercise the engine's
//! admission control. A `reraise_prob` lets monitors flap: a recently
//! streamed incident is re-raised as a duplicate alert, which is what
//! makes the engine's content-hash memoization caches earn their keep.
//!
//! The schedule itself is mode-independent: arrival instants are always
//! computed up front on the virtual timeline, and the engine's
//! [`crate::clock::Clock`] decides what an instant *means* —
//! under the DES backend the dispatcher just advances its cursor, under
//! a real clock [`pace`] can turn the same schedule into actual
//! inter-arrival sleeps. Planning on virtual time either way is what
//! keeps the prediction log byte-identical across modes.
//!
//! Unwrap/lock audit (PR 9, DESIGN.md audit table): this module holds no
//! `unwrap`/`expect`/lock sites. The two panic-adjacent spots are
//! indexing in the private `maybe_reraise` helper (guarded: `window ≥ 1`
//! because the event list is non-empty, and `len - 1 - r` with
//! `r < window ≤ len`) and the float casts in the private `exp_gap`
//! helper (clamped by `gen_range(1e-9..1.0)`
//! and `.max(1)`). Keep it that way.

use crate::clock::Clock;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rcacopilot_simcloud::Incident;
use rcacopilot_telemetry::time::{SimDuration, SimTime};

/// How virtual arrival instants are assigned to the incident sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Keep each incident's original occurrence time, divided by
    /// `speedup` (1 = the campaign timeline verbatim).
    Replay {
        /// Time compression factor (≥ 1).
        speedup: u64,
    },
    /// Memoryless arrivals: exponential inter-arrival gaps with the
    /// given mean, independent of the campaign timeline.
    Poisson {
        /// Mean gap between consecutive arrivals, virtual seconds.
        mean_gap_secs: u64,
    },
    /// Poisson background plus alert storms: with probability
    /// `burst_prob` an arrival opens a burst of `burst_len` events
    /// separated by short `burst_gap_secs` gaps.
    Bursty {
        /// Mean background gap, virtual seconds.
        mean_gap_secs: u64,
        /// Probability that an arrival opens a storm.
        burst_prob: f64,
        /// Events per storm (including the opener).
        burst_len: usize,
        /// Gap between storm events, virtual seconds.
        burst_gap_secs: u64,
    },
}

/// Stream parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Seed of the arrival process (independent of the campaign seed).
    pub seed: u64,
    /// The arrival model.
    pub arrivals: ArrivalModel,
    /// Probability that a monitor flaps: after an incident streams, a
    /// duplicate alert for a recent incident is injected. Ignored under
    /// [`ArrivalModel::Replay`].
    pub reraise_prob: f64,
}

impl StreamConfig {
    /// The parity configuration: the campaign timeline verbatim, no
    /// duplicate alerts.
    pub fn replay() -> Self {
        StreamConfig {
            seed: 0,
            arrivals: ArrivalModel::Replay { speedup: 1 },
            reraise_prob: 0.0,
        }
    }
}

/// One event of the alert stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamEvent {
    /// Position in the stream (commit order).
    pub seq: usize,
    /// Index into the incident slice the stream was scheduled over.
    pub incident_idx: usize,
    /// Virtual arrival instant of the alert.
    pub at: SimTime,
}

/// Exponential gap with the given mean, truncated away from zero.
fn exp_gap(rng: &mut SmallRng, mean_secs: u64) -> u64 {
    let u: f64 = rng.gen_range(1e-9..1.0);
    ((-(mean_secs as f64) * u.ln()) as u64).max(1)
}

/// Schedules the alert stream over `incidents` (taken in slice order).
///
/// Events come back sorted by arrival time with `seq` equal to their
/// position; everything is deterministic in `config`.
pub fn schedule(incidents: &[Incident], config: &StreamConfig) -> Vec<StreamEvent> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut events: Vec<(usize, SimTime)> = Vec::with_capacity(incidents.len());
    match config.arrivals {
        ArrivalModel::Replay { speedup } => {
            let speedup = speedup.max(1);
            for (i, inc) in incidents.iter().enumerate() {
                let at = SimTime::from_secs(inc.occurred_at().as_secs() / speedup);
                events.push((i, at));
            }
        }
        ArrivalModel::Poisson { mean_gap_secs } => {
            let mut t = SimTime::EPOCH;
            for i in 0..incidents.len() {
                t += SimDuration::from_secs(exp_gap(&mut rng, mean_gap_secs));
                events.push((i, t));
                maybe_reraise(&mut rng, config, &mut events, &mut t);
            }
        }
        ArrivalModel::Bursty {
            mean_gap_secs,
            burst_prob,
            burst_len,
            burst_gap_secs,
        } => {
            let mut t = SimTime::EPOCH;
            let mut i = 0usize;
            while i < incidents.len() {
                t += SimDuration::from_secs(exp_gap(&mut rng, mean_gap_secs));
                let storm = if rng.gen_bool(burst_prob.clamp(0.0, 1.0)) {
                    burst_len.max(1)
                } else {
                    1
                };
                for b in 0..storm {
                    if i >= incidents.len() {
                        break;
                    }
                    if b > 0 {
                        t += SimDuration::from_secs(burst_gap_secs.max(1));
                    }
                    events.push((i, t));
                    i += 1;
                    maybe_reraise(&mut rng, config, &mut events, &mut t);
                }
            }
        }
    }
    // Replay timelines are already sorted; synthetic ones are built
    // sorted too, but make the invariant explicit (stable by
    // construction order on ties).
    events.sort_by_key(|&(_, at)| at);
    events
        .into_iter()
        .enumerate()
        .map(|(seq, (incident_idx, at))| StreamEvent {
            seq,
            incident_idx,
            at,
        })
        .collect()
}

/// Paces the dispatcher to an event's scheduled arrival: advances the
/// clock's planning cursor to `at` and, under a pacing real clock,
/// sleeps out the scaled remainder of the inter-arrival gap. Free under
/// the DES backend — the dispatch loop calls this unconditionally.
pub fn pace(clock: &dyn Clock, at: SimTime) {
    clock.advance_to(at);
    clock.sleep_until(at);
}

/// With `reraise_prob`, injects a duplicate alert for one of the last
/// eight streamed incidents shortly after `t`.
fn maybe_reraise(
    rng: &mut SmallRng,
    config: &StreamConfig,
    events: &mut Vec<(usize, SimTime)>,
    t: &mut SimTime,
) {
    if config.reraise_prob <= 0.0 || events.is_empty() {
        return;
    }
    if rng.gen_bool(config.reraise_prob.clamp(0.0, 1.0)) {
        let window = events.len().min(8);
        let pick = events[events.len() - 1 - rng.gen_range(0..window)].0;
        *t += SimDuration::from_secs(rng.gen_range(30..600));
        events.push((pick, *t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcacopilot_simcloud::noise::NoiseProfile;
    use rcacopilot_simcloud::{generate_dataset, CampaignConfig, Topology};

    fn incidents() -> Vec<Incident> {
        generate_dataset(&CampaignConfig {
            seed: 3,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile {
                routine_logs: 2,
                herring_logs: 1,
                healthy_traces: 1,
                unrelated_failure: false,
                bystander_anomalies: 1,
            },
        })
        .incidents()
        .iter()
        .take(40)
        .cloned()
        .collect()
    }

    #[test]
    fn replay_preserves_original_times_and_order() {
        let incs = incidents();
        let events = schedule(&incs, &StreamConfig::replay());
        assert_eq!(events.len(), incs.len());
        for e in &events {
            assert_eq!(e.at, incs[e.incident_idx].occurred_at());
            assert_eq!(e.seq, e.incident_idx);
        }
    }

    #[test]
    fn poisson_is_seeded_sorted_and_covers_all_incidents() {
        let incs = incidents();
        let cfg = StreamConfig {
            seed: 9,
            arrivals: ArrivalModel::Poisson { mean_gap_secs: 120 },
            reraise_prob: 0.0,
        };
        let a = schedule(&incs, &cfg);
        let b = schedule(&incs, &cfg);
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), incs.len());
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        let other = schedule(&incs, &StreamConfig { seed: 10, ..cfg });
        assert_ne!(a, other, "different seeds shuffle the timeline");
    }

    #[test]
    fn pace_advances_the_virtual_cursor_for_free() {
        let clock = crate::clock::VirtualClock::new();
        let t0 = std::time::Instant::now();
        pace(&clock, SimTime::from_secs(1 << 30));
        assert!(
            t0.elapsed().as_millis() < 100,
            "virtual pacing never sleeps"
        );
        assert_eq!(clock.now(), SimTime::from_secs(1 << 30));
    }

    #[test]
    fn bursts_produce_tight_clusters_and_reraises_duplicate_incidents() {
        let incs = incidents();
        let cfg = StreamConfig {
            seed: 4,
            arrivals: ArrivalModel::Bursty {
                mean_gap_secs: 3_600,
                burst_prob: 0.5,
                burst_len: 5,
                burst_gap_secs: 10,
            },
            reraise_prob: 0.3,
        };
        let events = schedule(&incs, &cfg);
        assert!(events.len() > incs.len(), "re-raises add duplicate events");
        let mut seen = vec![0usize; incs.len()];
        for e in &events {
            seen[e.incident_idx] += 1;
        }
        assert!(seen.iter().all(|&c| c >= 1), "every incident streams");
        assert!(seen.iter().any(|&c| c > 1), "some incident re-raised");
        let tight = events
            .windows(2)
            .filter(|w| (w[1].at - w[0].at).as_secs() <= 10)
            .count();
        assert!(tight > 5, "storms cluster arrivals, got {tight}");
    }
}
