//! Virtual-time performance metrics.
//!
//! The engine measures itself on the *virtual* clock of the alert stream,
//! not the host's wall clock: stage costs come from the ex-ante service
//! model and queueing comes from a deterministic discrete-event
//! simulation. That keeps every number reproducible (and meaningful on a
//! single-core CI box, where wall-clock thread scaling is impossible to
//! observe).

use serde_json::{json, Value};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Robustness counters for one engine run.
///
/// Workers are real OS threads, so these are atomics bumped as the
/// supervision machinery acts: injected faults, panics caught and
/// workers respawned, events re-dispatched or quarantined, and poisoned
/// locks recovered instead of aborted. The *counts* are deterministic
/// for a fixed fault plan (decisions depend only on `(seq, attempt)`),
/// even though the thread that bumps each counter is not.
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Worker panics caught by the supervisor (injected or organic).
    pub worker_panics: AtomicU64,
    /// Worker incarnations respawned after a caught panic.
    pub worker_respawns: AtomicU64,
    /// Attempts abandoned past their virtual stage deadline.
    pub injected_stalls: AtomicU64,
    /// Attempts failed by an injected transient stage error.
    pub injected_errors: AtomicU64,
    /// Events put back on the retry queue after a lost attempt.
    pub redispatches: AtomicU64,
    /// Events quarantined as poison pills (dead-letter records).
    pub quarantined: AtomicU64,
    /// Events whose collection stage failed (degraded `Failed` outcome).
    pub collection_failures: AtomicU64,
    /// Poisoned locks recovered via `PoisonError::into_inner` instead of
    /// aborting the engine.
    pub poison_recoveries: AtomicU64,
}

impl FaultCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        FaultCounters::default()
    }

    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read helper.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// JSON summary for the engine report.
    pub fn to_json(&self) -> Value {
        json!({
            "worker_panics": Self::get(&self.worker_panics),
            "worker_respawns": Self::get(&self.worker_respawns),
            "injected_stalls": Self::get(&self.injected_stalls),
            "injected_errors": Self::get(&self.injected_errors),
            "redispatches": Self::get(&self.redispatches),
            "quarantined": Self::get(&self.quarantined),
            "collection_failures": Self::get(&self.collection_failures),
            "poison_recoveries": Self::get(&self.poison_recoveries),
        })
    }
}

/// A histogram of virtual durations in seconds.
#[derive(Debug, Clone, Default)]
pub struct VirtualHistogram {
    samples: Vec<u64>,
}

impl VirtualHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        VirtualHistogram::default()
    }

    /// Records one duration sample (virtual seconds).
    pub fn record(&mut self, secs: u64) {
        self.samples.push(secs);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Nearest-rank percentile (`q` in `0.0..=1.0`); 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank =
            ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Largest sample; 0 when empty.
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// JSON summary: count, mean, p50, p99, max.
    pub fn to_json(&self) -> Value {
        json!({
            "count": self.len(),
            "mean_secs": self.mean(),
            "p50_secs": self.percentile(0.50),
            "p99_secs": self.percentile(0.99),
            "max_secs": self.max(),
        })
    }
}

/// One job for the execution simulation: arrival instant and service
/// demand, both in virtual seconds.
#[derive(Debug, Clone, Copy)]
pub struct VirtualJob {
    /// Arrival instant (virtual seconds since stream epoch).
    pub arrival_secs: u64,
    /// Service demand (virtual seconds).
    pub service_secs: u64,
}

/// Result of simulating the worker pool over the admitted jobs.
#[derive(Debug, Clone)]
pub struct ExecStats {
    /// Queue-wait per job (start − arrival).
    pub waits: VirtualHistogram,
    /// Sojourn time per job (finish − arrival).
    pub latencies: VirtualHistogram,
    /// Virtual makespan: last finish − first arrival (0 when no jobs).
    pub makespan_secs: u64,
    /// Peak number of jobs that had arrived but not yet started.
    pub peak_queue_depth: usize,
    /// Number of jobs simulated.
    pub completed: usize,
}

impl ExecStats {
    /// Completed jobs per virtual hour; 0.0 for an empty or zero-length run.
    pub fn throughput_per_hour(&self) -> f64 {
        if self.makespan_secs == 0 {
            return 0.0;
        }
        self.completed as f64 * 3_600.0 / self.makespan_secs as f64
    }

    /// JSON summary of the run.
    pub fn to_json(&self) -> Value {
        json!({
            "completed": self.completed,
            "makespan_secs": self.makespan_secs,
            "throughput_per_hour": self.throughput_per_hour(),
            "peak_queue_depth": self.peak_queue_depth,
            "wait": self.waits.to_json(),
            "latency": self.latencies.to_json(),
        })
    }
}

/// Simulates `workers` FCFS servers over `jobs` (must be sorted by
/// arrival; ties keep slice order). Deterministic: the free server with
/// the earliest availability takes the next job in arrival order.
pub fn simulate_pool(jobs: &[VirtualJob], workers: usize) -> ExecStats {
    let workers = workers.max(1);
    let mut free: BinaryHeap<Reverse<u64>> = (0..workers).map(|_| Reverse(0u64)).collect();
    let mut waits = VirtualHistogram::new();
    let mut latencies = VirtualHistogram::new();
    let mut starts: Vec<u64> = Vec::with_capacity(jobs.len());
    let mut last_finish = 0u64;
    for job in jobs {
        let Reverse(free_at) = free.pop().expect("worker heap never empty");
        let start = free_at.max(job.arrival_secs);
        let finish = start + job.service_secs;
        free.push(Reverse(finish));
        starts.push(start);
        waits.record(start - job.arrival_secs);
        latencies.record(finish - job.arrival_secs);
        last_finish = last_finish.max(finish);
    }
    // Peak backlog: sweep +1 at each arrival, −1 at each start. Starts
    // are processed before arrivals at equal instants so a job that
    // starts the moment it arrives never counts as queued.
    let mut deltas: Vec<(u64, i32, i32)> = Vec::with_capacity(jobs.len() * 2);
    for (job, &start) in jobs.iter().zip(&starts) {
        deltas.push((job.arrival_secs, 1, 1));
        deltas.push((start, 0, -1));
    }
    deltas.sort_unstable();
    let mut depth = 0i32;
    let mut peak = 0i32;
    for (_, _, d) in deltas {
        depth += d;
        peak = peak.max(depth);
    }
    let makespan = if jobs.is_empty() {
        0
    } else {
        last_finish.saturating_sub(jobs[0].arrival_secs)
    };
    ExecStats {
        waits,
        latencies,
        makespan_secs: makespan,
        peak_queue_depth: peak.max(0) as usize,
        completed: jobs.len(),
    }
}

/// One retrieval-plane operation for the shard-lock simulation: an
/// index lookup or insert that must hold one shard's lock while served.
#[derive(Debug, Clone, Copy)]
pub struct ShardOp {
    /// Arrival instant (virtual seconds since stream epoch).
    pub arrival_secs: u64,
    /// Lock-hold / service demand (virtual seconds).
    pub service_secs: u64,
    /// Shard whose lock the operation needs.
    pub shard: usize,
}

/// Simulates `requesters` FCFS request threads driving `shards`
/// single-holder shard locks over `ops` (sorted by arrival; ties keep
/// slice order). A request occupies its requester *and* its op's shard
/// lock for the full service window — a thread blocks on the mutex it
/// needs — so with one shard every operation serializes (the old
/// single-mutex retrieval plane) and with more shards only same-shard
/// operations contend. Deterministic: the earliest-free requester takes
/// the next op in arrival order.
pub fn simulate_shard_locks(ops: &[ShardOp], requesters: usize, shards: usize) -> ExecStats {
    let shards = shards.max(1);
    let requesters = requesters.max(1);
    let mut free: BinaryHeap<Reverse<u64>> = (0..requesters).map(|_| Reverse(0u64)).collect();
    let mut shard_free = vec![0u64; shards];
    let mut waits = VirtualHistogram::new();
    let mut latencies = VirtualHistogram::new();
    let mut starts: Vec<u64> = Vec::with_capacity(ops.len());
    let mut last_finish = 0u64;
    for op in ops {
        let Reverse(free_at) = free.pop().expect("requester heap never empty");
        let lock_free = shard_free[op.shard % shards];
        let start = free_at.max(op.arrival_secs).max(lock_free);
        let finish = start + op.service_secs;
        free.push(Reverse(finish));
        shard_free[op.shard % shards] = finish;
        starts.push(start);
        waits.record(start - op.arrival_secs);
        latencies.record(finish - op.arrival_secs);
        last_finish = last_finish.max(finish);
    }
    // Peak backlog: same sweep as `simulate_pool` — starts sort before
    // arrivals at equal instants so an unqueued op never counts.
    let mut deltas: Vec<(u64, i32, i32)> = Vec::with_capacity(ops.len() * 2);
    for (op, &start) in ops.iter().zip(&starts) {
        deltas.push((op.arrival_secs, 1, 1));
        deltas.push((start, 0, -1));
    }
    deltas.sort_unstable();
    let mut depth = 0i32;
    let mut peak = 0i32;
    for (_, _, d) in deltas {
        depth += d;
        peak = peak.max(depth);
    }
    let makespan = if ops.is_empty() {
        0
    } else {
        last_finish.saturating_sub(ops[0].arrival_secs)
    };
    ExecStats {
        waits,
        latencies,
        makespan_secs: makespan,
        peak_queue_depth: peak.max(0) as usize,
        completed: ops.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_nearest_rank() {
        let mut h = VirtualHistogram::new();
        for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.50), 50);
        assert_eq!(h.percentile(0.99), 100);
        assert_eq!(h.percentile(0.0), 10);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 55.0).abs() < 1e-9);
        assert_eq!(VirtualHistogram::new().percentile(0.5), 0);
    }

    #[test]
    fn single_worker_serializes_jobs() {
        let jobs = [
            VirtualJob {
                arrival_secs: 0,
                service_secs: 100,
            },
            VirtualJob {
                arrival_secs: 10,
                service_secs: 100,
            },
            VirtualJob {
                arrival_secs: 20,
                service_secs: 100,
            },
        ];
        let stats = simulate_pool(&jobs, 1);
        assert_eq!(stats.makespan_secs, 300);
        assert_eq!(stats.waits.max(), 180);
        assert_eq!(stats.peak_queue_depth, 2);
    }

    #[test]
    fn more_workers_never_hurt_makespan_or_waits() {
        let jobs: Vec<VirtualJob> = (0..40)
            .map(|i| VirtualJob {
                arrival_secs: (i / 4) * 30,
                service_secs: 200 + (i % 7) * 40,
            })
            .collect();
        let mut prev_makespan = u64::MAX;
        let mut prev_wait = u64::MAX;
        for w in 1..=8 {
            let stats = simulate_pool(&jobs, w);
            assert!(stats.makespan_secs <= prev_makespan, "workers {w}");
            assert!(stats.waits.percentile(0.99) <= prev_wait, "workers {w}");
            prev_makespan = stats.makespan_secs;
            prev_wait = stats.waits.percentile(0.99);
        }
        let saturated = simulate_pool(&jobs, 4);
        let serial = simulate_pool(&jobs, 1);
        assert!(saturated.throughput_per_hour() > serial.throughput_per_hour());
    }

    #[test]
    fn empty_job_list_is_well_defined() {
        let stats = simulate_pool(&[], 4);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.makespan_secs, 0);
        assert_eq!(stats.throughput_per_hour(), 0.0);
        let shard_stats = simulate_shard_locks(&[], 4, 4);
        assert_eq!(shard_stats.completed, 0);
        assert_eq!(shard_stats.throughput_per_hour(), 0.0);
    }

    #[test]
    fn one_shard_serializes_like_a_single_lock() {
        // Plenty of requesters, one lock: everything serializes.
        let ops: Vec<ShardOp> = (0..10)
            .map(|i| ShardOp {
                arrival_secs: 0,
                service_secs: 10,
                shard: i % 4,
            })
            .collect();
        let single = simulate_shard_locks(&ops, 8, 1);
        assert_eq!(single.makespan_secs, 100, "one lock ⇒ sequential");
        // Four shards, round-robin ops: perfect 4-way split.
        let quad = simulate_shard_locks(&ops, 8, 4);
        assert_eq!(quad.makespan_secs, 30, "ceil(10/4) ops per shard × 10s");
        assert!(quad.throughput_per_hour() > single.throughput_per_hour());
    }

    #[test]
    fn more_shards_never_hurt_lock_throughput() {
        let ops: Vec<ShardOp> = (0..60)
            .map(|i| ShardOp {
                arrival_secs: (i / 6) * 5,
                service_secs: 8 + (i % 5) * 3,
                shard: ((i * 7 + 3) % 8) as usize,
            })
            .collect();
        let mut prev_makespan = u64::MAX;
        for shards in [1usize, 2, 4, 8] {
            let stats = simulate_shard_locks(&ops, 12, shards);
            assert_eq!(stats.completed, ops.len());
            assert!(
                stats.makespan_secs <= prev_makespan,
                "{shards} shards regressed the makespan"
            );
            prev_makespan = stats.makespan_secs;
        }
        // Shard indices outside the shard count wrap instead of panicking.
        let wrapped = simulate_shard_locks(&ops, 12, 3);
        assert_eq!(wrapped.completed, ops.len());
    }
}
