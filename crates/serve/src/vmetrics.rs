//! Virtual-time performance metrics.
//!
//! The engine measures itself on the *virtual* clock of the alert stream,
//! not the host's wall clock: stage costs come from the ex-ante service
//! model and queueing comes from a deterministic discrete-event
//! simulation. That keeps every number reproducible (and meaningful on a
//! single-core CI box, where wall-clock thread scaling is impossible to
//! observe).

use crate::metrics::MetricsRegistry;
use serde_json::{json, Value};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Schema version of the engine's JSON report ([`ServeOutcome::report`]).
///
/// The report predates the structured [`crate::metrics`] exporter and
/// keeps evolving with the engine; this explicit version lets the two
/// formats drift independently without silently breaking consumers.
/// History: 1 = implicit pre-PR-9 shape; 2 = adds `schema_version`,
/// `clock`, and the real-mode `wall` section.
///
/// [`ServeOutcome::report`]: crate::engine::ServeOutcome::report
pub const REPORT_SCHEMA_VERSION: u32 = 2;

/// Robustness counters for one engine run.
///
/// Workers are real OS threads, so these are atomics bumped as the
/// supervision machinery acts: injected faults, panics caught and
/// workers respawned, events re-dispatched or quarantined, and poisoned
/// locks recovered instead of aborted. The *counts* are deterministic
/// for a fixed fault plan (decisions depend only on `(seq, attempt)`),
/// even though the thread that bumps each counter is not.
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Worker panics caught by the supervisor (injected or organic).
    pub worker_panics: AtomicU64,
    /// Worker incarnations respawned after a caught panic.
    pub worker_respawns: AtomicU64,
    /// Attempts abandoned past their virtual stage deadline.
    pub injected_stalls: AtomicU64,
    /// Attempts failed by an injected transient stage error.
    pub injected_errors: AtomicU64,
    /// Events put back on the retry queue after a lost attempt.
    pub redispatches: AtomicU64,
    /// Events quarantined as poison pills (dead-letter records).
    pub quarantined: AtomicU64,
    /// Events whose collection stage failed (degraded `Failed` outcome).
    pub collection_failures: AtomicU64,
    /// Poisoned locks recovered via `PoisonError::into_inner` instead of
    /// aborting the engine.
    pub poison_recoveries: AtomicU64,
    /// Dispatch-channel sends that found every worker gone; the
    /// dispatcher stops feeding instead of panicking.
    pub dispatch_failures: AtomicU64,
    /// Durable-sink write/fsync failures absorbed by detaching the sink
    /// (the in-memory journal stays consistent).
    pub sink_failures: AtomicU64,
    /// Events fast-failed by an open per-tenant circuit breaker instead
    /// of being dispatched into a known-faulting pipeline.
    pub breaker_fast_fails: AtomicU64,
    /// Durable-sink fsync attempts that returned an error (each is
    /// retried once before the sink degrades).
    pub fsync_failures: AtomicU64,
    /// Transient sink write/fsync/rewrite errors retried in place.
    pub sink_retries: AtomicU64,
    /// Sink operations refused with `ENOSPC` (answered by
    /// checkpoint-fold-and-retry, then durability pause).
    pub enospc_events: AtomicU64,
    /// Spans in which the journal ran with durability paused — sink
    /// attached but appends withheld until a fold freed space.
    pub durability_paused_spans: AtomicU64,
    /// Corrupt WAL records quarantined as dead letters at recovery
    /// (CRC mismatch or unparseable frame, resynced past, never fatal).
    pub wal_quarantined: AtomicU64,
    /// Valid-but-unreachable WAL records dropped at recovery because a
    /// quarantined record broke their tenant's commit chain.
    pub wal_dropped: AtomicU64,
}

impl FaultCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        FaultCounters::default()
    }

    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read helper.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// JSON summary for the engine report.
    pub fn to_json(&self) -> Value {
        json!({
            "worker_panics": Self::get(&self.worker_panics),
            "worker_respawns": Self::get(&self.worker_respawns),
            "injected_stalls": Self::get(&self.injected_stalls),
            "injected_errors": Self::get(&self.injected_errors),
            "redispatches": Self::get(&self.redispatches),
            "quarantined": Self::get(&self.quarantined),
            "collection_failures": Self::get(&self.collection_failures),
            "poison_recoveries": Self::get(&self.poison_recoveries),
            "dispatch_failures": Self::get(&self.dispatch_failures),
            "sink_failures": Self::get(&self.sink_failures),
            "breaker_fast_fails": Self::get(&self.breaker_fast_fails),
            "fsync_failures": Self::get(&self.fsync_failures),
            "sink_retries": Self::get(&self.sink_retries),
            "enospc_events": Self::get(&self.enospc_events),
            "durability_paused_spans": Self::get(&self.durability_paused_spans),
            "wal_quarantined": Self::get(&self.wal_quarantined),
            "wal_dropped": Self::get(&self.wal_dropped),
        })
    }

    /// Every counter as a `(kind, value)` row, in report order.
    pub fn rows(&self) -> [(&'static str, u64); 17] {
        [
            ("worker_panics", Self::get(&self.worker_panics)),
            ("worker_respawns", Self::get(&self.worker_respawns)),
            ("injected_stalls", Self::get(&self.injected_stalls)),
            ("injected_errors", Self::get(&self.injected_errors)),
            ("redispatches", Self::get(&self.redispatches)),
            ("quarantined", Self::get(&self.quarantined)),
            ("collection_failures", Self::get(&self.collection_failures)),
            ("poison_recoveries", Self::get(&self.poison_recoveries)),
            ("dispatch_failures", Self::get(&self.dispatch_failures)),
            ("sink_failures", Self::get(&self.sink_failures)),
            ("breaker_fast_fails", Self::get(&self.breaker_fast_fails)),
            ("fsync_failures", Self::get(&self.fsync_failures)),
            ("sink_retries", Self::get(&self.sink_retries)),
            ("enospc_events", Self::get(&self.enospc_events)),
            (
                "durability_paused_spans",
                Self::get(&self.durability_paused_spans),
            ),
            ("wal_quarantined", Self::get(&self.wal_quarantined)),
            ("wal_dropped", Self::get(&self.wal_dropped)),
        ]
    }

    /// Bridges these ad-hoc counters into the structured metrics
    /// registry as `rca_faults_total{tenant, kind}` — the absorption
    /// seam between the legacy report and the Prometheus/JSON exporters.
    /// Zero-valued counters are skipped (idiomatic for counters: absent
    /// means zero).
    pub fn export_to(&self, registry: &MetricsRegistry, tenant: &str) {
        registry.describe("rca_faults_total", "Fault-plane counters by kind.");
        for (kind, value) in self.rows() {
            if value > 0 {
                registry.inc_counter_by(
                    "rca_faults_total",
                    &[("tenant", tenant), ("kind", kind)],
                    value,
                );
            }
        }
    }
}

/// JSON summary of a retrieval candidate-structure footprint
/// ([`rcacopilot_core::IndexStats`]), for the engine report and the
/// bench JSON: footprint regressions (graph edges, resident bytes) show
/// up in tracked artifacts instead of only in allocator noise.
pub fn index_stats_json(stats: &rcacopilot_core::IndexStats) -> Value {
    json!({
        "vectors": stats.vectors,
        "dim": stats.dim,
        "cells": stats.cells,
        "layers": stats.layers,
        "edges": stats.edges,
        "bytes": stats.bytes,
    })
}

/// A histogram of virtual durations in seconds.
#[derive(Debug, Clone, Default)]
pub struct VirtualHistogram {
    samples: Vec<u64>,
}

impl VirtualHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        VirtualHistogram::default()
    }

    /// Records one duration sample (virtual seconds).
    pub fn record(&mut self, secs: u64) {
        self.samples.push(secs);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// The raw samples, in record order — for re-binning into the
    /// fixed-bucket registry histograms.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Nearest-rank percentile (`q` in `0.0..=1.0`); 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank =
            ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Largest sample; 0 when empty.
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// JSON summary: count, mean, p50, p99, max.
    pub fn to_json(&self) -> Value {
        json!({
            "count": self.len(),
            "mean_secs": self.mean(),
            "p50_secs": self.percentile(0.50),
            "p99_secs": self.percentile(0.99),
            "max_secs": self.max(),
        })
    }
}

/// One job for the execution simulation: arrival instant and service
/// demand, both in virtual seconds.
#[derive(Debug, Clone, Copy)]
pub struct VirtualJob {
    /// Arrival instant (virtual seconds since stream epoch).
    pub arrival_secs: u64,
    /// Service demand (virtual seconds).
    pub service_secs: u64,
}

/// Result of simulating the worker pool over the admitted jobs.
#[derive(Debug, Clone)]
pub struct ExecStats {
    /// Queue-wait per job (start − arrival).
    pub waits: VirtualHistogram,
    /// Sojourn time per job (finish − arrival).
    pub latencies: VirtualHistogram,
    /// Virtual makespan: last finish − first arrival (0 when no jobs).
    pub makespan_secs: u64,
    /// Peak number of jobs that had arrived but not yet started.
    pub peak_queue_depth: usize,
    /// Number of jobs simulated.
    pub completed: usize,
}

impl ExecStats {
    /// Completed jobs per virtual hour; 0.0 for an empty or zero-length run.
    pub fn throughput_per_hour(&self) -> f64 {
        if self.makespan_secs == 0 {
            return 0.0;
        }
        self.completed as f64 * 3_600.0 / self.makespan_secs as f64
    }

    /// JSON summary of the run.
    pub fn to_json(&self) -> Value {
        json!({
            "completed": self.completed,
            "makespan_secs": self.makespan_secs,
            "throughput_per_hour": self.throughput_per_hour(),
            "peak_queue_depth": self.peak_queue_depth,
            "wait": self.waits.to_json(),
            "latency": self.latencies.to_json(),
        })
    }
}

/// Simulates `workers` FCFS servers over `jobs` (must be sorted by
/// arrival; ties keep slice order). Deterministic: the free server with
/// the earliest availability takes the next job in arrival order.
pub fn simulate_pool(jobs: &[VirtualJob], workers: usize) -> ExecStats {
    let workers = workers.max(1);
    let mut free: BinaryHeap<Reverse<u64>> = (0..workers).map(|_| Reverse(0u64)).collect();
    let mut waits = VirtualHistogram::new();
    let mut latencies = VirtualHistogram::new();
    let mut starts: Vec<u64> = Vec::with_capacity(jobs.len());
    let mut last_finish = 0u64;
    for job in jobs {
        let Reverse(free_at) = free.pop().expect("worker heap never empty");
        let start = free_at.max(job.arrival_secs);
        let finish = start + job.service_secs;
        free.push(Reverse(finish));
        starts.push(start);
        waits.record(start - job.arrival_secs);
        latencies.record(finish - job.arrival_secs);
        last_finish = last_finish.max(finish);
    }
    // Peak backlog: sweep +1 at each arrival, −1 at each start. Starts
    // are processed before arrivals at equal instants so a job that
    // starts the moment it arrives never counts as queued.
    let mut deltas: Vec<(u64, i32, i32)> = Vec::with_capacity(jobs.len() * 2);
    for (job, &start) in jobs.iter().zip(&starts) {
        deltas.push((job.arrival_secs, 1, 1));
        deltas.push((start, 0, -1));
    }
    deltas.sort_unstable();
    let mut depth = 0i32;
    let mut peak = 0i32;
    for (_, _, d) in deltas {
        depth += d;
        peak = peak.max(depth);
    }
    let makespan = if jobs.is_empty() {
        0
    } else {
        last_finish.saturating_sub(jobs[0].arrival_secs)
    };
    ExecStats {
        waits,
        latencies,
        makespan_secs: makespan,
        peak_queue_depth: peak.max(0) as usize,
        completed: jobs.len(),
    }
}

/// One job for the deficit-round-robin pool simulation: a tenant-tagged
/// admitted event with its virtual arrival and service demand.
#[derive(Debug, Clone, Copy)]
pub struct DrrJob {
    /// Index of the owning tenant in the `weights`/`caps` slices passed
    /// to [`simulate_drr`].
    pub tenant_slot: usize,
    /// Arrival instant (virtual seconds since stream epoch).
    pub arrival_secs: u64,
    /// Service demand (virtual seconds).
    pub service_secs: u64,
}

/// Result of the deficit-round-robin pool simulation: the merged view
/// plus one [`ExecStats`] per tenant slot.
#[derive(Debug, Clone)]
pub struct DrrStats {
    /// All jobs together, as one pool.
    pub merged: ExecStats,
    /// Per-tenant-slot stats (aligned with the `weights` slice).
    pub per_tenant: Vec<ExecStats>,
}

/// Builds [`ExecStats`] from `(arrival, start, finish)` triples in
/// dispatch order.
fn stats_from_schedule(schedule: &[(u64, u64, u64)]) -> ExecStats {
    let mut waits = VirtualHistogram::new();
    let mut latencies = VirtualHistogram::new();
    let mut last_finish = 0u64;
    let mut first_arrival = u64::MAX;
    let mut deltas: Vec<(u64, i32, i32)> = Vec::with_capacity(schedule.len() * 2);
    for &(arrival, start, finish) in schedule {
        waits.record(start - arrival);
        latencies.record(finish - arrival);
        last_finish = last_finish.max(finish);
        first_arrival = first_arrival.min(arrival);
        deltas.push((arrival, 1, 1));
        deltas.push((start, 0, -1));
    }
    deltas.sort_unstable();
    let mut depth = 0i32;
    let mut peak = 0i32;
    for (_, _, d) in deltas {
        depth += d;
        peak = peak.max(depth);
    }
    let makespan = if schedule.is_empty() {
        0
    } else {
        last_finish.saturating_sub(first_arrival)
    };
    ExecStats {
        waits,
        latencies,
        makespan_secs: makespan,
        peak_queue_depth: peak.max(0) as usize,
        completed: schedule.len(),
    }
}

/// Simulates `workers` FCFS servers shared by multiple tenants under
/// **deficit round robin**: the scheduler cycles over tenant queues; each
/// visit to a tenant with waiting, cap-free work credits its deficit
/// counter with `quantum_secs × weight`, and the tenant dispatches queued
/// jobs (FIFO) while its deficit covers their service demand. A tenant
/// whose arrival queue drains loses its residual deficit (the classic
/// DRR reset, so idle tenants cannot hoard credit), while a tenant
/// blocked only by its in-flight bulkhead cap (`caps[slot]`) keeps its
/// balance. Weighted fairness follows: over any backlogged interval,
/// tenant service rates converge to `weight / Σ weights` of the pool.
///
/// `jobs` must be sorted by arrival (ties keep slice order); every
/// `tenant_slot` must index into `weights`/`caps`. Deterministic: the
/// round-robin pointer advances one tenant per credit round, and every
/// tie is broken by slice order.
pub fn simulate_drr(
    jobs: &[DrrJob],
    workers: usize,
    weights: &[u32],
    quantum_secs: u64,
    caps: &[Option<usize>],
) -> DrrStats {
    let n = weights.len();
    assert_eq!(caps.len(), n, "one cap slot per weight slot");
    assert!(
        jobs.iter().all(|j| j.tenant_slot < n),
        "job tenant_slot out of range"
    );
    let workers = workers.max(1);
    let quantum = quantum_secs.max(1);
    let mut queues: Vec<std::collections::VecDeque<usize>> =
        (0..n).map(|_| std::collections::VecDeque::new()).collect();
    for (j, job) in jobs.iter().enumerate() {
        queues[job.tenant_slot].push_back(j);
    }
    let mut deficit = vec![0u64; n];
    let mut inflight = vec![0usize; n];
    let mut schedule = vec![(0u64, 0u64, 0u64); jobs.len()];
    // Running jobs: min-heap of (finish, dispatch order) with the tenant
    // to release on completion.
    let mut running: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    let mut free_workers = workers;
    // The DRR visit pointer and whether the current visit has already
    // been credited. Both persist across clock advances: a visit
    // interrupted by worker exhaustion resumes on the same tenant, so a
    // tenant's turn is consumed by *service granted*, not by time.
    let mut rr = 0usize;
    let mut credited = false;
    let mut dispatched = 0usize;
    let mut t = jobs.first().map(|j| j.arrival_secs).unwrap_or(0);
    while dispatched < jobs.len() {
        // Dispatch everything schedulable at instant `t`.
        loop {
            let eligible =
                |slot: usize, queues: &[std::collections::VecDeque<usize>], inflight: &[usize]| {
                    queues[slot]
                        .front()
                        .is_some_and(|&j| jobs[j].arrival_secs <= t)
                        && match caps[slot] {
                            Some(cap) => inflight[slot] < cap.max(1),
                            None => true,
                        }
                };
            if free_workers == 0 || !(0..n).any(|s| eligible(s, &queues, &inflight)) {
                break;
            }
            // One visit cycle over the tenants. A full cycle without a
            // dispatch ends the inner loop; the outer loop then either
            // re-credits (some eligible head still lacks deficit) or
            // exits (nothing eligible / no worker).
            let mut scanned = 0usize;
            while scanned < n && free_workers > 0 {
                if eligible(rr, &queues, &inflight) {
                    if !credited {
                        deficit[rr] =
                            deficit[rr].saturating_add(quantum * u64::from(weights[rr].max(1)));
                        credited = true;
                    }
                    let j = *queues[rr].front().expect("eligible queue has a head");
                    if deficit[rr] >= jobs[j].service_secs {
                        queues[rr].pop_front();
                        deficit[rr] -= jobs[j].service_secs;
                        let finish = t + jobs[j].service_secs;
                        schedule[j] = (jobs[j].arrival_secs, t, finish);
                        running.push(Reverse((finish, dispatched, rr)));
                        dispatched += 1;
                        free_workers -= 1;
                        inflight[rr] += 1;
                        scanned = 0;
                        continue;
                    }
                    // Head exceeds the balance: the visit ends, the
                    // balance carries to the tenant's next turn.
                    rr = (rr + 1) % n;
                    credited = false;
                    scanned += 1;
                } else {
                    // A drained arrival queue forfeits residual credit
                    // (the classic DRR reset); a backlog blocked only by
                    // its bulkhead cap keeps its balance.
                    if queues[rr].front().is_none_or(|&j| jobs[j].arrival_secs > t) {
                        deficit[rr] = 0;
                    }
                    rr = (rr + 1) % n;
                    credited = false;
                    scanned += 1;
                }
            }
        }
        if dispatched == jobs.len() {
            break;
        }
        // Advance the clock to the next event: a completion (freeing a
        // worker and a cap slot) or the next pending arrival.
        let next_arrival = queues
            .iter()
            .filter_map(|q| q.front().map(|&j| jobs[j].arrival_secs))
            .filter(|&a| a > t)
            .min();
        let next_finish = running.peek().map(|Reverse((f, _, _))| *f);
        t = match (next_finish.filter(|&f| f > t), next_arrival) {
            (Some(f), Some(a)) => f.min(a),
            (Some(f), None) => f,
            (None, Some(a)) => a,
            (None, None) => break,
        };
        while let Some(&Reverse((finish, _, slot))) = running.peek() {
            if finish > t {
                break;
            }
            running.pop();
            free_workers += 1;
            inflight[slot] -= 1;
        }
    }
    // Per-tenant and merged stats, each in dispatch order of arrival.
    // Bucketed in one pass over the schedule: a thousand-tenant plane
    // would otherwise rescan the full job list once per tenant.
    let mut tenant_rows: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); n];
    for (j, job) in jobs.iter().enumerate() {
        tenant_rows[job.tenant_slot].push(schedule[j]);
    }
    let per_tenant = tenant_rows
        .iter()
        .map(|rows| stats_from_schedule(rows))
        .collect();
    DrrStats {
        merged: stats_from_schedule(&schedule[..]),
        per_tenant,
    }
}

/// Result of [`simulate_tenant_shards`]: the merged view of a
/// tenant-sharded run plus each shard's own [`ExecStats`].
#[derive(Debug, Clone)]
pub struct ShardScaleStats {
    /// Shard count the jobs were dealt over.
    pub shards: usize,
    /// One FCFS pool result per shard, in shard order.
    pub per_shard: Vec<ExecStats>,
    /// Virtual makespan of the whole run: the latest shard finish minus
    /// the earliest arrival overall (0 when no jobs).
    pub merged_makespan_secs: u64,
    /// Total jobs across all shards.
    pub completed: usize,
}

impl ShardScaleStats {
    /// Completed jobs per virtual hour across the merged run.
    pub fn throughput_per_hour(&self) -> f64 {
        if self.merged_makespan_secs == 0 {
            return 0.0;
        }
        self.completed as f64 * 3_600.0 / self.merged_makespan_secs as f64
    }

    /// JSON summary: merged makespan/throughput plus per-shard load.
    pub fn to_json(&self) -> Value {
        let per_shard: Vec<Value> = self
            .per_shard
            .iter()
            .map(|s| {
                json!({
                    "completed": s.completed,
                    "makespan_secs": s.makespan_secs,
                    "p99_latency_secs": s.latencies.percentile(0.99),
                })
            })
            .collect();
        json!({
            "shards": self.shards,
            "completed": self.completed,
            "merged_makespan_secs": self.merged_makespan_secs,
            "throughput_per_hour": self.throughput_per_hour(),
            "per_shard": per_shard,
        })
    }
}

/// Models the tenant-sharded runtime: tenants are dealt round-robin to
/// `shards` shard workers (`tenant_slot % shards` — exactly the
/// scheduler's assignment), and each shard is one FCFS server executing
/// its tenants' admitted events in arrival order. This is the
/// virtual-time composition the `serve_tenant_scale` bench asserts
/// monotone over shard counts: adding shards splits the heavy-tailed
/// tenant load, so the merged makespan (latest shard finish − earliest
/// arrival) cannot grow as long as no single tenant dominates the total
/// service demand.
///
/// `jobs` must be sorted by arrival (ties keep slice order), the same
/// contract as [`simulate_drr`].
pub fn simulate_tenant_shards(jobs: &[DrrJob], shards: usize) -> ShardScaleStats {
    let k = shards.max(1);
    let mut buckets: Vec<Vec<VirtualJob>> = vec![Vec::new(); k];
    let mut first_arrival = u64::MAX;
    for job in jobs {
        first_arrival = first_arrival.min(job.arrival_secs);
        buckets[job.tenant_slot % k].push(VirtualJob {
            arrival_secs: job.arrival_secs,
            service_secs: job.service_secs,
        });
    }
    let per_shard: Vec<ExecStats> = buckets.iter().map(|b| simulate_pool(b, 1)).collect();
    // A shard's last finish is its first arrival plus its makespan.
    let last_finish = buckets
        .iter()
        .zip(&per_shard)
        .filter_map(|(bucket, stats)| {
            bucket
                .first()
                .map(|job| job.arrival_secs + stats.makespan_secs)
        })
        .max();
    let merged_makespan_secs = match last_finish {
        Some(finish) => finish.saturating_sub(first_arrival),
        None => 0,
    };
    ShardScaleStats {
        shards: k,
        per_shard,
        merged_makespan_secs,
        completed: jobs.len(),
    }
}

/// One retrieval-plane operation for the shard-lock simulation: an
/// index lookup or insert that must hold one shard's lock while served.
#[derive(Debug, Clone, Copy)]
pub struct ShardOp {
    /// Arrival instant (virtual seconds since stream epoch).
    pub arrival_secs: u64,
    /// Lock-hold / service demand (virtual seconds).
    pub service_secs: u64,
    /// Shard whose lock the operation needs.
    pub shard: usize,
}

/// Simulates `requesters` FCFS request threads driving `shards`
/// single-holder shard locks over `ops` (sorted by arrival; ties keep
/// slice order). A request occupies its requester *and* its op's shard
/// lock for the full service window — a thread blocks on the mutex it
/// needs — so with one shard every operation serializes (the old
/// single-mutex retrieval plane) and with more shards only same-shard
/// operations contend. Deterministic: the earliest-free requester takes
/// the next op in arrival order.
pub fn simulate_shard_locks(ops: &[ShardOp], requesters: usize, shards: usize) -> ExecStats {
    let shards = shards.max(1);
    let requesters = requesters.max(1);
    let mut free: BinaryHeap<Reverse<u64>> = (0..requesters).map(|_| Reverse(0u64)).collect();
    let mut shard_free = vec![0u64; shards];
    let mut waits = VirtualHistogram::new();
    let mut latencies = VirtualHistogram::new();
    let mut starts: Vec<u64> = Vec::with_capacity(ops.len());
    let mut last_finish = 0u64;
    for op in ops {
        let Reverse(free_at) = free.pop().expect("requester heap never empty");
        let lock_free = shard_free[op.shard % shards];
        let start = free_at.max(op.arrival_secs).max(lock_free);
        let finish = start + op.service_secs;
        free.push(Reverse(finish));
        shard_free[op.shard % shards] = finish;
        starts.push(start);
        waits.record(start - op.arrival_secs);
        latencies.record(finish - op.arrival_secs);
        last_finish = last_finish.max(finish);
    }
    // Peak backlog: same sweep as `simulate_pool` — starts sort before
    // arrivals at equal instants so an unqueued op never counts.
    let mut deltas: Vec<(u64, i32, i32)> = Vec::with_capacity(ops.len() * 2);
    for (op, &start) in ops.iter().zip(&starts) {
        deltas.push((op.arrival_secs, 1, 1));
        deltas.push((start, 0, -1));
    }
    deltas.sort_unstable();
    let mut depth = 0i32;
    let mut peak = 0i32;
    for (_, _, d) in deltas {
        depth += d;
        peak = peak.max(depth);
    }
    let makespan = if ops.is_empty() {
        0
    } else {
        last_finish.saturating_sub(ops[0].arrival_secs)
    };
    ExecStats {
        waits,
        latencies,
        makespan_secs: makespan,
        peak_queue_depth: peak.max(0) as usize,
        completed: ops.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_nearest_rank() {
        let mut h = VirtualHistogram::new();
        for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.50), 50);
        assert_eq!(h.percentile(0.99), 100);
        assert_eq!(h.percentile(0.0), 10);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 55.0).abs() < 1e-9);
        assert_eq!(VirtualHistogram::new().percentile(0.5), 0);
    }

    #[test]
    fn single_worker_serializes_jobs() {
        let jobs = [
            VirtualJob {
                arrival_secs: 0,
                service_secs: 100,
            },
            VirtualJob {
                arrival_secs: 10,
                service_secs: 100,
            },
            VirtualJob {
                arrival_secs: 20,
                service_secs: 100,
            },
        ];
        let stats = simulate_pool(&jobs, 1);
        assert_eq!(stats.makespan_secs, 300);
        assert_eq!(stats.waits.max(), 180);
        assert_eq!(stats.peak_queue_depth, 2);
    }

    #[test]
    fn more_workers_never_hurt_makespan_or_waits() {
        let jobs: Vec<VirtualJob> = (0..40)
            .map(|i| VirtualJob {
                arrival_secs: (i / 4) * 30,
                service_secs: 200 + (i % 7) * 40,
            })
            .collect();
        let mut prev_makespan = u64::MAX;
        let mut prev_wait = u64::MAX;
        for w in 1..=8 {
            let stats = simulate_pool(&jobs, w);
            assert!(stats.makespan_secs <= prev_makespan, "workers {w}");
            assert!(stats.waits.percentile(0.99) <= prev_wait, "workers {w}");
            prev_makespan = stats.makespan_secs;
            prev_wait = stats.waits.percentile(0.99);
        }
        let saturated = simulate_pool(&jobs, 4);
        let serial = simulate_pool(&jobs, 1);
        assert!(saturated.throughput_per_hour() > serial.throughput_per_hour());
    }

    #[test]
    fn empty_job_list_is_well_defined() {
        let stats = simulate_pool(&[], 4);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.makespan_secs, 0);
        assert_eq!(stats.throughput_per_hour(), 0.0);
        let shard_stats = simulate_shard_locks(&[], 4, 4);
        assert_eq!(shard_stats.completed, 0);
        assert_eq!(shard_stats.throughput_per_hour(), 0.0);
    }

    #[test]
    fn tenant_shards_with_one_shard_match_the_single_pool() {
        let jobs: Vec<DrrJob> = (0..60)
            .map(|i| DrrJob {
                tenant_slot: i % 5,
                arrival_secs: (i as u64 / 3) * 45,
                service_secs: 100 + (i as u64 % 4) * 50,
            })
            .collect();
        let pool_jobs: Vec<VirtualJob> = jobs
            .iter()
            .map(|j| VirtualJob {
                arrival_secs: j.arrival_secs,
                service_secs: j.service_secs,
            })
            .collect();
        let one = simulate_tenant_shards(&jobs, 1);
        let pool = simulate_pool(&pool_jobs, 1);
        assert_eq!(one.merged_makespan_secs, pool.makespan_secs);
        assert_eq!(one.completed, pool.completed);
        assert_eq!(one.per_shard.len(), 1);
        let empty = simulate_tenant_shards(&[], 4);
        assert_eq!(empty.completed, 0);
        assert_eq!(empty.throughput_per_hour(), 0.0);
    }

    #[test]
    fn tenant_shards_scale_monotonically_on_a_spread_fleet() {
        // 64 tenants of comparable volume, arrivals bunched early so the
        // pool is backlogged — the regime the scale bench asserts in.
        let mut jobs: Vec<DrrJob> = Vec::new();
        for slot in 0..64usize {
            for e in 0..8u64 {
                jobs.push(DrrJob {
                    tenant_slot: slot,
                    arrival_secs: e * 20 + (slot as u64 % 7),
                    service_secs: 150 + (slot as u64 % 5) * 30,
                });
            }
        }
        jobs.sort_by_key(|j| j.arrival_secs);
        let mut last = f64::NEG_INFINITY;
        for shards in [1usize, 2, 4, 8] {
            let stats = simulate_tenant_shards(&jobs, shards);
            assert_eq!(stats.completed, jobs.len());
            assert!(
                stats.throughput_per_hour() >= last,
                "{shards} shards regressed: {} < {last}",
                stats.throughput_per_hour()
            );
            last = stats.throughput_per_hour();
        }
    }

    #[test]
    fn drr_with_one_tenant_matches_the_fcfs_pool() {
        let jobs: Vec<VirtualJob> = (0..40)
            .map(|i| VirtualJob {
                arrival_secs: (i / 4) * 30,
                service_secs: 200 + (i % 7) * 40,
            })
            .collect();
        let drr_jobs: Vec<DrrJob> = jobs
            .iter()
            .map(|j| DrrJob {
                tenant_slot: 0,
                arrival_secs: j.arrival_secs,
                service_secs: j.service_secs,
            })
            .collect();
        for workers in [1usize, 3, 8] {
            let pool = simulate_pool(&jobs, workers);
            let drr = simulate_drr(&drr_jobs, workers, &[1], 60, &[None]);
            assert_eq!(
                drr.merged.makespan_secs, pool.makespan_secs,
                "{workers} workers"
            );
            assert_eq!(
                drr.merged.latencies.percentile(0.99),
                pool.latencies.percentile(0.99)
            );
            assert_eq!(drr.merged.waits.max(), pool.waits.max());
            assert_eq!(drr.merged.completed, pool.completed);
        }
    }

    #[test]
    fn drr_weights_bias_service_three_to_one() {
        // Two saturated tenants on one worker: the 3-weight tenant gets
        // three dispatches per cycle to the 1-weight tenant's one.
        let mut jobs = Vec::new();
        for slot in [0usize, 1] {
            for _ in 0..8 {
                jobs.push(DrrJob {
                    tenant_slot: slot,
                    arrival_secs: 0,
                    service_secs: 100,
                });
            }
        }
        jobs.sort_by_key(|j| j.arrival_secs);
        let stats = simulate_drr(&jobs, 1, &[3, 1], 100, &[None, None]);
        // First cycle: three tenant-0 jobs run back-to-back, then one
        // tenant-1 job.
        assert_eq!(stats.per_tenant[0].waits.percentile(0.0), 0);
        assert_eq!(stats.per_tenant[1].waits.percentile(0.0), 300);
        assert!(
            stats.per_tenant[0].waits.mean() < stats.per_tenant[1].waits.mean(),
            "the heavier tenant must wait less"
        );
        assert_eq!(stats.merged.completed, 16);
        assert_eq!(
            stats.merged.makespan_secs, 1_600,
            "work conserving on a saturated pool"
        );
    }

    #[test]
    fn drr_in_flight_cap_serializes_a_capped_tenant() {
        let jobs: Vec<DrrJob> = (0..10)
            .map(|_| DrrJob {
                tenant_slot: 0,
                arrival_secs: 0,
                service_secs: 100,
            })
            .collect();
        let uncapped = simulate_drr(&jobs, 4, &[1], 100, &[None]);
        assert_eq!(
            uncapped.per_tenant[0].makespan_secs, 300,
            "ceil(10/4) × 100"
        );
        let capped = simulate_drr(&jobs, 4, &[1], 100, &[Some(1)]);
        assert_eq!(
            capped.per_tenant[0].makespan_secs, 1_000,
            "cap 1 serializes despite 4 workers"
        );
    }

    #[test]
    fn drr_bulkhead_shields_a_quiet_tenant_from_a_flood() {
        // Tenant 0 floods 60 jobs at t=0; tenant 1 trickles 5 spread-out
        // jobs. With the flood capped at 1 in-flight, the quiet tenant's
        // waits stay near zero on a 2-worker pool.
        let mut jobs: Vec<DrrJob> = (0..60)
            .map(|_| DrrJob {
                tenant_slot: 0,
                arrival_secs: 0,
                service_secs: 300,
            })
            .collect();
        for i in 0..5u64 {
            jobs.push(DrrJob {
                tenant_slot: 1,
                arrival_secs: i * 2_000,
                service_secs: 100,
            });
        }
        jobs.sort_by_key(|j| j.arrival_secs);
        let stats = simulate_drr(&jobs, 2, &[1, 1], 300, &[Some(1), None]);
        assert_eq!(stats.per_tenant[1].completed, 5);
        assert!(
            stats.per_tenant[1].waits.max() <= 300,
            "quiet tenant wait {} must stay within one flood job",
            stats.per_tenant[1].waits.max()
        );
        // Determinism: byte-identical JSON across runs.
        let again = simulate_drr(&jobs, 2, &[1, 1], 300, &[Some(1), None]);
        assert_eq!(
            serde_json::to_string(&stats.merged.to_json()).unwrap(),
            serde_json::to_string(&again.merged.to_json()).unwrap()
        );
        assert_eq!(stats.merged.completed, 65);
    }

    #[test]
    fn one_shard_serializes_like_a_single_lock() {
        // Plenty of requesters, one lock: everything serializes.
        let ops: Vec<ShardOp> = (0..10)
            .map(|i| ShardOp {
                arrival_secs: 0,
                service_secs: 10,
                shard: i % 4,
            })
            .collect();
        let single = simulate_shard_locks(&ops, 8, 1);
        assert_eq!(single.makespan_secs, 100, "one lock ⇒ sequential");
        // Four shards, round-robin ops: perfect 4-way split.
        let quad = simulate_shard_locks(&ops, 8, 4);
        assert_eq!(quad.makespan_secs, 30, "ceil(10/4) ops per shard × 10s");
        assert!(quad.throughput_per_hour() > single.throughput_per_hour());
    }

    #[test]
    fn more_shards_never_hurt_lock_throughput() {
        let ops: Vec<ShardOp> = (0..60)
            .map(|i| ShardOp {
                arrival_secs: (i / 6) * 5,
                service_secs: 8 + (i % 5) * 3,
                shard: ((i * 7 + 3) % 8) as usize,
            })
            .collect();
        let mut prev_makespan = u64::MAX;
        for shards in [1usize, 2, 4, 8] {
            let stats = simulate_shard_locks(&ops, 12, shards);
            assert_eq!(stats.completed, ops.len());
            assert!(
                stats.makespan_secs <= prev_makespan,
                "{shards} shards regressed the makespan"
            );
            prev_makespan = stats.makespan_secs;
        }
        // Shard indices outside the shard count wrap instead of panicking.
        let wrapped = simulate_shard_locks(&ops, 12, 3);
        assert_eq!(wrapped.completed, ops.len());
    }
}
