//! Multi-tenant bulkheads: fair-share composition of per-tenant engines.
//!
//! The paper's deployment serves 30+ OCE teams through one pipeline
//! (Table 4). This module makes tenancy a first-class robustness
//! boundary for the serving plane: each tenant gets its own stream, its
//! own fault climate, a weighted share of the pool, and hard bulkheads —
//! so one team's flapping monitor storm cannot starve, corrupt, or slow
//! another team's triage.
//!
//! **Architecture: composition, not a shared dispatcher.** A
//! [`MultiTenantEngine`] run is the sequential composition of one
//! single-tenant [`ServeEngine`] run per tenant, each built from a config
//! derived by [`MultiTenantEngine::tenant_engine_config`]:
//!
//! - admission capacity scaled to the tenant's fair share
//!   ([`AdmissionConfig::share`](crate::admission::AdmissionConfig::share),
//!   composing with `severity_admit_frac`);
//! - the memo caches namespaced to the tenant (shared physical pool,
//!   disjoint logical key spaces);
//! - WAL records, event records and index epochs tagged with the tenant,
//!   sequence numbers tenant-local;
//! - the tenant's own worker-fault plan, attempt ledger and optional
//!   circuit breaker.
//!
//! Because a solo baseline run uses the *same* derived config over the
//! *same* incident slice, every tenant's prediction log in a merged run
//! is byte-identical to its solo run **by construction** — the strongest
//! possible noisy-neighbor isolation guarantee, verified across worker
//! and shard counts by the `serve_tenants` proptest suite.
//!
//! What *is* shared — the worker pool — is modeled where the rest of the
//! crate models contention: in virtual time. [`simulate_drr`] schedules
//! every tenant's admitted work over the shared pool under deficit round
//! robin (weights = fair shares, per-tenant in-flight caps = bulkheads),
//! yielding the merged and per-tenant latency statistics a wall-clock
//! scheduler would produce, deterministically.

use crate::cost;
use crate::engine::{EngineConfig, EventOutcome, EventRecord, ServeEngine, ServeOutcome};
use crate::fault::WorkerFaultConfig;
use crate::stream::{ArrivalModel, StreamConfig};
use crate::vmetrics::{simulate_drr, DrrJob, DrrStats};
use crate::wal::{WalError, WriteAheadLog};
use rcacopilot_core::plan::PlanCaches;
use rcacopilot_core::RcaCopilot;
use rcacopilot_simcloud::{Incident, TenantStormPlan};
use rcacopilot_telemetry::ids::TenantId;
use serde_json::{json, Value};
use std::sync::Arc;

/// One tenant's serving-side contract: identity, fair-share weight,
/// stream shape, fault climate, and bulkhead cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// The tenant.
    pub tenant: TenantId,
    /// Fair-share weight (admission capacity fraction and DRR credit).
    pub weight: u32,
    /// The tenant's alert-stream configuration.
    pub stream: StreamConfig,
    /// The tenant's worker-fault climate.
    pub faults: WorkerFaultConfig,
    /// In-flight bulkhead cap in the shared pool (`None` = pool-bounded).
    pub in_flight_cap: Option<usize>,
}

impl TenantSpec {
    /// Translates a workload plan from the simulation crate into the
    /// serving plane's own config types. Plans with `burst_prob == 0`
    /// map to Poisson arrivals, bursty plans to storm arrivals.
    pub fn from_plan(plan: &TenantStormPlan) -> Self {
        let arrivals = if plan.burst_prob > 0.0 {
            ArrivalModel::Bursty {
                mean_gap_secs: plan.mean_gap_secs,
                burst_prob: plan.burst_prob,
                burst_len: plan.burst_len,
                burst_gap_secs: plan.burst_gap_secs,
            }
        } else {
            ArrivalModel::Poisson {
                mean_gap_secs: plan.mean_gap_secs,
            }
        };
        TenantSpec {
            tenant: plan.tenant,
            weight: plan.weight.max(1),
            stream: StreamConfig {
                seed: plan.stream_seed,
                arrivals,
                reraise_prob: plan.reraise_prob,
            },
            faults: WorkerFaultConfig {
                seed: plan.fault_seed,
                panic_per_mille: plan.panic_per_mille,
                stall_per_mille: plan.stall_per_mille,
                error_per_mille: plan.error_per_mille,
            },
            in_flight_cap: plan.in_flight_cap,
        }
    }
}

/// Configuration of the multi-tenant composition.
#[derive(Debug, Clone)]
pub struct MultiTenantConfig {
    /// Template for every tenant's engine. `tenant`, `admission`,
    /// `faults` and `caches` are overridden per tenant by
    /// [`MultiTenantEngine::tenant_engine_config`]; everything else
    /// (workers, shards, index mode, thresholds, breaker, …) is shared.
    pub base: EngineConfig,
    /// DRR quantum (virtual seconds of service credited per visit per
    /// unit weight) for the shared-pool schedule.
    pub quantum_secs: u64,
}

impl Default for MultiTenantConfig {
    fn default() -> Self {
        MultiTenantConfig {
            base: EngineConfig::default(),
            quantum_secs: 60,
        }
    }
}

/// One tenant's slice of a multi-tenant run.
#[derive(Debug, Clone)]
pub struct TenantRun {
    /// The tenant.
    pub tenant: TenantId,
    /// Its fair-share weight.
    pub weight: u32,
    /// The tenant's full engine outcome — records, log, report. The
    /// `log` is byte-identical to a solo run of the same tenant over the
    /// same incident slice.
    pub outcome: ServeOutcome,
}

/// Result of a multi-tenant run.
#[derive(Debug, Clone)]
pub struct MultiTenantOutcome {
    /// Per-tenant runs, in spec order.
    pub tenants: Vec<TenantRun>,
    /// The merged prediction log: every tenant's records interleaved by
    /// `(arrival, tenant, seq)` — the canonical deterministic transcript
    /// of the whole plane.
    pub log: String,
    /// Shared-pool deficit-round-robin schedule statistics: the merged
    /// pool view plus per-tenant latency/wait stats under fair-share
    /// scheduling with bulkhead caps.
    pub drr: DrrStats,
    /// JSON report: per-tenant admission/fault summaries plus the DRR
    /// pool statistics.
    pub report: Value,
}

/// The multi-tenant serving plane: a trained pipeline fanned out into
/// one bulkheaded [`ServeEngine`] per tenant.
#[derive(Debug)]
pub struct MultiTenantEngine {
    copilot: RcaCopilot,
    config: MultiTenantConfig,
    specs: Vec<TenantSpec>,
}

impl MultiTenantEngine {
    /// Builds the plane from per-tenant specs. Panics on an empty spec
    /// list or duplicate tenant ids.
    pub fn new(copilot: RcaCopilot, config: MultiTenantConfig, specs: Vec<TenantSpec>) -> Self {
        assert!(!specs.is_empty(), "need at least one tenant spec");
        for (i, a) in specs.iter().enumerate() {
            assert!(
                specs[..i].iter().all(|b| b.tenant != a.tenant),
                "duplicate tenant id {:?}",
                a.tenant
            );
        }
        MultiTenantEngine {
            copilot,
            config,
            specs,
        }
    }

    /// Builds the plane from simulation-side workload plans.
    pub fn from_plans(
        copilot: RcaCopilot,
        config: MultiTenantConfig,
        plans: &[TenantStormPlan],
    ) -> Self {
        MultiTenantEngine::new(
            copilot,
            config,
            plans.iter().map(TenantSpec::from_plan).collect(),
        )
    }

    /// The tenant specs, in run order.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs
    }

    /// Sum of all tenant weights.
    pub fn total_weight(&self) -> u32 {
        self.specs.iter().map(|s| s.weight).sum()
    }

    /// Derives one tenant's engine config from the base template: the
    /// single source of truth shared by the merged run and any solo
    /// baseline, which is what makes per-tenant logs byte-identical
    /// between the two. `caches` is the shared physical memo pool
    /// (`None` for an isolated solo run — namespacing makes the results
    /// identical either way).
    ///
    /// The struct-update tail also inherits the base's
    /// [`EngineConfig::clock`] and [`EngineConfig::metrics`]: every
    /// tenant runs under the same clock mode, and a shared
    /// [`crate::metrics::MetricsRegistry`] `Arc` distinguishes tenants
    /// purely by the `tenant` label on each series.
    pub fn tenant_engine_config(
        base: &EngineConfig,
        spec: &TenantSpec,
        total_weight: u32,
        caches: Option<Arc<PlanCaches>>,
    ) -> EngineConfig {
        EngineConfig {
            tenant: spec.tenant,
            admission: base.admission.share(spec.weight, total_weight),
            faults: spec.faults,
            caches,
            ..base.clone()
        }
    }

    /// Runs every tenant over its incident slice (aligned with
    /// [`MultiTenantEngine::specs`]) and composes the merged transcript
    /// and the shared-pool DRR statistics.
    pub fn run(&self, parts: &[Vec<Incident>]) -> MultiTenantOutcome {
        assert_eq!(
            parts.len(),
            self.specs.len(),
            "one incident slice per tenant spec"
        );
        let outcomes = self
            .run_tenants(parts, None)
            .expect("no WAL, no WAL errors");
        self.compose(outcomes, parts, None)
    }

    /// Like [`MultiTenantEngine::run`], but journaling through `wal`:
    /// the journal is split into per-tenant streams, each tenant resumes
    /// from (and appends to) its own stream, and the per-tenant journals
    /// are merged back — interleaved by virtual anchor time — and
    /// adopted into `wal` (keeping its durable sink, if any). A torn
    /// tail in one tenant's stream therefore rolls back only that
    /// tenant's watermark.
    ///
    /// # Errors
    ///
    /// Returns the [`WalError`] if the journal is corrupt or any
    /// tenant's commit prefix has a gap.
    pub fn run_with_wal(
        &self,
        parts: &[Vec<Incident>],
        wal: &mut WriteAheadLog,
    ) -> Result<MultiTenantOutcome, WalError> {
        assert_eq!(
            parts.len(),
            self.specs.len(),
            "one incident slice per tenant spec"
        );
        let outcomes = self.run_tenants(parts, Some(wal))?;
        Ok(self.compose(outcomes, parts, Some(wal)))
    }

    /// The sequential per-tenant composition. With a WAL, splits it into
    /// per-tenant journals first and merges/adopts afterwards.
    fn run_tenants(
        &self,
        parts: &[Vec<Incident>],
        wal: Option<&mut WriteAheadLog>,
    ) -> Result<Vec<ServeOutcome>, WalError> {
        let total = self.total_weight();
        let shared = Arc::new(PlanCaches::new(self.config.base.shards.max(1)));
        let mut tenant_wals = match &wal {
            Some(w) => w.split_tenants()?,
            None => Default::default(),
        };
        let mut outcomes = Vec::with_capacity(self.specs.len());
        for (spec, part) in self.specs.iter().zip(parts) {
            let cfg = MultiTenantEngine::tenant_engine_config(
                &self.config.base,
                spec,
                total,
                Some(shared.clone()),
            );
            let engine = ServeEngine::new(self.copilot.clone(), cfg);
            let outcome = if wal.is_some() {
                let twal = tenant_wals.entry(spec.tenant).or_default();
                engine.run_with_wal(part, &spec.stream, twal)?
            } else {
                engine.run(part, &spec.stream)
            };
            outcomes.push(outcome);
        }
        if let Some(w) = wal {
            let merged = WriteAheadLog::merge_tenants(&tenant_wals)?;
            w.adopt(merged);
        }
        Ok(outcomes)
    }

    /// Merges per-tenant outcomes into the plane-wide transcript, DRR
    /// schedule and report. `wal` is the adopted parent journal, whose
    /// durability state (sink health, quarantine, `ENOSPC` pauses) is
    /// surfaced plane-wide in the report.
    fn compose(
        &self,
        outcomes: Vec<ServeOutcome>,
        parts: &[Vec<Incident>],
        wal: Option<&WriteAheadLog>,
    ) -> MultiTenantOutcome {
        // Merged transcript: interleave every tenant's records by
        // (arrival, tenant, tenant-local seq). Arrival ties across
        // tenants are broken by tenant id — a total, run-independent
        // order.
        let mut merged: Vec<&EventRecord> = outcomes.iter().flat_map(|o| &o.records).collect();
        merged.sort_by_key(|r| (r.at, r.tenant.0, r.seq));
        let mut log = String::new();
        for r in &merged {
            log.push_str(&r.log_line());
            log.push('\n');
        }
        // Shared-pool DRR schedule over every executed event. Costs are
        // re-derived from the shared ex-ante model, so the schedule is
        // as deterministic as the logs. Shed and breaker-fast-failed
        // events never reach the pool.
        let weights: Vec<u32> = self.specs.iter().map(|s| s.weight).collect();
        let caps: Vec<Option<usize>> = self.specs.iter().map(|s| s.in_flight_cap).collect();
        let mut jobs: Vec<(u64, usize, u64)> = Vec::new();
        for (slot, outcome) in outcomes.iter().enumerate() {
            for r in &outcome.records {
                let alert = &parts[slot][r.incident_idx].alert;
                let c = cost::estimate(alert, self.config.base.cost_seed);
                let service = match &r.outcome {
                    EventOutcome::Shed { .. } => continue,
                    EventOutcome::Predicted { degraded, .. } => {
                        if *degraded {
                            c.degraded_total()
                        } else {
                            c.total()
                        }
                    }
                    EventOutcome::Failed { reason } => {
                        if reason.contains("circuit open") {
                            // Fast-failed: never dispatched, no pool work.
                            continue;
                        }
                        c.total()
                    }
                };
                jobs.push((r.at.as_secs(), slot, service));
            }
        }
        jobs.sort_unstable();
        let jobs: Vec<DrrJob> = jobs
            .into_iter()
            .map(|(arrival_secs, tenant_slot, service_secs)| DrrJob {
                tenant_slot,
                arrival_secs,
                service_secs,
            })
            .collect();
        let drr = simulate_drr(
            &jobs,
            self.config.base.workers.max(1),
            &weights,
            self.config.quantum_secs,
            &caps,
        );
        let tenant_reports: Vec<Value> = self
            .specs
            .iter()
            .zip(&outcomes)
            .zip(&drr.per_tenant)
            .map(|((spec, o), exec)| {
                let count = |pred: &dyn Fn(&EventOutcome) -> bool| {
                    o.records.iter().filter(|r| pred(&r.outcome)).count()
                };
                json!({
                    "tenant": spec.tenant.0,
                    "weight": spec.weight,
                    "in_flight_cap": spec.in_flight_cap,
                    "events": o.records.len(),
                    "predicted": count(&|oc| matches!(oc, EventOutcome::Predicted { .. })),
                    "degraded": count(&|oc| {
                        matches!(oc, EventOutcome::Predicted { degraded: true, .. })
                    }),
                    "shed": count(&|oc| matches!(oc, EventOutcome::Shed { .. })),
                    "failed": count(&|oc| matches!(oc, EventOutcome::Failed { .. })),
                    "pool": exec.to_json(),
                })
            })
            .collect();
        let report = json!({
            "tenants": Value::Seq(tenant_reports),
            "quantum_secs": self.config.quantum_secs,
            "pool": drr.merged.to_json(),
            "wal": wal.map(|w| json!({
                "durable": w.is_durable(),
                "paused": w.is_paused(),
                "quarantined": w.quarantined().len(),
                "dropped_records": w.dropped_records(),
                "sink_failures": w.sink_failures(),
                "fsync_failures": w.fsync_failures(),
                "enospc_events": w.enospc_events(),
                "durability_paused_spans": w.durability_paused_spans(),
            })),
        });
        let tenants = self
            .specs
            .iter()
            .zip(outcomes)
            .map(|(spec, outcome)| TenantRun {
                tenant: spec.tenant,
                weight: spec.weight,
                outcome,
            })
            .collect();
        MultiTenantOutcome {
            tenants,
            log,
            drr,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use rcacopilot_core::eval::PreparedDataset;
    use rcacopilot_core::pipeline::RcaCopilotConfig;
    use rcacopilot_core::ContextSpec;
    use rcacopilot_embed::{FastTextConfig, FeatureExtractor};
    use rcacopilot_simcloud::noise::NoiseProfile;
    use rcacopilot_simcloud::{generate_dataset, partition_tenants, CampaignConfig, Topology};

    fn trained_copilot() -> (RcaCopilot, Vec<Incident>) {
        let dataset = generate_dataset(&CampaignConfig {
            seed: 5,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile {
                routine_logs: 2,
                herring_logs: 1,
                healthy_traces: 1,
                unrelated_failure: false,
                bystander_anomalies: 1,
            },
        });
        let split = dataset.split(7, 0.6);
        let prepared = PreparedDataset::prepare(&dataset, &split);
        let copilot = RcaCopilot::train(
            &prepared.train_examples(&ContextSpec::default()),
            RcaCopilotConfig {
                embedding: FastTextConfig {
                    dim: 24,
                    epochs: 8,
                    lr: 0.4,
                    features: FeatureExtractor {
                        buckets: 1 << 12,
                        ..FeatureExtractor::default()
                    },
                    ..FastTextConfig::default()
                },
                ..RcaCopilotConfig::default()
            },
        );
        let test: Vec<Incident> = split
            .test
            .iter()
            .take(18)
            .map(|&i| dataset.incidents()[i].clone())
            .collect();
        (copilot, test)
    }

    #[test]
    fn spec_translation_maps_plans_to_serving_configs() {
        let quiet = TenantSpec::from_plan(&TenantStormPlan::quiet(TenantId(1), 10));
        assert!(matches!(
            quiet.stream.arrivals,
            ArrivalModel::Poisson {
                mean_gap_secs: 1800
            }
        ));
        assert_eq!(quiet.faults.panic_per_mille, 0);
        assert_eq!(quiet.in_flight_cap, None);
        let storm = TenantSpec::from_plan(&TenantStormPlan::flapping_storm(TenantId(2), 11));
        assert!(matches!(storm.stream.arrivals, ArrivalModel::Bursty { .. }));
        assert!(storm.faults.panic_per_mille > 0);
        assert_eq!(storm.in_flight_cap, Some(2));
        assert!(storm.stream.reraise_prob > quiet.stream.reraise_prob);
    }

    #[test]
    fn derived_config_scales_admission_and_tags_the_tenant() {
        let base = EngineConfig::default();
        let spec = TenantSpec {
            tenant: TenantId(9),
            weight: 1,
            stream: StreamConfig::replay(),
            faults: WorkerFaultConfig::disabled(),
            in_flight_cap: None,
        };
        let cfg = MultiTenantEngine::tenant_engine_config(&base, &spec, 4, None);
        assert_eq!(cfg.tenant, TenantId(9));
        assert_eq!(
            cfg.admission.capacity_secs,
            base.admission.capacity_secs / 4
        );
        assert_eq!(cfg.workers, base.workers);
        assert_eq!(cfg.shards, base.shards);
    }

    #[test]
    fn merged_run_matches_solo_baselines_and_interleaves_the_log() {
        let (copilot, incidents) = trained_copilot();
        let plans = [
            TenantStormPlan::quiet(TenantId(1), 21),
            TenantStormPlan::flapping_storm(TenantId(2), 22),
        ];
        let parts = partition_tenants(&incidents, &plans);
        let config = MultiTenantConfig {
            base: EngineConfig {
                admission: AdmissionConfig {
                    capacity_secs: 14_400,
                    ..AdmissionConfig::default()
                },
                ..EngineConfig::default()
            },
            ..MultiTenantConfig::default()
        };
        let plane = MultiTenantEngine::from_plans(copilot.clone(), config.clone(), &plans);
        let out = plane.run(&parts);

        // Per-tenant logs are byte-identical to solo runs with the same
        // derived config.
        for (i, run) in out.tenants.iter().enumerate() {
            let solo_cfg = MultiTenantEngine::tenant_engine_config(
                &config.base,
                &plane.specs()[i],
                plane.total_weight(),
                None,
            );
            let solo = ServeEngine::new(copilot.clone(), solo_cfg)
                .run(&parts[i], &plane.specs()[i].stream);
            assert_eq!(run.outcome.log, solo.log, "tenant {i} diverged from solo");
        }

        // The merged log is exactly the tenant logs re-interleaved:
        // filtering by `ten=` recovers each tenant's own log.
        for run in &out.tenants {
            let tag = format!(" ten={} ", run.tenant.0);
            let filtered: String = out
                .log
                .lines()
                .filter(|l| l.contains(&tag))
                .map(|l| format!("{l}\n"))
                .collect();
            assert_eq!(filtered, run.outcome.log);
        }
        assert_eq!(
            out.log.lines().count(),
            out.tenants
                .iter()
                .map(|t| t.outcome.records.len())
                .sum::<usize>()
        );
        // The DRR schedule covers every executed event, split per slot.
        assert_eq!(out.drr.per_tenant.len(), 2);
        assert_eq!(
            out.drr.merged.completed,
            out.drr
                .per_tenant
                .iter()
                .map(|e| e.completed)
                .sum::<usize>()
        );
    }

    #[test]
    fn wal_round_trip_recovers_each_tenant_independently() {
        let (copilot, incidents) = trained_copilot();
        let plans = [
            TenantStormPlan::quiet(TenantId(1), 31),
            TenantStormPlan::quiet(TenantId(2), 32),
        ];
        let parts = partition_tenants(&incidents, &plans);
        let config = MultiTenantConfig {
            base: EngineConfig {
                admission: AdmissionConfig::unbounded(),
                ..EngineConfig::default()
            },
            ..MultiTenantConfig::default()
        };
        let plane = MultiTenantEngine::from_plans(copilot, config, &plans);
        let mut wal = WriteAheadLog::new();
        let out = plane.run_with_wal(&parts, &mut wal).expect("clean journal");
        let recovered = wal.recover_tenants().expect("gapless per tenant");
        for run in &out.tenants {
            assert_eq!(
                recovered[&run.tenant].committed(),
                run.outcome.records.len(),
                "tenant journal must hold the full record prefix"
            );
        }
        // Resuming from the adopted journal replays to the same logs
        // without re-executing (all commits already journaled).
        let out2 = plane
            .run_with_wal(&parts, &mut wal.clone())
            .expect("clean journal");
        assert_eq!(out2.log, out.log);
    }
}
