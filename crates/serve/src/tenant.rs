//! Multi-tenant bulkheads: fair-share composition of per-tenant engines.
//!
//! The paper's deployment serves 30+ OCE teams through one pipeline
//! (Table 4). This module makes tenancy a first-class robustness
//! boundary for the serving plane: each tenant gets its own stream, its
//! own fault climate, a weighted share of the pool, and hard bulkheads —
//! so one team's flapping monitor storm cannot starve, corrupt, or slow
//! another team's triage.
//!
//! **Architecture: composition, not a shared dispatcher.** A
//! [`MultiTenantEngine`] run composes one single-tenant [`ServeEngine`]
//! run per tenant, each built from a config derived by
//! [`MultiTenantEngine::tenant_engine_config`]:
//!
//! - admission capacity scaled to the tenant's fair share
//!   ([`AdmissionConfig::share`](crate::admission::AdmissionConfig::share),
//!   composing with `severity_admit_frac`);
//! - the memo caches namespaced to the tenant (shared physical pool,
//!   disjoint logical key spaces);
//! - WAL records, event records and index epochs tagged with the tenant,
//!   sequence numbers tenant-local;
//! - the tenant's own worker-fault plan, attempt ledger and optional
//!   circuit breaker.
//!
//! Because a solo baseline run uses the *same* derived config over the
//! *same* incident slice, every tenant's prediction log in a merged run
//! is byte-identical to its solo run **by construction** — the strongest
//! possible noisy-neighbor isolation guarantee, verified across worker,
//! shard-count and scheduler geometries by the `serve_tenants` proptest
//! suite.
//!
//! **The tenant-sharded scheduler.** Tenant runs are independent by the
//! isolation argument above, so the plane scales by *sharding tenants*,
//! not by sharing a dispatcher: [`MultiTenantConfig::shards`] deals the
//! tenant list round-robin (`slot % shards`) over K shard workers, each
//! a `std::thread` running its tenants in ascending slot order over the
//! shared [`PlanCaches`] pool, one shared plane-wide
//! [`VirtualClock`](crate::clock::VirtualClock) (the shard-aware
//! virtual-time merge: `advance_to` is a `fetch_max`, so the merged
//! horizon is interleaving-independent), and one shared metrics
//! registry. Per-tenant setup is O(1): the trained pipeline is an
//! [`Arc`] bump ([`ServeEngine::shared`]), the config one clone, the
//! cache namespace a key prefix, and the WAL stream a pre-split
//! in-memory journal. Outcomes, merged transcripts and adopted journals
//! are assembled in slot order after the shards join, so **every output
//! is byte-identical at any shard count** — the sharding only changes
//! which thread computes each tenant's (deterministic) run.
//!
//! What *is* shared — the worker pool — is modeled where the rest of the
//! crate models contention: in virtual time. [`simulate_drr`] schedules
//! every tenant's admitted work over the shared pool under deficit round
//! robin (weights = fair shares, per-tenant in-flight caps = bulkheads),
//! yielding the merged and per-tenant latency statistics a wall-clock
//! scheduler would produce, deterministically.

use crate::clock::{Clock, ClockConfig, VirtualClock};
use crate::cost;
use crate::engine::{EngineConfig, EventOutcome, EventRecord, ServeEngine, ServeOutcome};
use crate::fault::WorkerFaultConfig;
use crate::stream::{ArrivalModel, StreamConfig};
use crate::vmetrics::{simulate_drr, DrrJob, DrrStats};
use crate::wal::{WalError, WriteAheadLog};
use rcacopilot_core::plan::PlanCaches;
use rcacopilot_core::RcaCopilot;
use rcacopilot_simcloud::{Incident, TenantStormPlan};
use rcacopilot_telemetry::ids::TenantId;
use serde_json::{json, Value};
use std::fmt;
use std::sync::Arc;
use std::thread;

/// Typed failures of the multi-tenant plane.
#[derive(Debug)]
pub enum TenantError {
    /// The spec list was empty — a plane needs at least one tenant.
    EmptySpecs,
    /// Two specs named the same tenant.
    DuplicateTenant(TenantId),
    /// The incident slices don't align with the specs.
    PartMismatch {
        /// Number of tenant specs.
        specs: usize,
        /// Number of incident slices supplied.
        parts: usize,
    },
    /// A tenant's journal failed to recover or adopt.
    Wal(WalError),
}

impl fmt::Display for TenantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantError::EmptySpecs => write!(f, "need at least one tenant spec"),
            TenantError::DuplicateTenant(t) => write!(f, "duplicate tenant id {}", t.0),
            TenantError::PartMismatch { specs, parts } => write!(
                f,
                "one incident slice per tenant spec ({specs} specs, {parts} slices)"
            ),
            TenantError::Wal(e) => write!(f, "tenant journal error: {e}"),
        }
    }
}

impl std::error::Error for TenantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TenantError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WalError> for TenantError {
    fn from(e: WalError) -> Self {
        TenantError::Wal(e)
    }
}

/// One tenant's serving-side contract: identity, fair-share weight,
/// stream shape, fault climate, and bulkhead cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// The tenant.
    pub tenant: TenantId,
    /// Fair-share weight (admission capacity fraction and DRR credit).
    pub weight: u32,
    /// The tenant's alert-stream configuration.
    pub stream: StreamConfig,
    /// The tenant's worker-fault climate.
    pub faults: WorkerFaultConfig,
    /// In-flight bulkhead cap in the shared pool (`None` = pool-bounded).
    pub in_flight_cap: Option<usize>,
}

impl TenantSpec {
    /// Translates a workload plan from the simulation crate into the
    /// serving plane's own config types. Plans with `burst_prob == 0`
    /// map to Poisson arrivals, bursty plans to storm arrivals.
    pub fn from_plan(plan: &TenantStormPlan) -> Self {
        let arrivals = if plan.burst_prob > 0.0 {
            ArrivalModel::Bursty {
                mean_gap_secs: plan.mean_gap_secs,
                burst_prob: plan.burst_prob,
                burst_len: plan.burst_len,
                burst_gap_secs: plan.burst_gap_secs,
            }
        } else {
            ArrivalModel::Poisson {
                mean_gap_secs: plan.mean_gap_secs,
            }
        };
        TenantSpec {
            tenant: plan.tenant,
            weight: plan.weight.max(1),
            stream: StreamConfig {
                seed: plan.stream_seed,
                arrivals,
                reraise_prob: plan.reraise_prob,
            },
            faults: WorkerFaultConfig {
                seed: plan.fault_seed,
                panic_per_mille: plan.panic_per_mille,
                stall_per_mille: plan.stall_per_mille,
                error_per_mille: plan.error_per_mille,
            },
            in_flight_cap: plan.in_flight_cap,
        }
    }
}

/// Configuration of the multi-tenant composition.
#[derive(Debug, Clone)]
pub struct MultiTenantConfig {
    /// Template for every tenant's engine. `tenant`, `admission`,
    /// `faults` and `caches` are overridden per tenant by
    /// [`MultiTenantEngine::tenant_engine_config`]; everything else
    /// (workers, shards, index mode, thresholds, breaker, …) is shared.
    pub base: EngineConfig,
    /// DRR quantum (virtual seconds of service credited per visit per
    /// unit weight) for the shared-pool schedule.
    pub quantum_secs: u64,
    /// Tenant-shard workers running the per-tenant engines (1 = the
    /// sequential legacy composition, on the caller thread). Tenants
    /// deal round-robin to shards by spec slot; every output is
    /// byte-identical at any value.
    pub shards: usize,
    /// Per-tenant engine worker override (`None` = inherit
    /// `base.workers`). `Some(1)` selects the engine's inline
    /// single-threaded path — the right choice when thousands of small
    /// tenant engines run inside shard workers, where nested pools
    /// would only add thread churn. Prediction logs are worker-count
    /// independent, so this never changes a tenant's log.
    pub tenant_workers: Option<usize>,
    /// Cardinality cap installed on the metrics registry's `tenant`
    /// label before the run (0 = unlimited). The plane pre-admits its
    /// tenants in slot order, so which tenants keep dedicated series is
    /// deterministic; the rest fold into the
    /// [`OVERFLOW_LABEL_VALUE`](crate::metrics::OVERFLOW_LABEL_VALUE)
    /// series.
    pub metrics_tenant_cap: usize,
}

impl Default for MultiTenantConfig {
    fn default() -> Self {
        MultiTenantConfig {
            base: EngineConfig::default(),
            quantum_secs: 60,
            shards: 1,
            tenant_workers: None,
            metrics_tenant_cap: 0,
        }
    }
}

/// One tenant's slice of a multi-tenant run.
#[derive(Debug, Clone)]
pub struct TenantRun {
    /// The tenant.
    pub tenant: TenantId,
    /// Its fair-share weight.
    pub weight: u32,
    /// The tenant's full engine outcome — records, log, report. The
    /// `log` is byte-identical to a solo run of the same tenant over the
    /// same incident slice.
    pub outcome: ServeOutcome,
}

/// Result of a multi-tenant run.
#[derive(Debug, Clone)]
pub struct MultiTenantOutcome {
    /// Per-tenant runs, in spec order.
    pub tenants: Vec<TenantRun>,
    /// The merged prediction log: every tenant's records interleaved by
    /// `(arrival, tenant, seq)` — the canonical deterministic transcript
    /// of the whole plane.
    pub log: String,
    /// Shared-pool deficit-round-robin schedule statistics: the merged
    /// pool view plus per-tenant latency/wait stats under fair-share
    /// scheduling with bulkhead caps.
    pub drr: DrrStats,
    /// The plane-wide virtual horizon: the furthest arrival instant any
    /// tenant's dispatcher planned to, read off the shared plane clock
    /// (0 under a real clock, where the horizon is wall time).
    pub horizon_secs: u64,
    /// JSON report: per-tenant admission/fault summaries plus the DRR
    /// pool statistics and the plane/scheduler section.
    pub report: Value,
}

/// One tenant's unit of work for a shard worker: the spec, its incident
/// slice, and (when journaling) its pre-split WAL stream — everything a
/// shard needs, assembled once per tenant before the shards start.
struct TenantTask<'a> {
    slot: usize,
    spec: &'a TenantSpec,
    part: &'a [Incident],
    twal: Option<WriteAheadLog>,
}

/// The multi-tenant serving plane: a trained pipeline fanned out into
/// one bulkheaded [`ServeEngine`] per tenant, scheduled over
/// [`MultiTenantConfig::shards`] shard workers.
#[derive(Debug)]
pub struct MultiTenantEngine {
    copilot: Arc<RcaCopilot>,
    config: MultiTenantConfig,
    specs: Vec<TenantSpec>,
}

impl MultiTenantEngine {
    /// Builds the plane from per-tenant specs.
    ///
    /// # Errors
    ///
    /// [`TenantError::EmptySpecs`] on an empty spec list,
    /// [`TenantError::DuplicateTenant`] on a repeated tenant id.
    pub fn new(
        copilot: RcaCopilot,
        config: MultiTenantConfig,
        specs: Vec<TenantSpec>,
    ) -> Result<Self, TenantError> {
        MultiTenantEngine::shared(Arc::new(copilot), config, specs)
    }

    /// Like [`MultiTenantEngine::new`], over an already-shared pipeline
    /// (no model clone).
    ///
    /// # Errors
    ///
    /// Same contract as [`MultiTenantEngine::new`].
    pub fn shared(
        copilot: Arc<RcaCopilot>,
        config: MultiTenantConfig,
        specs: Vec<TenantSpec>,
    ) -> Result<Self, TenantError> {
        if specs.is_empty() {
            return Err(TenantError::EmptySpecs);
        }
        for (i, a) in specs.iter().enumerate() {
            if specs[..i].iter().any(|b| b.tenant == a.tenant) {
                return Err(TenantError::DuplicateTenant(a.tenant));
            }
        }
        Ok(MultiTenantEngine {
            copilot,
            config,
            specs,
        })
    }

    /// Builds the plane from simulation-side workload plans.
    ///
    /// # Errors
    ///
    /// Same contract as [`MultiTenantEngine::new`].
    pub fn from_plans(
        copilot: RcaCopilot,
        config: MultiTenantConfig,
        plans: &[TenantStormPlan],
    ) -> Result<Self, TenantError> {
        MultiTenantEngine::from_plans_shared(Arc::new(copilot), config, plans)
    }

    /// [`MultiTenantEngine::from_plans`] over an already-shared pipeline.
    ///
    /// # Errors
    ///
    /// Same contract as [`MultiTenantEngine::new`].
    pub fn from_plans_shared(
        copilot: Arc<RcaCopilot>,
        config: MultiTenantConfig,
        plans: &[TenantStormPlan],
    ) -> Result<Self, TenantError> {
        MultiTenantEngine::shared(
            copilot,
            config,
            plans.iter().map(TenantSpec::from_plan).collect(),
        )
    }

    /// The tenant specs, in run order.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs
    }

    /// Sum of all tenant weights.
    pub fn total_weight(&self) -> u32 {
        self.specs.iter().map(|s| s.weight).sum()
    }

    /// Derives one tenant's engine config from the base template: the
    /// single source of truth shared by the merged run and any solo
    /// baseline, which is what makes per-tenant logs byte-identical
    /// between the two. `caches` is the shared physical memo pool
    /// (`None` for an isolated solo run — namespacing makes the results
    /// identical either way).
    ///
    /// The struct-update tail also inherits the base's
    /// [`EngineConfig::clock`] and [`EngineConfig::metrics`]: every
    /// tenant runs under the same clock mode, and a shared
    /// [`crate::metrics::MetricsRegistry`] `Arc` distinguishes tenants
    /// purely by the `tenant` label on each series.
    pub fn tenant_engine_config(
        base: &EngineConfig,
        spec: &TenantSpec,
        total_weight: u32,
        caches: Option<Arc<PlanCaches>>,
    ) -> EngineConfig {
        EngineConfig {
            tenant: spec.tenant,
            admission: base.admission.share(spec.weight, total_weight),
            faults: spec.faults,
            caches,
            ..base.clone()
        }
    }

    /// Runs every tenant over its incident slice (aligned with
    /// [`MultiTenantEngine::specs`]) and composes the merged transcript
    /// and the shared-pool DRR statistics.
    ///
    /// # Errors
    ///
    /// [`TenantError::PartMismatch`] when the slices don't align with
    /// the specs.
    pub fn run(&self, parts: &[Vec<Incident>]) -> Result<MultiTenantOutcome, TenantError> {
        self.check_parts(parts)?;
        let (outcomes, horizon_secs) = self.run_tenants(parts, None)?;
        Ok(self.compose(outcomes, parts, None, horizon_secs))
    }

    /// Like [`MultiTenantEngine::run`], but journaling through `wal`:
    /// the journal is split into per-tenant streams, each tenant resumes
    /// from (and appends to) its own stream, and the per-tenant journals
    /// are merged back — interleaved by virtual anchor time — and
    /// adopted into `wal` through [`WriteAheadLog::adopt_tenants`]
    /// (keeping its durable sink, if any). A torn tail in one tenant's
    /// stream therefore rolls back only that tenant's watermark.
    ///
    /// # Errors
    ///
    /// [`TenantError::PartMismatch`] when the slices don't align;
    /// [`TenantError::Wal`] if the journal is corrupt or any tenant's
    /// commit prefix has a gap (the lowest-slot failure when several
    /// shards fail — deterministic under any interleaving). On error the
    /// parent journal is left unmodified.
    pub fn run_with_wal(
        &self,
        parts: &[Vec<Incident>],
        wal: &mut WriteAheadLog,
    ) -> Result<MultiTenantOutcome, TenantError> {
        self.check_parts(parts)?;
        let (outcomes, horizon_secs) = self.run_tenants(parts, Some(wal))?;
        Ok(self.compose(outcomes, parts, Some(wal), horizon_secs))
    }

    fn check_parts(&self, parts: &[Vec<Incident>]) -> Result<(), TenantError> {
        if parts.len() != self.specs.len() {
            return Err(TenantError::PartMismatch {
                specs: self.specs.len(),
                parts: parts.len(),
            });
        }
        Ok(())
    }

    /// The per-tenant engine base for this run: worker override applied,
    /// clock replaced by the shared plane cursor when virtual.
    fn effective_base(&self, plane_clock: Option<&Arc<VirtualClock>>) -> EngineConfig {
        let mut base = self.config.base.clone();
        if let Some(workers) = self.config.tenant_workers {
            base.workers = workers.max(1);
        }
        if let Some(clock) = plane_clock {
            base.clock = ClockConfig::SharedVirtual(Arc::clone(clock));
        }
        base
    }

    /// Installs the `tenant` label cardinality cap and pre-admits the
    /// plane's tenants in slot order, so cap winners don't depend on
    /// shard interleaving.
    fn install_metrics_guard(&self) {
        let cap = self.config.metrics_tenant_cap;
        if cap == 0 {
            return;
        }
        let Some(registry) = self.config.base.metrics.as_deref() else {
            return;
        };
        registry.limit_label_values("tenant", cap);
        for spec in &self.specs {
            registry.admit_label_value("tenant", &spec.tenant.0.to_string());
        }
    }

    /// Runs one tenant task to completion: derive the config (O(1) —
    /// admission share, cache namespace, shared clock handle), stamp an
    /// engine off the shared pipeline, run, and hand back the journal
    /// stream for post-join adoption.
    fn run_one(
        &self,
        base: &EngineConfig,
        total_weight: u32,
        shared: &Arc<PlanCaches>,
        task: TenantTask<'_>,
    ) -> Result<(ServeOutcome, Option<(TenantId, WriteAheadLog)>), WalError> {
        let cfg = MultiTenantEngine::tenant_engine_config(
            base,
            task.spec,
            total_weight,
            Some(Arc::clone(shared)),
        );
        let engine = ServeEngine::shared(Arc::clone(&self.copilot), cfg);
        match task.twal {
            Some(mut twal) => {
                let outcome = engine.run_with_wal(task.part, &task.spec.stream, &mut twal)?;
                Ok((outcome, Some((task.spec.tenant, twal))))
            }
            None => Ok((engine.run(task.part, &task.spec.stream), None)),
        }
    }

    /// The tenant-sharded composition: deal tenants round-robin over
    /// [`MultiTenantConfig::shards`] shard workers, run each tenant's
    /// engine over the shared plane (caches, clock, metrics), and
    /// reassemble outcomes and journal streams in slot order. With one
    /// shard everything runs sequentially on the caller thread — the
    /// legacy composition, which the parallel schedule reproduces byte
    /// for byte at any shard count.
    fn run_tenants(
        &self,
        parts: &[Vec<Incident>],
        wal: Option<&mut WriteAheadLog>,
    ) -> Result<(Vec<ServeOutcome>, u64), TenantError> {
        let total = self.total_weight();
        let shared = Arc::new(PlanCaches::new(self.config.base.shards.max(1)));
        // The shard-aware virtual-time merge: one plane-wide cursor all
        // tenant engines advance (fetch_max — commutative, so the merged
        // horizon is independent of shard interleaving). Real clocks are
        // per-engine wall readings and stay as configured.
        let plane_clock = match &self.config.base.clock {
            ClockConfig::Virtual => Some(Arc::new(VirtualClock::new())),
            ClockConfig::SharedVirtual(clock) => Some(Arc::clone(clock)),
            ClockConfig::Real(_) => None,
        };
        let base = self.effective_base(plane_clock.as_ref());
        self.install_metrics_guard();
        let journaling = wal.is_some();
        let mut tenant_wals = match &wal {
            Some(w) => w.split_tenants()?,
            None => Default::default(),
        };
        // Per-tenant setup, amortized: each task carries borrowed spec +
        // incidents and (when journaling) its own pre-split stream —
        // O(1) allocations per tenant, independent of its event count.
        let mut tasks: Vec<TenantTask<'_>> = Vec::with_capacity(self.specs.len());
        for (slot, (spec, part)) in self.specs.iter().zip(parts).enumerate() {
            let twal = journaling.then(|| tenant_wals.remove(&spec.tenant).unwrap_or_default());
            tasks.push(TenantTask {
                slot,
                spec,
                part,
                twal,
            });
        }
        let shards = self.config.shards.max(1).min(tasks.len());
        let mut results: Vec<Option<(ServeOutcome, Option<(TenantId, WriteAheadLog)>)>> =
            (0..tasks.len()).map(|_| None).collect();
        let mut failures: Vec<(usize, WalError)> = Vec::new();
        if shards <= 1 {
            for task in tasks {
                let slot = task.slot;
                match self.run_one(&base, total, &shared, task) {
                    Ok(row) => results[slot] = Some(row),
                    Err(e) => {
                        // Sequential semantics: stop at the first failing
                        // tenant, leaving the parent journal untouched.
                        failures.push((slot, e));
                        break;
                    }
                }
            }
        } else {
            // Round-robin deal: shard s owns slots {s, s+K, s+2K, …} and
            // runs them in ascending slot order — the deterministic turn
            // order. Shards only read shared state (pipeline, caches,
            // clock, metrics), so their interleaving cannot reach any
            // output; everything slot-keyed is reassembled below.
            let mut shard_tasks: Vec<Vec<TenantTask<'_>>> =
                (0..shards).map(|_| Vec::new()).collect();
            for task in tasks {
                shard_tasks[task.slot % shards].push(task);
            }
            let base_ref = &base;
            let shared_ref = &shared;
            let shard_rows: Vec<Vec<_>> = thread::scope(|scope| {
                let handles: Vec<_> = shard_tasks
                    .into_iter()
                    .map(|batch| {
                        scope.spawn(move || {
                            batch
                                .into_iter()
                                .map(|task| {
                                    let slot = task.slot;
                                    (slot, self.run_one(base_ref, total, shared_ref, task))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(rows) => rows,
                        Err(panic) => std::panic::resume_unwind(panic),
                    })
                    .collect()
            });
            for (slot, result) in shard_rows.into_iter().flatten() {
                match result {
                    Ok(row) => results[slot] = Some(row),
                    Err(e) => failures.push((slot, e)),
                }
            }
        }
        // Deterministic error: the lowest failing slot, exactly what the
        // sequential composition would have reported first.
        if let Some((_, err)) = failures.into_iter().min_by_key(|(slot, _)| *slot) {
            return Err(TenantError::Wal(err));
        }
        let mut outcomes = Vec::with_capacity(results.len());
        for row in results {
            let (outcome, twal) = row.expect("every tenant slot reports exactly once");
            if let Some((tenant, stream)) = twal {
                tenant_wals.insert(tenant, stream);
            }
            outcomes.push(outcome);
        }
        if let Some(w) = wal {
            // One writer touches the durable sink, after every shard has
            // joined; streams of tenants absent from this run (left over
            // in the journal) are preserved by the merge.
            w.adopt_tenants(&tenant_wals)?;
        }
        let horizon_secs = plane_clock.map_or(0, |clock| clock.now().as_secs());
        Ok((outcomes, horizon_secs))
    }

    /// Exports the merged run's per-tenant outcome and fault counters
    /// into the shared metrics registry (no-op without one). Runs after
    /// the shards join, in slot order, so series contents are
    /// deterministic; the `tenant` label respects the cardinality guard.
    fn export_plane_metrics(&self, outcomes: &[ServeOutcome]) {
        let Some(registry) = self.config.base.metrics.as_deref() else {
            return;
        };
        registry.describe(
            "rca_tenant_events_total",
            "Merged multi-tenant run: events per tenant by outcome.",
        );
        registry.describe(
            "rca_tenant_admission_total",
            "Merged multi-tenant run: admission dispositions per tenant.",
        );
        registry.describe(
            "rca_tenant_faults_total",
            "Merged multi-tenant run: fault counters per tenant by kind.",
        );
        for (spec, outcome) in self.specs.iter().zip(outcomes) {
            let tenant = spec.tenant.0.to_string();
            let mut predicted = 0u64;
            let mut degraded = 0u64;
            let mut shed = 0u64;
            let mut failed = 0u64;
            for record in &outcome.records {
                match &record.outcome {
                    EventOutcome::Predicted { degraded: true, .. } => degraded += 1,
                    EventOutcome::Predicted { .. } => predicted += 1,
                    EventOutcome::Shed { .. } => shed += 1,
                    EventOutcome::Failed { .. } => failed += 1,
                }
            }
            for (outcome_kind, count) in [
                ("predicted", predicted),
                ("degraded", degraded),
                ("shed", shed),
                ("failed", failed),
            ] {
                if count > 0 {
                    registry.inc_counter_by(
                        "rca_tenant_events_total",
                        &[("tenant", &tenant), ("outcome", outcome_kind)],
                        count,
                    );
                }
            }
            let executed = predicted + degraded + failed;
            for (disposition, count) in [
                ("shed", shed),
                ("degraded", degraded),
                ("executed", executed),
            ] {
                if count > 0 {
                    registry.inc_counter_by(
                        "rca_tenant_admission_total",
                        &[("tenant", &tenant), ("disposition", disposition)],
                        count,
                    );
                }
            }
            // Fault counters come off the tenant's run report (the
            // engine already folded WAL degradation into them).
            if let Some(fields) = outcome.report.as_map() {
                if let Some(faults) = Value::field(fields, "faults").as_map() {
                    for (kind, value) in faults {
                        if let Value::U64(count) = value {
                            if *count > 0 {
                                registry.inc_counter_by(
                                    "rca_tenant_faults_total",
                                    &[("tenant", &tenant), ("kind", kind)],
                                    *count,
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Merges per-tenant outcomes into the plane-wide transcript, DRR
    /// schedule and report. `wal` is the adopted parent journal, whose
    /// durability state (sink health, quarantine, `ENOSPC` pauses) is
    /// surfaced plane-wide in the report.
    fn compose(
        &self,
        outcomes: Vec<ServeOutcome>,
        parts: &[Vec<Incident>],
        wal: Option<&WriteAheadLog>,
        horizon_secs: u64,
    ) -> MultiTenantOutcome {
        // Merged transcript: interleave every tenant's records by
        // (arrival, tenant, tenant-local seq). Arrival ties across
        // tenants are broken by tenant id — a total, run-independent
        // order.
        let mut merged: Vec<&EventRecord> = outcomes.iter().flat_map(|o| &o.records).collect();
        merged.sort_by_key(|r| (r.at, r.tenant.0, r.seq));
        let mut log = String::new();
        for r in &merged {
            log.push_str(&r.log_line());
            log.push('\n');
        }
        self.export_plane_metrics(&outcomes);
        // Shared-pool DRR schedule over every executed event. Costs are
        // re-derived from the shared ex-ante model, so the schedule is
        // as deterministic as the logs. Shed and breaker-fast-failed
        // events never reach the pool.
        let weights: Vec<u32> = self.specs.iter().map(|s| s.weight).collect();
        let caps: Vec<Option<usize>> = self.specs.iter().map(|s| s.in_flight_cap).collect();
        let mut jobs: Vec<(u64, usize, u64)> = Vec::new();
        for (slot, outcome) in outcomes.iter().enumerate() {
            for r in &outcome.records {
                let alert = &parts[slot][r.incident_idx].alert;
                let c = cost::estimate(alert, self.config.base.cost_seed);
                let service = match &r.outcome {
                    EventOutcome::Shed { .. } => continue,
                    EventOutcome::Predicted { degraded, .. } => {
                        if *degraded {
                            c.degraded_total()
                        } else {
                            c.total()
                        }
                    }
                    EventOutcome::Failed { reason } => {
                        if reason.contains("circuit open") {
                            // Fast-failed: never dispatched, no pool work.
                            continue;
                        }
                        c.total()
                    }
                };
                jobs.push((r.at.as_secs(), slot, service));
            }
        }
        jobs.sort_unstable();
        let jobs: Vec<DrrJob> = jobs
            .into_iter()
            .map(|(arrival_secs, tenant_slot, service_secs)| DrrJob {
                tenant_slot,
                arrival_secs,
                service_secs,
            })
            .collect();
        let drr = simulate_drr(
            &jobs,
            self.config.base.workers.max(1),
            &weights,
            self.config.quantum_secs,
            &caps,
        );
        let tenant_reports: Vec<Value> = self
            .specs
            .iter()
            .zip(&outcomes)
            .zip(&drr.per_tenant)
            .map(|((spec, o), exec)| {
                let count = |pred: &dyn Fn(&EventOutcome) -> bool| {
                    o.records.iter().filter(|r| pred(&r.outcome)).count()
                };
                json!({
                    "tenant": spec.tenant.0,
                    "weight": spec.weight,
                    "in_flight_cap": spec.in_flight_cap,
                    "events": o.records.len(),
                    "predicted": count(&|oc| matches!(oc, EventOutcome::Predicted { .. })),
                    "degraded": count(&|oc| {
                        matches!(oc, EventOutcome::Predicted { degraded: true, .. })
                    }),
                    "shed": count(&|oc| matches!(oc, EventOutcome::Shed { .. })),
                    "failed": count(&|oc| matches!(oc, EventOutcome::Failed { .. })),
                    "pool": exec.to_json(),
                })
            })
            .collect();
        let report = json!({
            "tenants": Value::Seq(tenant_reports),
            "quantum_secs": self.config.quantum_secs,
            "plane": json!({
                "shards": self.config.shards.max(1).min(self.specs.len()),
                "tenant_workers": self.config.tenant_workers,
                "tenants": self.specs.len(),
                "merged_events": merged.len(),
                "horizon_secs": horizon_secs,
            }),
            "pool": drr.merged.to_json(),
            "wal": wal.map(|w| json!({
                "durable": w.is_durable(),
                "paused": w.is_paused(),
                "quarantined": w.quarantined().len(),
                "dropped_records": w.dropped_records(),
                "sink_failures": w.sink_failures(),
                "fsync_failures": w.fsync_failures(),
                "enospc_events": w.enospc_events(),
                "durability_paused_spans": w.durability_paused_spans(),
            })),
        });
        let tenants = self
            .specs
            .iter()
            .zip(outcomes)
            .map(|(spec, outcome)| TenantRun {
                tenant: spec.tenant,
                weight: spec.weight,
                outcome,
            })
            .collect();
        MultiTenantOutcome {
            tenants,
            log,
            drr,
            horizon_secs,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::metrics::{MetricsRegistry, OVERFLOW_LABEL_VALUE};
    use rcacopilot_core::eval::PreparedDataset;
    use rcacopilot_core::pipeline::RcaCopilotConfig;
    use rcacopilot_core::ContextSpec;
    use rcacopilot_embed::{FastTextConfig, FeatureExtractor};
    use rcacopilot_simcloud::noise::NoiseProfile;
    use rcacopilot_simcloud::{generate_dataset, partition_tenants, CampaignConfig, Topology};

    fn trained_copilot() -> (RcaCopilot, Vec<Incident>) {
        let dataset = generate_dataset(&CampaignConfig {
            seed: 5,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile {
                routine_logs: 2,
                herring_logs: 1,
                healthy_traces: 1,
                unrelated_failure: false,
                bystander_anomalies: 1,
            },
        });
        let split = dataset.split(7, 0.6);
        let prepared = PreparedDataset::prepare(&dataset, &split);
        let copilot = RcaCopilot::train(
            &prepared.train_examples(&ContextSpec::default()),
            RcaCopilotConfig {
                embedding: FastTextConfig {
                    dim: 24,
                    epochs: 8,
                    lr: 0.4,
                    features: FeatureExtractor {
                        buckets: 1 << 12,
                        ..FeatureExtractor::default()
                    },
                    ..FastTextConfig::default()
                },
                ..RcaCopilotConfig::default()
            },
        );
        let test: Vec<Incident> = split
            .test
            .iter()
            .take(18)
            .map(|&i| dataset.incidents()[i].clone())
            .collect();
        (copilot, test)
    }

    #[test]
    fn spec_translation_maps_plans_to_serving_configs() {
        let quiet = TenantSpec::from_plan(&TenantStormPlan::quiet(TenantId(1), 10));
        assert!(matches!(
            quiet.stream.arrivals,
            ArrivalModel::Poisson {
                mean_gap_secs: 1800
            }
        ));
        assert_eq!(quiet.faults.panic_per_mille, 0);
        assert_eq!(quiet.in_flight_cap, None);
        let storm = TenantSpec::from_plan(&TenantStormPlan::flapping_storm(TenantId(2), 11));
        assert!(matches!(storm.stream.arrivals, ArrivalModel::Bursty { .. }));
        assert!(storm.faults.panic_per_mille > 0);
        assert_eq!(storm.in_flight_cap, Some(2));
        assert!(storm.stream.reraise_prob > quiet.stream.reraise_prob);
    }

    #[test]
    fn derived_config_scales_admission_and_tags_the_tenant() {
        let base = EngineConfig::default();
        let spec = TenantSpec {
            tenant: TenantId(9),
            weight: 1,
            stream: StreamConfig::replay(),
            faults: WorkerFaultConfig::disabled(),
            in_flight_cap: None,
        };
        let cfg = MultiTenantEngine::tenant_engine_config(&base, &spec, 4, None);
        assert_eq!(cfg.tenant, TenantId(9));
        assert_eq!(
            cfg.admission.capacity_secs,
            base.admission.capacity_secs / 4
        );
        assert_eq!(cfg.workers, base.workers);
        assert_eq!(cfg.shards, base.shards);
    }

    #[test]
    fn bad_plane_constructions_are_typed_errors() {
        let (copilot, _) = trained_copilot();
        let err = MultiTenantEngine::new(copilot.clone(), MultiTenantConfig::default(), vec![])
            .expect_err("empty specs");
        assert!(matches!(err, TenantError::EmptySpecs));
        assert!(err.to_string().contains("at least one tenant"));
        let spec = TenantSpec::from_plan(&TenantStormPlan::quiet(TenantId(4), 1));
        let err = MultiTenantEngine::new(
            copilot.clone(),
            MultiTenantConfig::default(),
            vec![spec, spec],
        )
        .expect_err("duplicate tenant");
        assert!(matches!(err, TenantError::DuplicateTenant(TenantId(4))));
        // Misaligned parts are an error, not a panic.
        let plane =
            MultiTenantEngine::new(copilot, MultiTenantConfig::default(), vec![spec]).unwrap();
        let err = plane.run(&[]).expect_err("no slices");
        assert!(matches!(
            err,
            TenantError::PartMismatch { specs: 1, parts: 0 }
        ));
    }

    #[test]
    fn merged_run_matches_solo_baselines_and_interleaves_the_log() {
        let (copilot, incidents) = trained_copilot();
        let plans = [
            TenantStormPlan::quiet(TenantId(1), 21),
            TenantStormPlan::flapping_storm(TenantId(2), 22),
        ];
        let parts = partition_tenants(&incidents, &plans);
        let config = MultiTenantConfig {
            base: EngineConfig {
                admission: AdmissionConfig {
                    capacity_secs: 14_400,
                    ..AdmissionConfig::default()
                },
                ..EngineConfig::default()
            },
            ..MultiTenantConfig::default()
        };
        let plane = MultiTenantEngine::from_plans(copilot.clone(), config.clone(), &plans).unwrap();
        let out = plane.run(&parts).expect("aligned parts");

        // Per-tenant logs are byte-identical to solo runs with the same
        // derived config.
        for (i, run) in out.tenants.iter().enumerate() {
            let solo_cfg = MultiTenantEngine::tenant_engine_config(
                &config.base,
                &plane.specs()[i],
                plane.total_weight(),
                None,
            );
            let solo = ServeEngine::new(copilot.clone(), solo_cfg)
                .run(&parts[i], &plane.specs()[i].stream);
            assert_eq!(run.outcome.log, solo.log, "tenant {i} diverged from solo");
        }

        // The merged log is exactly the tenant logs re-interleaved:
        // filtering by `ten=` recovers each tenant's own log.
        for run in &out.tenants {
            let tag = format!(" ten={} ", run.tenant.0);
            let filtered: String = out
                .log
                .lines()
                .filter(|l| l.contains(&tag))
                .map(|l| format!("{l}\n"))
                .collect();
            assert_eq!(filtered, run.outcome.log);
        }
        assert_eq!(
            out.log.lines().count(),
            out.tenants
                .iter()
                .map(|t| t.outcome.records.len())
                .sum::<usize>()
        );
        // The DRR schedule covers every executed event, split per slot.
        assert_eq!(out.drr.per_tenant.len(), 2);
        assert_eq!(
            out.drr.merged.completed,
            out.drr
                .per_tenant
                .iter()
                .map(|e| e.completed)
                .sum::<usize>()
        );
    }

    #[test]
    fn sharded_schedules_reproduce_the_sequential_composition() {
        let (copilot, incidents) = trained_copilot();
        let copilot = Arc::new(copilot);
        let plans = [
            TenantStormPlan::quiet(TenantId(1), 41),
            TenantStormPlan::flapping_storm(TenantId(2), 42),
            TenantStormPlan::quiet(TenantId(3), 43),
            TenantStormPlan::quiet(TenantId(4), 44),
            TenantStormPlan::quiet(TenantId(5), 45),
        ];
        let parts = partition_tenants(&incidents, &plans);
        let config = |shards: usize| MultiTenantConfig {
            base: EngineConfig {
                admission: AdmissionConfig::unbounded(),
                ..EngineConfig::default()
            },
            shards,
            tenant_workers: Some(1),
            ..MultiTenantConfig::default()
        };
        let sequential =
            MultiTenantEngine::from_plans_shared(Arc::clone(&copilot), config(1), &plans)
                .unwrap()
                .run(&parts)
                .expect("aligned parts");
        for shards in [2usize, 3, 8] {
            let sharded =
                MultiTenantEngine::from_plans_shared(Arc::clone(&copilot), config(shards), &plans)
                    .unwrap()
                    .run(&parts)
                    .expect("aligned parts");
            assert_eq!(
                sharded.log, sequential.log,
                "{shards} shards diverged from sequential"
            );
            for (a, b) in sharded.tenants.iter().zip(&sequential.tenants) {
                assert_eq!(a.outcome.log, b.outcome.log, "tenant {:?}", a.tenant);
            }
            assert_eq!(sharded.horizon_secs, sequential.horizon_secs);
        }
    }

    #[test]
    fn plane_metrics_export_respects_the_tenant_cardinality_guard() {
        let (copilot, incidents) = trained_copilot();
        let plans: Vec<TenantStormPlan> = (1..=4)
            .map(|t| TenantStormPlan::quiet(TenantId(t), 50 + t))
            .collect();
        let parts = partition_tenants(&incidents, &plans);
        let registry = MetricsRegistry::shared();
        let config = MultiTenantConfig {
            base: EngineConfig {
                admission: AdmissionConfig::unbounded(),
                metrics: Some(Arc::clone(&registry)),
                ..EngineConfig::default()
            },
            shards: 2,
            metrics_tenant_cap: 2,
            ..MultiTenantConfig::default()
        };
        let plane = MultiTenantEngine::from_plans(copilot, config, &plans).unwrap();
        let out = plane.run(&parts).expect("aligned parts");
        // Slot-order pre-admission: tenants 1 and 2 keep dedicated
        // series, 3 and 4 fold into the overflow series.
        let events = |tenant: &str| {
            registry.counter(
                "rca_tenant_events_total",
                &[("tenant", tenant), ("outcome", "predicted")],
            )
        };
        let solo_predicted = |slot: usize| {
            out.tenants[slot]
                .outcome
                .records
                .iter()
                .filter(|r| {
                    matches!(
                        r.outcome,
                        EventOutcome::Predicted {
                            degraded: false,
                            ..
                        }
                    )
                })
                .count() as u64
        };
        assert_eq!(events("1"), solo_predicted(0));
        assert_eq!(events("2"), solo_predicted(1));
        assert_eq!(
            events(OVERFLOW_LABEL_VALUE),
            solo_predicted(2) + solo_predicted(3),
            "tenants beyond the cap fold into one series"
        );
        let text = registry.render_prometheus();
        assert!(text.contains("rca_tenant_events_total"));
    }

    #[test]
    fn wal_round_trip_recovers_each_tenant_independently() {
        let (copilot, incidents) = trained_copilot();
        let plans = [
            TenantStormPlan::quiet(TenantId(1), 31),
            TenantStormPlan::quiet(TenantId(2), 32),
        ];
        let parts = partition_tenants(&incidents, &plans);
        let config = MultiTenantConfig {
            base: EngineConfig {
                admission: AdmissionConfig::unbounded(),
                ..EngineConfig::default()
            },
            ..MultiTenantConfig::default()
        };
        let plane = MultiTenantEngine::from_plans(copilot, config, &plans).unwrap();
        let mut wal = WriteAheadLog::new();
        let out = plane.run_with_wal(&parts, &mut wal).expect("clean journal");
        let recovered = wal.recover_tenants().expect("gapless per tenant");
        for run in &out.tenants {
            assert_eq!(
                recovered[&run.tenant].committed(),
                run.outcome.records.len(),
                "tenant journal must hold the full record prefix"
            );
        }
        // Resuming from the adopted journal replays to the same logs
        // without re-executing (all commits already journaled).
        let out2 = plane
            .run_with_wal(&parts, &mut wal.clone())
            .expect("clean journal");
        assert_eq!(out2.log, out.log);
    }
}
