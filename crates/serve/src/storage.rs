//! Storage backends and fault surface under the write-ahead log.
//!
//! The WAL journals through a byte-sink abstraction ([`WalSink`]) with
//! two backends:
//!
//! - [`DurableFile`]: the real thing — an append-only file whose
//!   [`WalSink::sync`] is `fsync`, whose [`WalSink::rewrite`] goes
//!   through a temp file + atomic rename, and whose open cleans up the
//!   stale `.tmp` a crash between temp-write and rename leaves behind.
//! - [`SimDisk`]: a seeded in-memory disk with *page-granular crash
//!   persistence*. It records the full operation history (writes, fsync
//!   barriers, atomic rewrites) so a test can ask, after the fact, "what
//!   would the media hold if the process had died **here**?" — at any
//!   fsync barrier plus any byte prefix of the not-yet-synced window
//!   ([`SimDisk::crash_image`]). On top of honest crash semantics it
//!   injects the failure modes real disks exhibit, each a pure function
//!   of `(seed, offset/page, attempt)` from a
//!   [`StorageFaultPlan`]: transient per-mille write/fsync
//!   errors, an `ENOSPC` byte budget, whole un-fsynced pages dropped at
//!   crash, and single-bit rot on pages read back after a crash.
//!
//! Determinism is the point: the crash-point torture fuzzer
//! (`tests/wal_torture.rs`, `benches/wal_torture.rs`) enumerates fsync
//! barriers × byte offsets × fault mixes and replays each one exactly,
//! so the WAL's recovery invariants are *searched*, not spot-checked.
//!
//! The module also owns the CRC32C ([`crc32c`]) used by the WAL's
//! per-record framing — the Castagnoli polynomial, computed with a
//! const-built table (no external crates).

use rcacopilot_core::retrieval::fnv1a;
use rcacopilot_simcloud::StorageFaultPlan;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// CRC-32C (Castagnoli) lookup table, built at compile time.
const CRC32C_TABLE: [u32; 256] = {
    // Reflected polynomial 0x1EDC6F41.
    let poly: u32 = 0x82F6_3B78;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ poly
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32C (Castagnoli) of `bytes` — the checksum behind the WAL's
/// per-record framing.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// True when an I/O error is the disk running out of space (`ENOSPC`) —
/// the one sink failure the WAL answers with checkpoint-fold-and-retry
/// instead of detaching.
pub fn is_out_of_space(e: &std::io::Error) -> bool {
    e.raw_os_error() == Some(28) || e.get_ref().is_some_and(|inner| inner.is::<OutOfSpace>())
}

fn out_of_space(detail: String) -> std::io::Error {
    std::io::Error::other(OutOfSpace(detail))
}

/// Error payload carrying ENOSPC identity for [`SimDisk`], since the
/// simulated disk has no OS errno to report.
#[derive(Debug)]
struct OutOfSpace(String);

impl std::fmt::Display for OutOfSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "out of space: {}", self.0)
    }
}

impl std::error::Error for OutOfSpace {}

/// The byte sink under a [`crate::wal::WriteAheadLog`].
///
/// The WAL appends newline-terminated record frames via
/// [`WalSink::append`] and treats a successful [`WalSink::sync`] as the
/// durability barrier: a commit is acknowledged once its bytes are
/// synced. [`WalSink::rewrite`] atomically replaces the whole journal
/// (checkpoint folding, tenant-merge adoption) and is itself a
/// durability barrier. [`WalSink::contents`] reads the sink's current
/// view of the journal for load-time recovery.
pub trait WalSink: std::fmt::Debug + Send {
    /// Appends bytes to the journal. Buffered until the next
    /// [`WalSink::sync`]; an error leaves durability state unchanged.
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;

    /// Flushes appended bytes to stable storage. Everything appended
    /// before a successful sync survives a crash.
    fn sync(&mut self) -> std::io::Result<()>;

    /// Atomically replaces the journal's entire contents, durably:
    /// after a crash the media holds either the old bytes or the new,
    /// never a mix.
    fn rewrite(&mut self, contents: &[u8]) -> std::io::Result<()>;

    /// The sink's current contents (the page-cache view, not the
    /// crash-surviving view).
    fn contents(&mut self) -> std::io::Result<Vec<u8>>;

    /// Cumulative wall-clock nanoseconds this sink has spent inside
    /// durability barriers (`fsync` and the synced half of rewrites).
    /// Virtual backends report 0 — only [`DurableFile`] burns real time
    /// — which is what lets the engine surface fsync stalls in real
    /// mode without perturbing the DES timeline.
    fn sync_nanos(&self) -> u64 {
        0
    }
}

/// The real durable backend: an append-only file with `fsync` barriers
/// and temp-file + atomic-rename rewrites.
#[derive(Debug)]
pub struct DurableFile {
    file: File,
    path: PathBuf,
    /// Wall nanos spent in `sync_data` calls (appends and rewrites).
    sync_nanos: u64,
}

impl DurableFile {
    /// Opens (or creates) the journal file at `path`.
    ///
    /// A stale `<path minus extension>.tmp` — the debris of a crash
    /// between a checkpoint fold's temp-file write and its rename — is
    /// removed first, so an interrupted fold can never be mistaken for
    /// (or collide with) a live one. Removal is best-effort: if the
    /// `.tmp` cannot be unlinked, the open proceeds and the next
    /// rewrite's `File::create` truncates it anyway.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from creating or syncing the file.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(path.with_extension("tmp"));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        file.sync_data()?;
        Ok(DurableFile {
            file,
            path,
            sync_nanos: 0,
        })
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl WalSink for DurableFile {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        let t0 = std::time::Instant::now();
        let result = self.file.sync_data();
        self.sync_nanos = self
            .sync_nanos
            .saturating_add(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        result
    }

    fn rewrite(&mut self, contents: &[u8]) -> std::io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(contents)?;
            let t0 = std::time::Instant::now();
            let result = f.sync_data();
            self.sync_nanos = self
                .sync_nanos
                .saturating_add(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            result?;
        }
        if let Err(e) = std::fs::rename(&tmp, &self.path) {
            // Don't leave the orphaned temp file beside the journal.
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }

    fn contents(&mut self) -> std::io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        match File::open(&self.path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)?;
                Ok(buf)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(buf),
            Err(e) => Err(e),
        }
    }

    fn sync_nanos(&self) -> u64 {
        self.sync_nanos
    }
}

/// How the simulated disk misbehaves. Usually built from a
/// [`StorageFaultPlan`] via [`SimDiskConfig::from_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimDiskConfig {
    /// Seed of every fault decision.
    pub seed: u64,
    /// Persistence granule: crash loss and bit rot strike per page.
    pub page_size: usize,
    /// Byte budget before writes fail with `ENOSPC`; `None` unbounded.
    pub capacity_bytes: Option<usize>,
    /// Per-mille chance a write attempt fails transiently.
    pub write_error_per_mille: u16,
    /// Per-mille chance an fsync attempt fails transiently.
    pub fsync_error_per_mille: u16,
    /// Per-mille chance an un-fsynced page is zeroed at crash.
    pub page_drop_per_mille: u16,
    /// Per-mille chance a page in a crash image takes a single-bit
    /// flip.
    pub bit_flip_per_mille: u16,
}

impl Default for SimDiskConfig {
    fn default() -> Self {
        SimDiskConfig::from_plan(&StorageFaultPlan::clean(0))
    }
}

impl SimDiskConfig {
    /// Translates a `simcloud` storage fault plan into disk behaviour.
    pub fn from_plan(plan: &StorageFaultPlan) -> Self {
        SimDiskConfig {
            seed: plan.seed,
            page_size: (plan.page_size.max(1)) as usize,
            capacity_bytes: plan.capacity_bytes.map(|c| c as usize),
            write_error_per_mille: plan.write_error_per_mille,
            fsync_error_per_mille: plan.fsync_error_per_mille,
            page_drop_per_mille: plan.page_drop_per_mille,
            bit_flip_per_mille: plan.bit_flip_per_mille,
        }
    }
}

/// One recorded disk operation, for post-hoc crash replay.
#[derive(Debug, Clone)]
enum DiskOp {
    /// Bytes appended (buffered until the next barrier).
    Write(Vec<u8>),
    /// An fsync barrier: everything written before it is durable.
    Sync,
    /// An atomic durable replacement of the whole file.
    Rewrite(Vec<u8>),
}

#[derive(Debug)]
struct DiskState {
    config: SimDiskConfig,
    ops: Vec<DiskOp>,
    /// Logical file length (page-cache view).
    len: usize,
    write_attempts: u64,
    sync_attempts: u64,
    rewrite_attempts: u64,
}

/// A crash point: how much of the disk's history survives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Number of durability barriers (syncs + rewrites) that completed
    /// before the crash. Everything on media at the last of them
    /// survives intact (modulo bit rot). A value past the recorded
    /// barrier count means "no crash": the whole history survives.
    pub barriers: usize,
    /// Byte prefix of the post-barrier un-fsynced window that reached
    /// media before the crash (the torn tail). Clamped to the window.
    pub tail_bytes: usize,
    /// Distinguishes fault draws across crash points sharing a barrier,
    /// so sweeping `nonce` explores different drop/rot patterns.
    pub nonce: u64,
}

/// What the media holds after a crash, plus exactly which injected
/// corruptions produced it — so a test can assert quarantines match.
#[derive(Debug, Clone)]
pub struct CrashImage {
    /// Surviving file bytes.
    pub bytes: Vec<u8>,
    /// Absolute byte offsets that took a single-bit flip.
    pub flipped: Vec<usize>,
    /// Page indices of un-fsynced pages zeroed by the crash.
    pub dropped_pages: Vec<usize>,
}

/// A seeded in-memory disk with page-granular crash persistence and
/// injected write/fsync errors, `ENOSPC` budgets and bit rot.
///
/// Handles are cheap clones sharing one state — the point: the WAL owns
/// one handle as its [`WalSink`] while the torture fuzzer keeps another
/// to take [`SimDisk::crash_image`]s after the "process" (the WAL) is
/// gone, exactly like a disk outliving a crashed process.
#[derive(Debug, Clone)]
pub struct SimDisk {
    state: Arc<Mutex<DiskState>>,
}

impl SimDisk {
    /// An empty disk behaving per `config`.
    pub fn new(config: SimDiskConfig) -> Self {
        SimDisk {
            state: Arc::new(Mutex::new(DiskState {
                config,
                ops: Vec::new(),
                len: 0,
                write_attempts: 0,
                sync_attempts: 0,
                rewrite_attempts: 0,
            })),
        }
    }

    /// A disk restored from a crash image: `image` is on media and
    /// durable, as if written by a completed atomic rewrite.
    pub fn restore(config: SimDiskConfig, image: &[u8]) -> Self {
        let disk = SimDisk::new(config);
        {
            let mut st = disk.lock();
            st.len = image.len();
            st.ops.push(DiskOp::Rewrite(image.to_vec()));
        }
        disk
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DiskState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The disk's fault configuration.
    pub fn config(&self) -> SimDiskConfig {
        self.lock().config.clone()
    }

    /// Bytes written between consecutive durability barriers: entry `k`
    /// is the size of the un-fsynced window after barrier `k` (entry 0
    /// covers writes before any barrier). Always non-empty; the last
    /// entry is the window a crash "now" would tear.
    pub fn barrier_windows(&self) -> Vec<usize> {
        let st = self.lock();
        let mut windows = vec![0usize];
        for op in &st.ops {
            match op {
                DiskOp::Write(b) => {
                    if let Some(last) = windows.last_mut() {
                        *last += b.len();
                    }
                }
                DiskOp::Sync | DiskOp::Rewrite(_) => windows.push(0),
            }
        }
        windows
    }

    /// Number of durability barriers (syncs + rewrites) recorded.
    pub fn barriers(&self) -> usize {
        self.barrier_windows().len() - 1
    }

    /// The media bytes a crash at `point` would leave behind, with the
    /// exact injected corruptions reported alongside. Pure in
    /// `(recorded history, config seed, point)`: the same call always
    /// returns the same image.
    pub fn crash_image(&self, point: CrashPoint) -> CrashImage {
        let st = self.lock();
        let cfg = &st.config;
        // Replay the history to the chosen barrier, then collect the
        // un-fsynced window that follows it.
        let mut file: Vec<u8> = Vec::new();
        let mut window: Vec<u8> = Vec::new();
        let mut seen = 0usize;
        let mut at_barrier = point.barriers == 0;
        for op in &st.ops {
            match op {
                DiskOp::Write(b) => {
                    if at_barrier {
                        window.extend_from_slice(b);
                    } else {
                        file.extend_from_slice(b);
                    }
                }
                DiskOp::Sync => {
                    if at_barrier {
                        break;
                    }
                    seen += 1;
                    at_barrier = seen == point.barriers;
                }
                DiskOp::Rewrite(img) => {
                    if at_barrier {
                        break;
                    }
                    file = img.clone();
                    seen += 1;
                    at_barrier = seen == point.barriers;
                }
            }
        }
        if !at_barrier {
            // `point.barriers` exceeds the recorded count: no crash —
            // the entire history (there is no pending window) survives.
            window.clear();
        }
        let tail_offset = file.len();
        let keep = point.tail_bytes.min(window.len());
        let mut bytes = file;
        bytes.extend_from_slice(&window[..keep]);

        let page = cfg.page_size.max(1);
        // Un-fsynced pages may vanish wholesale: zero each page of the
        // torn tail that loses its seeded roll. The durable prefix is
        // never touched — that is what fsync bought.
        let mut dropped_pages = Vec::new();
        if cfg.page_drop_per_mille > 0 && keep > 0 {
            let first = tail_offset / page;
            let last = (bytes.len() - 1) / page;
            for p in first..=last {
                let roll = decide(cfg.seed, b'D', point.nonce, p as u64) % 1000;
                if (roll as u16) < cfg.page_drop_per_mille {
                    let start = (p * page).max(tail_offset);
                    let end = ((p + 1) * page).min(bytes.len());
                    for b in &mut bytes[start..end] {
                        *b = 0;
                    }
                    dropped_pages.push(p);
                }
            }
        }
        // Bit rot strikes pages anywhere on media — including fsync'd
        // ones. CRC framing exists to catch exactly this.
        let mut flipped = Vec::new();
        if cfg.bit_flip_per_mille > 0 && !bytes.is_empty() {
            let last = (bytes.len() - 1) / page;
            for p in 0..=last {
                let h = decide(cfg.seed, b'B', point.nonce, p as u64);
                if ((h % 1000) as u16) < cfg.bit_flip_per_mille {
                    let start = p * page;
                    let end = ((p + 1) * page).min(bytes.len());
                    let off = start
                        + (decide(cfg.seed, b'b', point.nonce, p as u64) as usize) % (end - start);
                    bytes[off] ^= 1 << ((h >> 32) % 8);
                    flipped.push(off);
                }
            }
        }
        CrashImage {
            bytes,
            flipped,
            dropped_pages,
        }
    }
}

/// One seeded 64-bit draw, pure in its inputs — the same
/// `seed`-first hashing discipline as `WorkerFaultPlan::decide`.
fn decide(seed: u64, kind: u8, a: u64, b: u64) -> u64 {
    let mut bytes = Vec::with_capacity(25);
    bytes.extend_from_slice(&seed.to_le_bytes());
    bytes.push(kind);
    bytes.extend_from_slice(&a.to_le_bytes());
    bytes.extend_from_slice(&b.to_le_bytes());
    fnv1a(&bytes)
}

impl WalSink for SimDisk {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.write_attempts += 1;
        let offset = st.len;
        if let Some(cap) = st.config.capacity_bytes {
            if offset + bytes.len() > cap {
                return Err(out_of_space(format!(
                    "append of {} bytes at offset {offset} exceeds budget {cap}",
                    bytes.len()
                )));
            }
        }
        if st.config.write_error_per_mille > 0 {
            let roll = decide(st.config.seed, b'W', offset as u64, st.write_attempts) % 1000;
            if (roll as u16) < st.config.write_error_per_mille {
                return Err(std::io::Error::other(format!(
                    "injected write error at offset {offset}"
                )));
            }
        }
        st.len += bytes.len();
        st.ops.push(DiskOp::Write(bytes.to_vec()));
        Ok(())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.sync_attempts += 1;
        if st.config.fsync_error_per_mille > 0 {
            let roll = decide(st.config.seed, b'S', st.len as u64, st.sync_attempts) % 1000;
            if (roll as u16) < st.config.fsync_error_per_mille {
                return Err(std::io::Error::other("injected fsync error"));
            }
        }
        st.ops.push(DiskOp::Sync);
        Ok(())
    }

    fn rewrite(&mut self, contents: &[u8]) -> std::io::Result<()> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.rewrite_attempts += 1;
        if let Some(cap) = st.config.capacity_bytes {
            if contents.len() > cap {
                return Err(out_of_space(format!(
                    "rewrite of {} bytes exceeds budget {cap}",
                    contents.len()
                )));
            }
        }
        if st.config.write_error_per_mille > 0 {
            let roll = decide(
                st.config.seed,
                b'R',
                contents.len() as u64,
                st.rewrite_attempts,
            ) % 1000;
            if (roll as u16) < st.config.write_error_per_mille {
                return Err(std::io::Error::other("injected rewrite error"));
            }
        }
        st.len = contents.len();
        st.ops.push(DiskOp::Rewrite(contents.to_vec()));
        Ok(())
    }

    fn contents(&mut self) -> std::io::Result<Vec<u8>> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut file: Vec<u8> = Vec::new();
        for op in &st.ops {
            match op {
                DiskOp::Write(b) => file.extend_from_slice(b),
                DiskOp::Sync => {}
                DiskOp::Rewrite(img) => file = img.clone(),
            }
        }
        Ok(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_matches_known_vectors() {
        // The canonical CRC-32C check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_ne!(crc32c(b"a"), crc32c(b"b"));
    }

    fn clean_disk() -> SimDisk {
        SimDisk::new(SimDiskConfig::default())
    }

    #[test]
    fn synced_bytes_survive_and_unsynced_bytes_tear_per_crash_point() {
        let mut disk = clean_disk();
        disk.append(b"alpha\n").unwrap();
        disk.sync().unwrap();
        disk.append(b"beta\n").unwrap();
        // No sync for "beta": it lives in the torn window.
        assert_eq!(disk.barriers(), 1);
        assert_eq!(disk.barrier_windows(), vec![6, 5]);

        let at_barrier = disk.crash_image(CrashPoint {
            barriers: 1,
            tail_bytes: 0,
            nonce: 0,
        });
        assert_eq!(at_barrier.bytes, b"alpha\n");
        let torn = disk.crash_image(CrashPoint {
            barriers: 1,
            tail_bytes: 3,
            nonce: 0,
        });
        assert_eq!(torn.bytes, b"alpha\nbet");
        // Before the first barrier nothing is durable.
        let nothing = disk.crash_image(CrashPoint {
            barriers: 0,
            tail_bytes: 0,
            nonce: 0,
        });
        assert!(nothing.bytes.is_empty());
        // Past the last barrier: no crash, the page-cache view.
        let all = disk.crash_image(CrashPoint {
            barriers: 2,
            tail_bytes: 0,
            nonce: 0,
        });
        assert_eq!(all.bytes, disk.contents().unwrap());
    }

    #[test]
    fn rewrite_is_an_atomic_durability_barrier() {
        let mut disk = clean_disk();
        disk.append(b"old line\n").unwrap();
        disk.sync().unwrap();
        disk.rewrite(b"folded\n").unwrap();
        disk.append(b"tail\n").unwrap();
        assert_eq!(disk.barriers(), 2);
        let before = disk.crash_image(CrashPoint {
            barriers: 1,
            tail_bytes: usize::MAX,
            nonce: 0,
        });
        // Crash between the sync and the rewrite: the old file, never a
        // mix (the pending window ends at the rewrite).
        assert_eq!(before.bytes, b"old line\n");
        let after = disk.crash_image(CrashPoint {
            barriers: 2,
            tail_bytes: 0,
            nonce: 0,
        });
        assert_eq!(after.bytes, b"folded\n");
    }

    #[test]
    fn crash_images_are_deterministic_and_nonce_varies_faults() {
        let cfg = SimDiskConfig {
            seed: 11,
            page_size: 8,
            bit_flip_per_mille: 400,
            page_drop_per_mille: 400,
            ..SimDiskConfig::default()
        };
        let mut disk = SimDisk::new(cfg);
        disk.append(&[0xAA; 64]).unwrap();
        disk.sync().unwrap();
        disk.append(&[0xBB; 64]).unwrap();
        let p = CrashPoint {
            barriers: 1,
            tail_bytes: 64,
            nonce: 3,
        };
        let a = disk.crash_image(p);
        let b = disk.crash_image(p);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.flipped, b.flipped);
        assert_eq!(a.dropped_pages, b.dropped_pages);
        // At these rates some nonce in a small sweep must differ.
        let differs = (0..16).any(|nonce| {
            let other = disk.crash_image(CrashPoint { nonce, ..p });
            other.bytes != a.bytes
        });
        assert!(differs, "fault draws should vary with the nonce");
        // Dropped pages only ever strike the un-fsynced tail.
        for &page in &a.dropped_pages {
            assert!(
                page * 8 + 8 > 64,
                "page {page} is inside the durable prefix"
            );
        }
    }

    #[test]
    fn enospc_and_injected_errors_fire_deterministically() {
        let cfg = SimDiskConfig {
            capacity_bytes: Some(10),
            ..SimDiskConfig::default()
        };
        let mut disk = SimDisk::new(cfg);
        disk.append(b"12345").unwrap();
        let err = disk.append(b"678901").unwrap_err();
        assert!(is_out_of_space(&err), "{err}");
        assert!(err.to_string().contains("out of space"));
        // A fitting append still succeeds after the refusal.
        disk.append(b"67890").unwrap();
        let err = disk.rewrite(b"this is far too long").unwrap_err();
        assert!(is_out_of_space(&err));
        // ENOSPC never corrupts: media still replays cleanly.
        assert_eq!(disk.contents().unwrap(), b"1234567890");

        let flaky = SimDiskConfig {
            seed: 5,
            write_error_per_mille: 300,
            fsync_error_per_mille: 300,
            ..SimDiskConfig::default()
        };
        let mut disk = SimDisk::new(flaky);
        let mut write_errors = 0;
        let mut sync_errors = 0;
        for i in 0..200 {
            if disk.append(format!("line {i}\n").as_bytes()).is_err() {
                write_errors += 1;
            }
            if disk.sync().is_err() {
                sync_errors += 1;
            }
        }
        assert!((20..120).contains(&write_errors), "{write_errors}");
        assert!((20..120).contains(&sync_errors), "{sync_errors}");
        // Injected transient errors are not ENOSPC.
        let mut disk2 = SimDisk::new(SimDiskConfig {
            seed: 5,
            write_error_per_mille: 1000,
            ..SimDiskConfig::default()
        });
        let err = disk2.append(b"x").unwrap_err();
        assert!(!is_out_of_space(&err));
    }

    #[test]
    fn restore_round_trips_a_crash_image() {
        let mut disk = clean_disk();
        disk.append(b"one\n").unwrap();
        disk.sync().unwrap();
        let image = disk.crash_image(CrashPoint {
            barriers: 1,
            tail_bytes: 0,
            nonce: 0,
        });
        let mut restored = SimDisk::restore(SimDiskConfig::default(), &image.bytes);
        assert_eq!(restored.contents().unwrap(), b"one\n");
        assert_eq!(restored.barriers(), 1, "restored image is durable");
        restored.append(b"two\n").unwrap();
        restored.sync().unwrap();
        assert_eq!(restored.contents().unwrap(), b"one\ntwo\n");
    }

    #[test]
    fn durable_file_cleans_stale_checkpoint_tmp_on_open() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/storage-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.wal");
        let tmp = path.with_extension("tmp");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&tmp, b"half-written checkpoint").unwrap();
        let mut sink = DurableFile::open(&path).unwrap();
        assert!(!tmp.exists(), "stale checkpoint temp file must be removed");
        sink.append(b"hello\n").unwrap();
        sink.sync().unwrap();
        assert_eq!(sink.contents().unwrap(), b"hello\n");
        sink.rewrite(b"replaced\n").unwrap();
        assert!(!tmp.exists());
        assert_eq!(std::fs::read(&path).unwrap(), b"replaced\n");
        // Appends continue on the renamed handle.
        sink.append(b"more\n").unwrap();
        sink.sync().unwrap();
        assert_eq!(sink.contents().unwrap(), b"replaced\nmore\n");
    }
}
