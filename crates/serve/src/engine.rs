//! The multi-worker streaming engine.
//!
//! [`ServeEngine`] consumes a virtual-time alert stream and runs the full
//! RCACopilot pipeline — collection → summarization → embedding →
//! retrieval → prediction — concurrently across a pool of OS threads fed
//! by a bounded queue. Four design rules keep it honest:
//!
//! 1. **Plan on the virtual clock, execute on real threads.** Admission,
//!    shedding, degraded mode and retrieval visibility are all decided by
//!    a deterministic pre-pass over the stream (ex-ante costs, reference
//!    drain rate, infinite-server resolution times). Worker threads then
//!    execute the admitted work in any order the scheduler likes.
//! 2. **Commit in stream order.** A commit watermark advances over event
//!    sequence numbers; in [`IndexMode::Online`] a resolved incident is
//!    inserted into the incremental index exactly at its commit point, so
//!    index growth order never depends on thread interleaving.
//! 3. **Dispatch behind the watermark.** An event that is entitled to see
//!    historical entry `j` (because `j` resolved before the event
//!    arrived) is not handed to a worker until `j` has committed. Since
//!    entries that resolved *after* the event's arrival are filtered out
//!    at query time by `visible_from`, retrieval results — and therefore
//!    the prediction log — are byte-identical for every worker count.
//! 4. **No event dies with its worker.** Workers run under a supervisor
//!    loop ([`crate::supervisor`]): a panic is caught, the worker
//!    respawned, and the lost in-flight event re-dispatched. An event
//!    that keeps killing workers (or exhausts its attempt budget) is
//!    quarantined as a poison pill with a degraded
//!    [`EventOutcome::Failed`] dead-letter record, so the watermark —
//!    and the stream — always finishes. Fault pressure is injected
//!    deterministically by [`crate::fault`], and durable progress can be
//!    journaled to a [`WriteAheadLog`] so a run killed mid-stream
//!    resumes byte-identically ([`ServeEngine::run_with_wal`]).

use crate::admission::{self, AdmissionConfig, AdmissionInput, AdmissionPlan, Disposition};
use crate::clock::{Clock, ClockConfig, ClockMode};
use crate::cost::{self, StageCosts, DEGRADED_SUMMARIZE_SECS};
use crate::fault::{AttemptFate, WorkerFault, WorkerFaultConfig, WorkerFaultPlan};
use crate::metrics::MetricsRegistry;
use crate::stream::{self, StreamConfig, StreamEvent};
use crate::supervisor::{
    lock_recovered, respawn_backoff, wait_recovered, AttemptLedger, InFlight, RetryQueue, Verdict,
};
use crate::vmetrics::{
    simulate_pool, ExecStats, FaultCounters, VirtualHistogram, VirtualJob, REPORT_SCHEMA_VERSION,
};
use crate::wal::{Recovery, WalError, WalRecord, WriteAheadLog};
use rcacopilot_core::memo::{ExactMemo, MemoPolicy};
use rcacopilot_core::plan::{InferencePlan, PlanCaches, PlanExecutor, StageHook, SummarizeMode};
use rcacopilot_core::retrieval::{
    CheckpointEntry, RetrievalBackend, RetrievalConfig, ShardedHistoricalIndex,
};
use rcacopilot_core::{CollectionStage, ContextSpec, HistoricalEntry, RcaCopilot, RcaPrediction};
use rcacopilot_simcloud::Incident;
use rcacopilot_telemetry::ids::TenantId;
use rcacopilot_telemetry::{AlertType, Severity, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// Which historical index answers retrieval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// The pipeline's frozen training index — exactly the batch system.
    Frozen,
    /// An incremental index warm-started from the training set; each
    /// incident is inserted (with its post-resolution OCE label) once it
    /// resolves, so later incidents retrieve earlier streamed ones.
    Online,
}

/// Per-tenant circuit breaker over the worker-fault climate.
///
/// The breaker is planned deterministically on the virtual clock: the
/// engine replays each event's attempt fate from the fault plan
/// ([`WorkerFaultPlan::simulate_fate`]) before dispatch, trips after
/// [`BreakerConfig::trip_quarantines`] planned quarantines, and
/// fast-fails every event arriving within the cooldown window as a
/// [`EventOutcome::Failed`] dead-letter record — never handing a
/// known-poisonous storm to the worker pool, so a flapping tenant burns
/// its own breaker instead of the shared workers. Because the plan
/// depends only on the stream and the fault seed, the prediction log
/// stays byte-identical for every worker and shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Planned quarantines before the breaker opens (≥ 1).
    pub trip_quarantines: u32,
    /// Virtual seconds the breaker stays open once tripped; events
    /// arriving inside the window are fast-failed.
    pub cooldown_secs: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_quarantines: 3,
            cooldown_secs: 600,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Bound of the dispatch queue (≥ 1).
    pub queue_capacity: usize,
    /// Retrieval index mode.
    pub index_mode: IndexMode,
    /// Admission-control policy.
    pub admission: AdmissionConfig,
    /// Seed of the ex-ante cost model.
    pub cost_seed: u64,
    /// Bucket split threshold of the online index.
    pub max_cell: usize,
    /// Retrieval-index shards (≥ 1). Entries route to a shard by a
    /// stable hash of their category, each shard owns its own lock and
    /// epoch state, and the cross-shard merge preserves exact scores and
    /// tie order — the prediction log is byte-identical for every shard
    /// count. The memo caches shard to the same width.
    pub shards: usize,
    /// Prompt-context configuration (must match the batch pipeline's for
    /// parity).
    pub spec: ContextSpec,
    /// Memoization policy for the summary/embedding caches. The default
    /// exact content hash keeps the prediction log byte-identical to an
    /// uncached run; the near-duplicate
    /// [`ShingleMemo`](rcacopilot_core::memo::ShingleMemo) policy trades
    /// that for storm dedup and is opt-in.
    pub memo: Arc<dyn MemoPolicy>,
    /// Worker-fault injection (disabled by default).
    pub faults: WorkerFaultConfig,
    /// The tenant this engine instance serves. Every [`EventRecord`] and
    /// every journaled [`WalRecord`] is tagged with it, sequence numbers
    /// are tenant-local, and the memo caches are namespaced to it — the
    /// engine itself is single-tenant; the tenant layer
    /// ([`crate::tenant`]) composes one engine per tenant into a
    /// bulkheaded multi-tenant run.
    pub tenant: TenantId,
    /// Worker kills before an event is quarantined as a poison pill.
    pub quarantine_kills: u32,
    /// Total attempts (including stalls/transient losses) before
    /// quarantine.
    pub max_attempts: u32,
    /// Per-tenant circuit breaker (`None` = disabled, the default:
    /// behavior is then byte-identical to pre-breaker engines).
    pub breaker: Option<BreakerConfig>,
    /// Shared physical memo caches, for multi-tenant runs that bulkhead
    /// one cache pool across tenants via key namespacing (`None` = the
    /// engine builds its own). A shared pool must have been created with
    /// this config's shard count.
    pub caches: Option<Arc<PlanCaches>>,
    /// Simulated crash: stop dispatching at the first event arriving
    /// after this virtual instant, leaving the rest of the stream
    /// uncommitted. Pair with [`ServeEngine::run_with_wal`] to test
    /// recovery.
    pub crash_at: Option<SimTime>,
    /// Fold the WAL into a checkpoint every this many commits
    /// (0 = never). Only meaningful under [`ServeEngine::run_with_wal`].
    pub checkpoint_every: usize,
    /// Compact the online index every this many published epochs
    /// (0 = never).
    pub compact_epochs: usize,
    /// Retrieval backend for the online index's shards: `Exact` (the
    /// default — byte-identical to pre-ANN engines), or an ANN candidate
    /// tier (`Hnsw`/`Ivf`) whose proposals are exactly re-ranked. At
    /// saturating search widths (`ef_search`/`nprobe` ≥ corpus size) the
    /// prediction log stays byte-identical to `Exact`.
    pub backend: RetrievalBackend,
    /// Which clock the run executes on: the deterministic virtual DES
    /// backend (the default — every output byte-identical to pre-clock
    /// engines) or a real wall clock under which stage costs, stalls and
    /// respawn backoff become actual sleeps ([`crate::clock`]).
    pub clock: ClockConfig,
    /// Observability registry the run exports into — per-stage wall and
    /// virtual histograms, per-tenant outcome counters, fault counters
    /// ([`crate::metrics`]). `None` (the default) records nothing.
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            queue_capacity: 64,
            index_mode: IndexMode::Frozen,
            admission: AdmissionConfig::default(),
            cost_seed: 11,
            max_cell: 64,
            shards: 1,
            spec: ContextSpec::default(),
            memo: Arc::new(ExactMemo),
            faults: WorkerFaultConfig::disabled(),
            tenant: TenantId::default(),
            quarantine_kills: 2,
            max_attempts: 6,
            breaker: None,
            caches: None,
            crash_at: None,
            checkpoint_every: 0,
            compact_epochs: 0,
            backend: RetrievalBackend::Exact,
            clock: ClockConfig::Virtual,
            metrics: None,
        }
    }
}

/// An on-call engineer's correction of a served prediction, to be
/// journaled via [`ServeEngine::ingest_feedback`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OceFeedback {
    /// The category the OCE determined to be correct.
    pub category: String,
    /// The OCE's corrected root-cause summary.
    pub summary: String,
    /// Virtual instant the correction was filed — the corrected entry's
    /// `visible_from` watermark, so earlier queries never see it.
    pub corrected_at: SimTime,
}

/// What happened to one stream event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventOutcome {
    /// Rejected by admission control.
    Shed {
        /// Virtual backlog at the event's arrival.
        backlog_secs: u64,
    },
    /// Processed to a prediction.
    Predicted {
        /// The pipeline's answer.
        prediction: RcaPrediction,
        /// True when summarization was skipped under load.
        degraded: bool,
    },
    /// The pipeline could not produce a prediction: the event was
    /// quarantined as a poison pill or its collection failed terminally.
    /// A degraded dead-letter record instead of a process abort.
    Failed {
        /// Human-readable `[pipeline failure]` reason.
        reason: String,
    },
}

/// The engine's record for one stream event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Stream sequence number.
    pub seq: usize,
    /// Index of the incident in the streamed slice.
    pub incident_idx: usize,
    /// Virtual arrival instant.
    pub at: SimTime,
    /// Alert severity.
    pub severity: Severity,
    /// Alert type.
    pub alert_type: AlertType,
    /// Tenant the serving engine ran this event for
    /// ([`EngineConfig::tenant`]).
    pub tenant: TenantId,
    /// Outcome.
    pub outcome: EventOutcome,
}

impl EventRecord {
    /// Canonical one-line rendering; the concatenation of these lines is
    /// the engine's deterministic prediction log.
    pub fn log_line(&self) -> String {
        let head = format!(
            "seq={} inc={} at={} ten={} sev={} type={}",
            self.seq,
            self.incident_idx,
            self.at.as_secs(),
            self.tenant.0,
            self.severity.level(),
            self.alert_type,
        );
        match &self.outcome {
            EventOutcome::Shed { backlog_secs } => {
                format!("{head} verdict=shed backlog={backlog_secs}")
            }
            EventOutcome::Predicted {
                prediction,
                degraded,
            } => format!(
                "{head} verdict=predicted label={} unseen={} conf={:.6} compl={:.4} \
                 degraded={} demos={}",
                prediction.label,
                prediction.unseen,
                prediction.confidence,
                prediction.completeness,
                degraded,
                prediction.demo_categories.join(","),
            ),
            // {reason:?} keeps the line single-line whatever the reason.
            EventOutcome::Failed { reason } => {
                format!("{head} verdict=failed reason={reason:?}")
            }
        }
    }
}

/// Wall-clock statistics of a real-mode run ([`ClockConfig::Real`]).
/// Unlike the prediction log these are *not* deterministic — they are
/// the host-hardware measurements real mode exists to take.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WallStats {
    /// Total run duration, dispatcher start to pool drain, nanoseconds.
    pub wall_nanos: u64,
    /// Events whose dispatch-to-commit latency was measured (admitted
    /// events that reached a worker).
    pub completed: usize,
    /// Completed events per wall-clock second.
    pub throughput_per_sec: f64,
    /// Median dispatch-to-commit latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile dispatch-to-commit latency, milliseconds.
    pub p99_ms: f64,
}

impl WallStats {
    /// Derives the stats from per-event latencies (nanoseconds) and the
    /// run duration. Returns a zeroed struct when nothing completed.
    fn from_latencies(mut latencies: Vec<u64>, wall_nanos: u64) -> Self {
        latencies.sort_unstable();
        let completed = latencies.len();
        let pct = |p: f64| -> f64 {
            if latencies.is_empty() {
                return 0.0;
            }
            let rank = ((p * completed as f64).ceil() as usize).clamp(1, completed);
            latencies[rank - 1] as f64 / 1e6
        };
        WallStats {
            wall_nanos,
            completed,
            throughput_per_sec: if wall_nanos == 0 {
                0.0
            } else {
                completed as f64 / (wall_nanos as f64 / 1e9)
            },
            p50_ms: pct(0.50),
            p99_ms: pct(0.99),
        }
    }

    /// JSON rendering for the engine report and the bench artifact.
    pub fn to_json(&self) -> Value {
        json!({
            "wall_nanos": self.wall_nanos,
            "completed": self.completed,
            "throughput_per_sec": self.throughput_per_sec,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        })
    }
}

/// Result of one engine run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Per-event records in stream order. Always the contiguous committed
    /// prefix of the stream; shorter than [`ServeOutcome::planned`] only
    /// under a simulated crash ([`EngineConfig::crash_at`]).
    pub records: Vec<EventRecord>,
    /// The deterministic prediction log (one line per event). Identical
    /// for every worker count and queue capacity.
    pub log: String,
    /// Events the stream planned in total.
    pub planned: usize,
    /// Virtual-time execution statistics for the configured worker count.
    pub exec: ExecStats,
    /// Full JSON report (stages, admission, caches, faults, queue
    /// depths), versioned by its `schema_version` field
    /// ([`REPORT_SCHEMA_VERSION`]). Cache hit/miss counters depend on
    /// thread interleaving, so the report — unlike `log` — is not
    /// byte-stable across runs.
    pub report: Value,
    /// Wall-clock measurements; `Some` exactly when the run executed
    /// under [`ClockConfig::Real`].
    pub wall: Option<WallStats>,
}

impl ServeOutcome {
    /// True when a simulated crash cut the run short of the full stream.
    pub fn crashed(&self) -> bool {
        self.records.len() < self.planned
    }
}

/// A processed slot awaiting commit.
struct Slot {
    record: EventRecord,
    /// Entry to insert into the online index at commit time.
    entry: Option<(HistoricalEntry, SimTime)>,
}

/// Commit state: processed slots plus the in-order watermark.
struct CommitState {
    slots: Vec<Option<Slot>>,
    next: usize,
}

/// Shared per-run context handed to workers.
struct RunCtx<'a> {
    incidents: &'a [Incident],
    events: &'a [StreamEvent],
    plan: &'a AdmissionPlan,
    resolve: &'a [Option<SimTime>],
    online: Option<&'a ShardedHistoricalIndex>,
    inference: &'a InferencePlan,
    caches: &'a PlanCaches,
    counters: &'a FaultCounters,
    /// The run's time boundary: every sleep/deadline/backoff goes here.
    clock: &'a dyn Clock,
    /// Ex-ante per-event stage costs — the real-clock sleep schedule.
    costs: &'a [StageCosts],
    /// Observability registry, when installed.
    metrics: Option<&'a MetricsRegistry>,
    /// Per-event dispatch-to-commit wall latencies (real mode only).
    wall_latencies: &'a Mutex<Vec<u64>>,
}

/// Per-event [`StageHook`] the engine installs on the executor when a
/// real clock or a metrics registry is present. After each stage's
/// compute it sleeps the stage's *modeled* virtual cost through the
/// clock (free in virtual mode), then records the stage's total wall
/// duration — compute plus modeled wait — into the registry and the
/// tracing stream. The hook never touches stage outputs, so the
/// prediction log is independent of its presence.
struct RealtimeStageHook<'a> {
    clock: &'a dyn Clock,
    costs: &'a StageCosts,
    degraded: bool,
    metrics: Option<&'a MetricsRegistry>,
    seq: usize,
    tenant: TenantId,
}

impl StageHook for RealtimeStageHook<'_> {
    fn on_stage(&self, stage: &'static str, wall_nanos: u64) {
        // The executor fuses retrieval into its "predict" stage.
        let modeled_secs = if stage == "predict" {
            self.costs.stage_secs("retrieve", self.degraded)
                + self.costs.stage_secs("predict", self.degraded)
        } else {
            self.costs.stage_secs(stage, self.degraded)
        };
        let before = self.clock.wall_nanos();
        self.clock.sleep(SimDuration::from_secs(modeled_secs));
        let total_nanos = wall_nanos + self.clock.wall_nanos().saturating_sub(before);
        if let Some(metrics) = self.metrics {
            let tenant = self.tenant.0.to_string();
            metrics.observe(
                "rca_stage_seconds",
                &[("stage", stage), ("tenant", &tenant)],
                total_nanos as f64 / 1e9,
            );
        }
        #[cfg(feature = "tracing")]
        tracing::trace!(
            seq = self.seq,
            tenant = self.tenant.0,
            stage = stage,
            wall_us = total_nanos / 1_000,
            "stage complete"
        );
        #[cfg(not(feature = "tracing"))]
        let _ = self.seq;
    }
}

/// Where committed slots go: the online index, and (when journaling) the
/// WAL. Owned by [`advance`], which runs under the commit-state lock, so
/// journal order always equals commit order.
struct CommitSink<'a> {
    online: Option<&'a ShardedHistoricalIndex>,
    wal: Option<&'a Mutex<&'a mut WriteAheadLog>>,
    checkpoint_every: usize,
    counters: &'a FaultCounters,
    tenant: TenantId,
}

/// Everything one worker thread needs, shared by reference across the
/// pool.
struct WorkerEnv<'a> {
    ctx: &'a RunCtx<'a>,
    state: &'a Mutex<CommitState>,
    watermark: &'a Condvar,
    rx: &'a Mutex<mpsc::Receiver<usize>>,
    queue_depth: &'a AtomicUsize,
    retry: &'a RetryQueue,
    ledger: &'a AttemptLedger,
    plan: &'a WorkerFaultPlan,
    sink: &'a CommitSink<'a>,
}

/// The streaming serving engine around a trained pipeline.
///
/// The pipeline is held behind an [`Arc`], so a multi-tenant plane can
/// stamp out thousands of per-tenant engines from one trained model
/// without cloning its FastText weights or historical index — see
/// [`ServeEngine::shared`].
#[derive(Debug)]
pub struct ServeEngine {
    copilot: Arc<RcaCopilot>,
    stage: CollectionStage,
    config: EngineConfig,
}

impl ServeEngine {
    /// Wraps a trained pipeline with the standard (fault-free) collection
    /// stage.
    pub fn new(copilot: RcaCopilot, config: EngineConfig) -> Self {
        ServeEngine::shared(Arc::new(copilot), config)
    }

    /// Like [`ServeEngine::new`], but sharing an already-`Arc`'d pipeline
    /// — per-engine setup is one refcount bump, not a model clone. This
    /// is how the tenant-sharded runtime keeps per-tenant construction
    /// O(1).
    pub fn shared(copilot: Arc<RcaCopilot>, config: EngineConfig) -> Self {
        ServeEngine::with_stage_shared(copilot, CollectionStage::standard(), config)
    }

    /// Wraps a trained pipeline with a custom collection stage — e.g. one
    /// whose telemetry plane injects faults.
    pub fn with_stage(copilot: RcaCopilot, stage: CollectionStage, config: EngineConfig) -> Self {
        ServeEngine::with_stage_shared(Arc::new(copilot), stage, config)
    }

    /// [`ServeEngine::with_stage`] over a shared pipeline.
    pub fn with_stage_shared(
        copilot: Arc<RcaCopilot>,
        stage: CollectionStage,
        config: EngineConfig,
    ) -> Self {
        ServeEngine {
            copilot,
            stage,
            config,
        }
    }

    /// The wrapped pipeline.
    pub fn copilot(&self) -> &RcaCopilot {
        &self.copilot
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Streams `incidents` through the engine and returns the records,
    /// the deterministic prediction log, and the virtual-time report.
    ///
    /// The engine never aborts on a worker failure: panicking workers
    /// are respawned, lost events re-dispatched, poison pills
    /// quarantined to [`EventOutcome::Failed`] dead-letter records, and
    /// a failing collection degrades the single event rather than the
    /// run.
    pub fn run(&self, incidents: &[Incident], stream_config: &StreamConfig) -> ServeOutcome {
        self.run_internal(incidents, stream_config, None, Recovery::default())
    }

    /// Like [`ServeEngine::run`], but journaling every commit (and index
    /// epoch) to `wal`, and first resuming from whatever the journal
    /// already holds. An engine killed mid-stream — simulated with
    /// [`EngineConfig::crash_at`] — picks up at the committed prefix and
    /// produces a prediction log byte-identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns the [`WalError`] if the journal's commit prefix has a gap
    /// — only possible through in-memory misuse, since loading a stored
    /// journal quarantines corruption and prunes past it.
    pub fn run_with_wal(
        &self,
        incidents: &[Incident],
        stream_config: &StreamConfig,
        wal: &mut WriteAheadLog,
    ) -> Result<ServeOutcome, WalError> {
        let recovery = wal.recover()?;
        Ok(self.run_internal(incidents, stream_config, Some(wal), recovery))
    }

    /// Journals an on-call engineer's correction of a served prediction:
    /// the original entry's identity, arrival time and embedding with the
    /// OCE's corrected category and summary, visible to queries from the
    /// correction instant onward. The next [`ServeEngine::run_with_wal`]
    /// over the journal replays the correction into the corrected
    /// category's shard alongside the committed entries — starting the
    /// feedback-ingestion loop the batch pipeline's `FeedbackStore` only
    /// records. Returns the corrected entry as journaled.
    pub fn ingest_feedback(
        &self,
        wal: &mut WriteAheadLog,
        original: &HistoricalEntry,
        feedback: &OceFeedback,
    ) -> HistoricalEntry {
        let corrected = HistoricalEntry {
            id: original.id,
            category: feedback.category.clone(),
            summary: feedback.summary.clone(),
            at: original.at,
            embedding: original.embedding.clone(),
        };
        wal.append(&WalRecord::Feedback {
            entry: CheckpointEntry {
                entry: corrected.clone(),
                visible_from: feedback.corrected_at,
            },
            tenant: self.config.tenant,
        });
        corrected
    }

    fn run_internal(
        &self,
        incidents: &[Incident],
        stream_config: &StreamConfig,
        wal: Option<&mut WriteAheadLog>,
        recovery: Recovery,
    ) -> ServeOutcome {
        let events = stream::schedule(incidents, stream_config);
        let n = events.len();
        let committed = recovery.committed();
        assert!(
            committed <= n,
            "WAL holds {committed} commits but the stream plans only {n} events"
        );
        let costs: Vec<StageCosts> = events
            .iter()
            .map(|e| cost::estimate(&incidents[e.incident_idx].alert, self.config.cost_seed))
            .collect();
        let inputs: Vec<AdmissionInput> = events
            .iter()
            .zip(&costs)
            .map(|(e, c)| AdmissionInput {
                at: e.at,
                severity: incidents[e.incident_idx].alert.severity,
                full_cost_secs: c.total(),
                degraded_cost_secs: c.degraded_total(),
            })
            .collect();
        let plan = admission::plan(&inputs, &self.config.admission);
        let fault_plan = WorkerFaultPlan::new(self.config.faults);
        // Circuit-breaker pre-pass: replay each admitted event's attempt
        // fate from the deterministic fault plan; after `trip_quarantines`
        // planned quarantines the breaker opens and every event arriving
        // inside the cooldown window is fast-failed without dispatch.
        // Fates depend only on `(seq, attempt)`, so the fast-fail set —
        // like admission — is identical for every worker count.
        let mut fast_fail = vec![false; n];
        if let Some(bk) = self.config.breaker {
            let mut quarantines = 0u32;
            let mut open_until: Option<SimTime> = None;
            for (i, e) in events.iter().enumerate() {
                if plan.dispositions[i] == Disposition::Shed {
                    continue;
                }
                if open_until.is_some_and(|t| e.at < t) {
                    fast_fail[i] = true;
                    continue;
                }
                open_until = None;
                let fate = fault_plan.simulate_fate(
                    e.seq,
                    self.config.quarantine_kills,
                    self.config.max_attempts,
                );
                if matches!(fate, AttemptFate::Quarantined { .. }) {
                    quarantines += 1;
                    if quarantines >= bk.trip_quarantines.max(1) {
                        open_until = Some(e.at + SimDuration::from_secs(bk.cooldown_secs));
                        quarantines = 0;
                    }
                }
            }
        }
        // Infinite-server resolution times: worker-independent, so index
        // visibility never depends on the pool size. Fast-failed events
        // never resolve — they neither enter the online index nor gate
        // later events' dispatch.
        let resolve: Vec<Option<SimTime>> = events
            .iter()
            .zip(&costs)
            .zip(&plan.dispositions)
            .enumerate()
            .map(|(i, ((e, c), d))| match d {
                _ if fast_fail[i] => None,
                Disposition::Shed => None,
                Disposition::Full => Some(e.at + SimDuration::from_secs(c.total())),
                Disposition::Degraded => Some(e.at + SimDuration::from_secs(c.degraded_total())),
            })
            .collect();
        // Dispatch watermark: event i may only run once every event j
        // that resolves at or before i's arrival has committed.
        let need: Vec<usize> = match self.config.index_mode {
            IndexMode::Frozen => vec![0; n],
            IndexMode::Online => (0..n)
                .map(|i| {
                    (0..i)
                        .rev()
                        .find(|&j| resolve[j].is_some_and(|r| r <= events[i].at))
                        .map_or(0, |j| j + 1)
                })
                .collect(),
        };

        let counters = FaultCounters::new();
        let ledger = AttemptLedger::new(n, self.config.quarantine_kills, self.config.max_attempts);
        let retry = RetryQueue::new();
        // The run's single time boundary. Everything *planned* above —
        // admission, costs, fates, resolution times — is already fixed on
        // the virtual timeline, which is exactly why a real clock below
        // cannot perturb the prediction log.
        let clock = self.config.clock.build();
        let wall_latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());

        let shards = self.config.shards.max(1);
        let online: Option<ShardedHistoricalIndex> = match self.config.index_mode {
            IndexMode::Frozen => None,
            IndexMode::Online => {
                let idx = match &recovery.checkpoint {
                    // A checkpoint restores into *this* run's shard
                    // count: entries re-route deterministically, so the
                    // answers (and the log) don't depend on the crashed
                    // run's count.
                    Some(ckpt) => {
                        ShardedHistoricalIndex::restore_with(ckpt, shards, self.config.backend)
                    }
                    None => ShardedHistoricalIndex::warm_with(
                        self.copilot.index().entries(),
                        shards,
                        self.config.max_cell,
                        self.config.backend,
                    ),
                };
                // Re-apply entries journaled after the last checkpoint —
                // commits and feedback corrections, in journal order —
                // and publish each touched shard once: epoch-batch
                // boundaries are immaterial because visibility is
                // filtered per query by `visible_from`.
                let mut dirty = BTreeSet::new();
                for ce in &recovery.entries {
                    dirty.insert(idx.insert(ce.entry.clone(), ce.visible_from));
                }
                for shard in dirty {
                    idx.publish(shard);
                }
                idx.set_compaction_interval(self.config.compact_epochs);
                for (&shard, &epoch) in &recovery.shard_epochs {
                    if shard < idx.shard_count() && epoch > idx.epoch(shard) {
                        idx.set_epoch(shard, epoch);
                    }
                }
                Some(idx)
            }
        };
        // A shared pool (multi-tenant bulkheading) or a private one; the
        // inference plan's memo policy is namespaced to the tenant either
        // way, so tenants sharing one physical cache occupy disjoint
        // logical key spaces.
        let caches: Arc<PlanCaches> = self
            .config
            .caches
            .clone()
            .unwrap_or_else(|| Arc::new(PlanCaches::new(shards)));
        // An ANN backend must reach the per-query retrieval config (the
        // snapshot only consults its graph when the query's backend
        // matches); `Exact` keeps `None` so plan parity with the batch
        // pipeline is untouched.
        let retrieval_override = if self.config.backend == RetrievalBackend::Exact {
            None
        } else {
            Some(RetrievalConfig {
                backend: self.config.backend,
                ..self.copilot.config().retrieval
            })
        };
        let inference = InferencePlan {
            spec: self.config.spec,
            retrieval: retrieval_override,
            policy: self.config.memo.clone(),
        }
        .with_namespace(self.config.tenant.0);
        let ctx = RunCtx {
            incidents,
            events: &events,
            plan: &plan,
            resolve: &resolve,
            online: online.as_ref(),
            inference: &inference,
            caches: &caches,
            counters: &counters,
            clock: clock.as_ref(),
            costs: &costs,
            metrics: self.config.metrics.as_deref(),
            wall_latencies: &wall_latencies,
        };
        let wal = wal.map(Mutex::new);
        let sink = CommitSink {
            online: online.as_ref(),
            wal: wal.as_ref(),
            checkpoint_every: self.config.checkpoint_every,
            counters: &counters,
            tenant: self.config.tenant,
        };

        let state = Mutex::new(CommitState {
            slots: (0..n).map(|_| None).collect(),
            next: 0,
        });
        let watermark = Condvar::new();
        {
            let mut st = lock_recovered(&state, &counters);
            // Recovered commits were journaled by the crashed run: seed
            // them and start the watermark past them, so they are
            // neither re-journaled nor re-inserted into the index.
            for (i, record) in recovery.records.iter().enumerate() {
                st.slots[i] = Some(Slot {
                    record: record.clone(),
                    entry: None,
                });
            }
            st.next = committed;
            // Shed and breaker-fast-failed events never reach a worker:
            // record them up front so the watermark can advance across
            // them.
            for (i, &fast) in fast_fail.iter().enumerate().skip(committed) {
                if plan.dispositions[i] == Disposition::Shed {
                    st.slots[i] = Some(Slot {
                        record: self.shed_record(&ctx, i),
                        entry: None,
                    });
                } else if fast {
                    FaultCounters::bump(&counters.breaker_fast_fails);
                    st.slots[i] = Some(Slot {
                        record: self.dead_letter_record(
                            &ctx,
                            i,
                            "[pipeline failure] circuit open: fast-failed in cooldown".to_string(),
                        ),
                        entry: None,
                    });
                }
            }
            advance(&mut st, &sink);
        }

        let workers = self.config.workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<usize>(self.config.queue_capacity.max(1));
        let rx = Mutex::new(rx);
        let queue_depth = AtomicUsize::new(0);
        let peak_queue = AtomicUsize::new(0);
        let env = WorkerEnv {
            ctx: &ctx,
            state: &state,
            watermark: &watermark,
            rx: &rx,
            queue_depth: &queue_depth,
            retry: &retry,
            ledger: &ledger,
            plan: &fault_plan,
            sink: &sink,
        };

        let run_start = clock.wall_nanos();
        if workers == 1 && clock.mode() == ClockMode::Virtual {
            // Lightweight single-threaded path: a one-worker virtual-mode
            // engine gains nothing from a pool (virtual sleeps are free
            // and there is no overlap to exploit), so the tenant-sharded
            // runtime's thousands of small per-tenant engines execute
            // each admitted event on the caller thread. Counter-for-
            // counter equivalent to a one-worker pool: injected fates,
            // retries, quarantine and respawn bookkeeping replay the
            // supervision loop's behavior, and the commit watermark is
            // satisfied by construction (events finish in stream order).
            drop(tx);
            for i in committed..n {
                if self.config.crash_at.is_some_and(|t| events[i].at > t) {
                    break;
                }
                stream::pace(clock.as_ref(), events[i].at);
                if plan.dispositions[i] == Disposition::Shed || fast_fail[i] {
                    continue;
                }
                self.execute_inline(&env, i);
            }
        } else {
            thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| self.supervise(&env));
                }
                // Dispatcher: feed admitted events in stream order, gated
                // on the commit watermark.
                for (i, &need_i) in need.iter().enumerate().skip(committed) {
                    if self.config.crash_at.is_some_and(|t| events[i].at > t) {
                        // Simulated crash: everything from here on is
                        // lost; in-flight work still commits (the journal
                        // prefix stays contiguous).
                        break;
                    }
                    // Advance the clock to this arrival (and, under a
                    // pacing real clock, sleep out the inter-arrival gap)
                    // — shed events included: the alert arrived either
                    // way.
                    stream::pace(clock.as_ref(), events[i].at);
                    if plan.dispositions[i] == Disposition::Shed || fast_fail[i] {
                        continue;
                    }
                    if need_i > 0 {
                        let mut st = lock_recovered(&state, &counters);
                        while st.next < need_i {
                            st = wait_recovered(&watermark, st, &counters);
                        }
                    }
                    let depth = queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                    peak_queue.fetch_max(depth, Ordering::Relaxed);
                    if tx.send(i).is_err() {
                        // Every worker is gone — impossible while the
                        // channel is open under normal operation, but a
                        // counted stop beats a dispatcher panic taking
                        // the run down.
                        FaultCounters::bump(&counters.dispatch_failures);
                        queue_depth.fetch_sub(1, Ordering::Relaxed);
                        break;
                    }
                }
                drop(tx);
            });
        }
        let wall = match clock.mode() {
            ClockMode::Virtual => None,
            ClockMode::Real => Some(WallStats::from_latencies(
                std::mem::take(&mut *lock_recovered(&wall_latencies, &counters)),
                clock.wall_nanos().saturating_sub(run_start),
            )),
        };

        // Surface durable-sink degradation in the run's fault counters
        // (before tearing down the commit state, whose borrow shares the
        // sink's lifetime).
        let mut durability = None;
        if let Some(wal) = wal.as_ref() {
            let journal = lock_recovered(wal, &counters);
            durability = Some(json!({
                "durable": journal.is_durable(),
                "paused": journal.is_paused(),
                "paused_appends": journal.paused_appends(),
                "quarantined": journal.quarantined().len(),
                "dropped_records": journal.dropped_records(),
                "torn_tail": journal.had_torn_tail(),
                "fsync_nanos": journal.fsync_nanos(),
            }));
            if let Some(registry) = self.config.metrics.as_deref() {
                registry.describe(
                    "rca_wal_fsync_nanos_total",
                    "Wall nanoseconds spent in WAL durability barriers (fsync)",
                );
                registry.inc_counter_by(
                    "rca_wal_fsync_nanos_total",
                    &[("tenant", &self.config.tenant.0.to_string())],
                    journal.fsync_nanos(),
                );
            }
            counters
                .sink_failures
                .fetch_add(journal.sink_failures(), Ordering::Relaxed);
            counters
                .fsync_failures
                .fetch_add(journal.fsync_failures(), Ordering::Relaxed);
            counters
                .sink_retries
                .fetch_add(journal.sink_retries(), Ordering::Relaxed);
            counters
                .enospc_events
                .fetch_add(journal.enospc_events(), Ordering::Relaxed);
            counters
                .durability_paused_spans
                .fetch_add(journal.durability_paused_spans(), Ordering::Relaxed);
            counters
                .wal_quarantined
                .fetch_add(journal.quarantined().len() as u64, Ordering::Relaxed);
            counters
                .wal_dropped
                .fetch_add(journal.dropped_records(), Ordering::Relaxed);
        }
        let slots = state
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .slots;
        let records: Vec<EventRecord> = slots
            .into_iter()
            .map_while(|s| s.map(|slot| slot.record))
            .collect();
        if self.config.crash_at.is_none() {
            assert_eq!(
                records.len(),
                n,
                "every event must commit when no crash is simulated"
            );
        }
        let mut log = String::new();
        for r in &records {
            log.push_str(&r.log_line());
            log.push('\n');
        }
        self.finish(
            records,
            log,
            n,
            &events,
            &costs,
            &plan,
            &resolve,
            online.as_ref(),
            &caches,
            &counters,
            peak_queue.into_inner(),
            durability,
            wall,
        )
    }

    /// Outer supervision loop of one worker thread: run the worker until
    /// it retires cleanly, catching panics, respawning, and deciding the
    /// fate of the event a dead incarnation was holding.
    fn supervise(&self, env: &WorkerEnv<'_>) {
        let counters = env.ctx.counters;
        let in_flight = InFlight::empty();
        loop {
            match catch_unwind(AssertUnwindSafe(|| self.worker_loop(env, &in_flight))) {
                Ok(()) => break,
                Err(_) => {
                    FaultCounters::bump(&counters.worker_panics);
                    FaultCounters::bump(&counters.worker_respawns);
                    let lost = in_flight.take();
                    #[cfg(feature = "tracing")]
                    tracing::warn!(
                        tenant = self.config.tenant.0,
                        lost_event = lost.map_or(-1i64, |i| i as i64),
                        "worker died; respawning"
                    );
                    if let Some(i) = lost {
                        match env.ledger.record_kill(i) {
                            Verdict::Retry => env.retry.push(i, counters),
                            Verdict::Quarantine { kills, attempts } => {
                                self.quarantine(env, i, kills, attempts);
                            }
                        }
                    }
                    // Loop: respawn the worker (after the clock's backoff
                    // — free in virtual mode, a real pause on a wall
                    // clock). The respawned iteration drains the retry
                    // queue before blocking, so a retry pushed here is
                    // never orphaned.
                    respawn_backoff(env.ctx.clock);
                }
            }
        }
    }

    /// One worker incarnation: drain retries, then the dispatch channel,
    /// rolling each attempt against the fault plan.
    fn worker_loop(&self, env: &WorkerEnv<'_>, in_flight: &InFlight) {
        let counters = env.ctx.counters;
        loop {
            // Re-dispatched events jump ahead of the stream so the
            // commit watermark keeps advancing.
            let i = match env.retry.pop(counters) {
                Some(i) => i,
                None => {
                    let received = lock_recovered(env.rx, counters).recv();
                    match received {
                        Ok(i) => {
                            env.queue_depth.fetch_sub(1, Ordering::Relaxed);
                            i
                        }
                        // Channel closed: one final drain, then retire.
                        Err(_) => match env.retry.pop(counters) {
                            Some(i) => i,
                            None => return,
                        },
                    }
                }
            };
            in_flight.set(i);
            let attempt = env.ledger.begin_attempt(i);
            let seq = env.ctx.events[i].seq;
            match env.plan.decide(seq, attempt) {
                WorkerFault::Panic { stage } => {
                    panic!("injected worker panic in {stage} (seq {seq}, attempt {attempt})");
                }
                WorkerFault::Stall { stage } => {
                    FaultCounters::bump(&counters.injected_stalls);
                    // A stall burns the stalled stage's modeled time
                    // before the attempt is declared lost: free on the
                    // virtual clock (stalls are attributed, not
                    // simulated, in DES), an actual sleep holding this
                    // worker on a wall clock.
                    let degraded = env.ctx.plan.dispositions[i] == Disposition::Degraded;
                    env.ctx.clock.sleep(SimDuration::from_secs(
                        env.ctx.costs[i].stage_secs(stage.name(), degraded),
                    ));
                    in_flight.take();
                    self.attempt_lost(env, i);
                }
                WorkerFault::Transient { .. } => {
                    FaultCounters::bump(&counters.injected_errors);
                    in_flight.take();
                    self.attempt_lost(env, i);
                }
                WorkerFault::None => {
                    let t0 = env.ctx.clock.wall_nanos();
                    let slot = self.process_event(env.ctx, i);
                    commit(env, i, slot);
                    if env.ctx.clock.mode() == ClockMode::Real {
                        let latency = env.ctx.clock.wall_nanos().saturating_sub(t0);
                        lock_recovered(env.ctx.wall_latencies, counters).push(latency);
                    }
                    in_flight.take();
                }
            }
        }
    }

    /// Runs one admitted event to completion on the caller thread — the
    /// single-worker virtual-mode fast path. Each attempt rolls against
    /// the fault plan exactly as [`ServeEngine::worker_loop`] would; a
    /// panic fate (injected or organic, caught by `catch_unwind` like the
    /// pool's supervisor) books the kill/respawn pair and consults the
    /// ledger, stalls burn their modeled stage cost through the clock,
    /// and retries loop here instead of re-entering a queue. The event
    /// leaves this function committed: either a prediction record or a
    /// quarantined dead letter.
    fn execute_inline(&self, env: &WorkerEnv<'_>, i: usize) {
        let counters = env.ctx.counters;
        loop {
            let attempt = env.ledger.begin_attempt(i);
            let seq = env.ctx.events[i].seq;
            let fate = env.plan.decide(seq, attempt);
            let killed = match fate {
                WorkerFault::Panic { .. } => true,
                WorkerFault::Stall { stage } => {
                    FaultCounters::bump(&counters.injected_stalls);
                    let degraded = env.ctx.plan.dispositions[i] == Disposition::Degraded;
                    env.ctx.clock.sleep(SimDuration::from_secs(
                        env.ctx.costs[i].stage_secs(stage.name(), degraded),
                    ));
                    self.attempt_lost(env, i);
                    false
                }
                WorkerFault::Transient { .. } => {
                    FaultCounters::bump(&counters.injected_errors);
                    self.attempt_lost(env, i);
                    false
                }
                WorkerFault::None => {
                    match catch_unwind(AssertUnwindSafe(|| self.process_event(env.ctx, i))) {
                        Ok(slot) => {
                            commit(env, i, slot);
                            false
                        }
                        Err(_) => true,
                    }
                }
            };
            if killed {
                // The pool path would let the panic unwind into
                // `supervise`; inline, the same bookkeeping applies
                // without tearing a thread down.
                FaultCounters::bump(&counters.worker_panics);
                FaultCounters::bump(&counters.worker_respawns);
                match env.ledger.record_kill(i) {
                    Verdict::Retry => env.retry.push(i, counters),
                    Verdict::Quarantine { kills, attempts } => {
                        self.quarantine(env, i, kills, attempts);
                    }
                }
                respawn_backoff(env.ctx.clock);
            }
            // A lost attempt re-queued this event; a commit (prediction
            // or quarantine) queued nothing and we are done.
            if env.retry.pop(counters).is_none() {
                return;
            }
        }
    }

    /// A stall or transient error lost the attempt without killing the
    /// worker: retry or quarantine per the ledger.
    fn attempt_lost(&self, env: &WorkerEnv<'_>, i: usize) {
        match env.ledger.record_loss(i) {
            Verdict::Retry => env.retry.push(i, env.ctx.counters),
            Verdict::Quarantine { kills, attempts } => self.quarantine(env, i, kills, attempts),
        }
    }

    /// Routes a poison-pill event to its dead-letter record so the
    /// watermark can advance past it.
    fn quarantine(&self, env: &WorkerEnv<'_>, i: usize, kills: u32, attempts: u32) {
        FaultCounters::bump(&env.ctx.counters.quarantined);
        let record = self.dead_letter_record(
            env.ctx,
            i,
            format!("[pipeline failure] quarantined: kills={kills} attempts={attempts}"),
        );
        commit(
            env,
            i,
            Slot {
                record,
                entry: None,
            },
        );
    }

    /// Builds the degraded record for an event the pipeline gave up on.
    fn dead_letter_record(&self, ctx: &RunCtx<'_>, i: usize, reason: String) -> EventRecord {
        let ev = ctx.events[i];
        let alert = &ctx.incidents[ev.incident_idx].alert;
        EventRecord {
            seq: ev.seq,
            incident_idx: ev.incident_idx,
            at: ev.at,
            severity: alert.severity,
            alert_type: alert.alert_type,
            tenant: self.config.tenant,
            outcome: EventOutcome::Failed { reason },
        }
    }

    /// Builds the record for a shed event.
    fn shed_record(&self, ctx: &RunCtx<'_>, i: usize) -> EventRecord {
        let ev = ctx.events[i];
        let alert = &ctx.incidents[ev.incident_idx].alert;
        EventRecord {
            seq: ev.seq,
            incident_idx: ev.incident_idx,
            at: ev.at,
            severity: alert.severity,
            alert_type: alert.alert_type,
            tenant: self.config.tenant,
            outcome: EventOutcome::Shed {
                backlog_secs: ctx.plan.backlog_at_arrival[i],
            },
        }
    }

    /// Runs the shared inference plan for one admitted event — the thin
    /// serving driver around [`PlanExecutor::run_incident`]: it maps the
    /// admission disposition to the summarize mode, picks the history
    /// view (frozen index or an epoch snapshot of the online one),
    /// attributes a terminal collection failure to a dead-letter record,
    /// and turns the plan outcome into a commit slot. Pure in the event
    /// and the deterministic plan — worker identity and timing never leak
    /// into the result.
    fn process_event(&self, ctx: &RunCtx<'_>, i: usize) -> Slot {
        let ev = ctx.events[i];
        let inc = &ctx.incidents[ev.incident_idx];
        let degraded = ctx.plan.dispositions[i] == Disposition::Degraded;
        #[cfg(feature = "tracing")]
        let _span = tracing::info_span!(
            "serve_event",
            seq = ev.seq,
            tenant = self.config.tenant.0,
            backend = match ctx.clock.mode() {
                ClockMode::Virtual => "virtual",
                ClockMode::Real => "real",
            },
            degraded = degraded
        )
        .entered();
        // Install the stage hook only when someone is listening: a real
        // clock needs the modeled sleeps, a registry wants the wall
        // histograms. The bare DES path takes no clock readings at all.
        let hook;
        let executor = PlanExecutor::new(&self.copilot, &self.stage, ctx.inference, ctx.caches);
        let executor = if ctx.clock.mode() == ClockMode::Real || ctx.metrics.is_some() {
            hook = RealtimeStageHook {
                clock: ctx.clock,
                costs: &ctx.costs[i],
                degraded,
                metrics: ctx.metrics,
                seq: ev.seq,
                tenant: self.config.tenant,
            };
            executor.with_hook(&hook)
        } else {
            executor
        };
        let mode = if degraded {
            SummarizeMode::TruncatedDegraded
        } else {
            SummarizeMode::Full
        };
        let outcome = match ctx.online {
            None => executor.run_incident(inc, ev.at, self.copilot.index(), mode),
            Some(online) => {
                let snapshot = online.snapshot();
                executor.run_incident(inc, ev.at, &snapshot, mode)
            }
        };
        let out = match outcome {
            Ok(out) => out,
            Err(e) => {
                FaultCounters::bump(&ctx.counters.collection_failures);
                return Slot {
                    record: self.dead_letter_record(
                        ctx,
                        i,
                        format!("[pipeline failure] collection: {e}"),
                    ),
                    entry: None,
                };
            }
        };
        let entry = ctx.online.map(|_| {
            (
                HistoricalEntry {
                    id: i,
                    category: inc.category.clone(),
                    summary: out.input_text.clone(),
                    at: ev.at,
                    embedding: out.query.clone(),
                },
                ctx.resolve[i].expect("admitted events have a resolution time"),
            )
        });
        Slot {
            record: EventRecord {
                seq: ev.seq,
                incident_idx: ev.incident_idx,
                at: ev.at,
                severity: inc.alert.severity,
                alert_type: inc.alert.alert_type,
                tenant: self.config.tenant,
                outcome: EventOutcome::Predicted {
                    prediction: out.prediction,
                    degraded,
                },
            },
            entry,
        }
    }

    /// Assembles the virtual-time report and the final outcome.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        records: Vec<EventRecord>,
        log: String,
        planned: usize,
        events: &[StreamEvent],
        costs: &[StageCosts],
        plan: &AdmissionPlan,
        resolve: &[Option<SimTime>],
        online: Option<&ShardedHistoricalIndex>,
        caches: &PlanCaches,
        counters: &FaultCounters,
        peak_queue: usize,
        durability: Option<Value>,
        wall: Option<WallStats>,
    ) -> ServeOutcome {
        let mut stage_hists = [
            VirtualHistogram::new(), // collect
            VirtualHistogram::new(), // summarize
            VirtualHistogram::new(), // embed
            VirtualHistogram::new(), // retrieve
            VirtualHistogram::new(), // predict
        ];
        let mut jobs: Vec<VirtualJob> = Vec::new();
        for (i, (e, c)) in events.iter().zip(costs).enumerate() {
            if plan.dispositions[i] != Disposition::Shed && resolve[i].is_none() {
                // Breaker-fast-failed: never executed, no pool work.
                continue;
            }
            let service = match plan.dispositions[i] {
                Disposition::Shed => continue,
                Disposition::Full => {
                    stage_hists[1].record(c.summarize_secs);
                    c.total()
                }
                Disposition::Degraded => {
                    stage_hists[1].record(DEGRADED_SUMMARIZE_SECS);
                    c.degraded_total()
                }
            };
            stage_hists[0].record(c.collect_secs);
            stage_hists[2].record(c.embed_secs);
            stage_hists[3].record(c.retrieve_secs);
            stage_hists[4].record(c.predict_secs);
            jobs.push(VirtualJob {
                arrival_secs: e.at.as_secs(),
                service_secs: service,
            });
        }
        let exec = simulate_pool(&jobs, self.config.workers.max(1));
        let (sum_hits, sum_misses) = caches.summary.stats();
        let (emb_hits, emb_misses) = caches.embed.stats();
        // Fold the locks recovered inside the index and the memo caches
        // into the run's fault counters before rendering them.
        if let Some(o) = online {
            counters
                .poison_recoveries
                .fetch_add(o.poison_recoveries(), Ordering::Relaxed);
        }
        counters
            .poison_recoveries
            .fetch_add(caches.poison_recoveries(), Ordering::Relaxed);
        // Export into the observability registry, when one is installed:
        // per-stage *virtual* histograms, per-tenant outcome counters,
        // admission dispositions, and the fault counters. (Per-stage
        // *wall* histograms were recorded live by the stage hook.)
        if let Some(registry) = self.config.metrics.as_deref() {
            let tenant = self.config.tenant.0.to_string();
            registry.register_buckets(
                "rca_stage_virtual_seconds",
                crate::metrics::VIRTUAL_SECS_BUCKETS,
            );
            registry.describe(
                "rca_stage_virtual_seconds",
                "Modeled per-stage virtual cost, seconds.",
            );
            for (stage, hist) in ["collect", "summarize", "embed", "retrieve", "predict"]
                .iter()
                .zip(&stage_hists)
            {
                for &sample in hist.samples() {
                    registry.observe(
                        "rca_stage_virtual_seconds",
                        &[("stage", stage), ("tenant", &tenant)],
                        sample as f64,
                    );
                }
            }
            registry.describe("rca_events_total", "Stream events by tenant and outcome.");
            for record in &records {
                let outcome = match &record.outcome {
                    EventOutcome::Shed { .. } => "shed",
                    EventOutcome::Predicted { degraded: true, .. } => "degraded",
                    EventOutcome::Predicted { .. } => "predicted",
                    EventOutcome::Failed { .. } => "failed",
                };
                registry.inc_counter(
                    "rca_events_total",
                    &[("tenant", &tenant), ("outcome", outcome)],
                );
            }
            registry.describe("rca_admission_total", "Admission dispositions by tenant.");
            for (disposition, count) in [
                ("shed", plan.shed as u64),
                ("degraded", plan.degraded as u64),
                ("full", plan.admitted().saturating_sub(plan.degraded) as u64),
            ] {
                registry.inc_counter_by(
                    "rca_admission_total",
                    &[("tenant", &tenant), ("disposition", disposition)],
                    count,
                );
            }
            counters.export_to(registry, &tenant);
        }
        let report = json!({
            "schema_version": REPORT_SCHEMA_VERSION,
            "engine": {
                "workers": self.config.workers,
                "queue_capacity": self.config.queue_capacity,
                "index_mode": match self.config.index_mode {
                    IndexMode::Frozen => "frozen",
                    IndexMode::Online => "online",
                },
                "cost_seed": self.config.cost_seed,
                "shards": self.config.shards.max(1),
                "tenant": self.config.tenant.0,
            },
            "stream": {
                "events": events.len(),
                "committed": records.len(),
                "admitted": plan.admitted(),
                "shed": plan.shed,
                "degraded": plan.degraded,
            },
            "admission": {
                "enabled": self.config.admission.enabled,
                "capacity_secs": self.config.admission.capacity_secs,
                "peak_backlog_secs": plan.peak_backlog_secs,
            },
            "stages": {
                "collect": stage_hists[0].to_json(),
                "summarize": stage_hists[1].to_json(),
                "embed": stage_hists[2].to_json(),
                "retrieve": stage_hists[3].to_json(),
                "predict": stage_hists[4].to_json(),
            },
            "exec": exec.to_json(),
            "caches": {
                "policy": self.config.memo.name(),
                "summary": { "hits": sum_hits, "misses": sum_misses },
                "embed": { "hits": emb_hits, "misses": emb_misses },
            },
            "faults": counters.to_json(),
            "durability": durability,
            "queue": { "peak_depth": peak_queue },
            "online_index_len": online.map(ShardedHistoricalIndex::len),
            "online_index_stats": online
                .map(|o| crate::vmetrics::index_stats_json(&o.index_stats())),
            "clock": match self.config.clock.mode() {
                ClockMode::Virtual => "virtual",
                ClockMode::Real => "real",
            },
            "wall": wall.map(|w| w.to_json()),
        });
        ServeOutcome {
            records,
            log,
            planned,
            exec,
            report,
            wall,
        }
    }
}

/// Commits a processed slot and advances the watermark. Idempotent per
/// slot: a duplicate commit (e.g. after supervisor races) is a no-op, so
/// the journal never double-writes a sequence number.
fn commit(env: &WorkerEnv<'_>, i: usize, slot: Slot) {
    let counters = env.ctx.counters;
    let mut st = lock_recovered(env.state, counters);
    if st.slots[i].is_none() {
        st.slots[i] = Some(slot);
        advance(&mut st, env.sink);
        env.watermark.notify_all();
    }
}

/// Advances the commit watermark over contiguous finished slots —
/// journaling each commit, inserting online entries in commit order
/// (publishing one epoch per *touched shard* per batch, journaled as
/// shard-tagged [`WalRecord::Epoch`]s), and folding the WAL into a
/// checkpoint on the configured cadence.
fn advance(st: &mut CommitState, sink: &CommitSink<'_>) {
    let mut dirty: BTreeSet<usize> = BTreeSet::new();
    while st.next < st.slots.len() {
        let Some(slot) = st.slots[st.next].as_mut() else {
            break;
        };
        let entry = slot.entry.take();
        if let Some(wal) = sink.wal {
            lock_recovered(wal, sink.counters).append(&WalRecord::Commit {
                seq: st.next,
                record: slot.record.clone(),
                entry: entry.as_ref().map(|(e, visible_from)| CheckpointEntry {
                    entry: e.clone(),
                    visible_from: *visible_from,
                }),
            });
        }
        if let Some((entry, visible_from)) = entry {
            if let Some(online) = sink.online {
                dirty.insert(online.insert(entry, visible_from));
            }
        }
        st.next += 1;
    }
    if let Some(online) = sink.online {
        // Publish touched shards in index order; untouched shards keep
        // their epoch (no epoch churn from unrelated commits).
        for shard in dirty {
            let epoch = online.publish(shard);
            if let Some(wal) = sink.wal {
                lock_recovered(wal, sink.counters).append(&WalRecord::Epoch {
                    shard,
                    epoch,
                    committed: st.next,
                    tenant: sink.tenant,
                });
            }
        }
    }
    if let Some(wal) = sink.wal {
        let mut wal = lock_recovered(wal, sink.counters);
        // Fold on the configured cadence — or immediately when `ENOSPC`
        // paused durability, since the fold's rewrite is the only way to
        // free sink space and resume (checkpoint-fold-and-retry).
        let cadence_due = sink.checkpoint_every > 0
            && st.next.saturating_sub(wal.checkpointed()) >= sink.checkpoint_every;
        let space_due = wal.needs_space_fold() && st.next > 0;
        if cadence_due || space_due {
            let records: Vec<EventRecord> = st.slots[..st.next]
                .iter()
                .map(|s| {
                    s.as_ref()
                        .expect("slots below the watermark are committed")
                        .record
                        .clone()
                })
                .collect();
            let index = sink.online.map(ShardedHistoricalIndex::checkpoint);
            wal.install_checkpoint(records, index, sink.tenant);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::RealClockConfig;
    use crate::stream::ArrivalModel;
    use rcacopilot_core::eval::PreparedDataset;
    use rcacopilot_core::pipeline::RcaCopilotConfig;
    use rcacopilot_embed::{FastTextConfig, FeatureExtractor};
    use rcacopilot_simcloud::noise::NoiseProfile;
    use rcacopilot_simcloud::{generate_dataset, CampaignConfig, IncidentDataset, Topology};

    /// Looks up a (possibly nested) field of a JSON report map.
    fn field<'a>(v: &'a Value, path: &[&str]) -> &'a Value {
        let mut cur = v;
        for key in path {
            cur = cur
                .as_map()
                .expect("report node is a map")
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("report field {key} missing"));
        }
        cur
    }

    /// Unwraps an unsigned JSON number.
    fn as_u64(v: &Value) -> u64 {
        match v {
            Value::U64(n) => *n,
            Value::I64(n) => *n as u64,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn dataset() -> IncidentDataset {
        generate_dataset(&CampaignConfig {
            seed: 5,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile {
                routine_logs: 2,
                herring_logs: 1,
                healthy_traces: 1,
                unrelated_failure: false,
                bystander_anomalies: 1,
            },
        })
    }

    fn quick_config() -> RcaCopilotConfig {
        RcaCopilotConfig {
            embedding: FastTextConfig {
                dim: 24,
                epochs: 8,
                lr: 0.4,
                features: FeatureExtractor {
                    buckets: 1 << 12,
                    ..FeatureExtractor::default()
                },
                ..FastTextConfig::default()
            },
            ..RcaCopilotConfig::default()
        }
    }

    fn trained_engine(config: EngineConfig) -> (ServeEngine, Vec<Incident>) {
        let dataset = dataset();
        let split = dataset.split(7, 0.6);
        let prepared = PreparedDataset::prepare(&dataset, &split);
        let spec = config.spec;
        let copilot = RcaCopilot::train(&prepared.train_examples(&spec), quick_config());
        let test: Vec<Incident> = split
            .test
            .iter()
            .take(24)
            .map(|&i| dataset.incidents()[i].clone())
            .collect();
        (ServeEngine::new(copilot, config), test)
    }

    #[test]
    fn frozen_replay_log_is_identical_across_worker_counts() {
        let stream = StreamConfig::replay();
        let (engine1, test) = trained_engine(EngineConfig {
            workers: 1,
            admission: AdmissionConfig::unbounded(),
            ..EngineConfig::default()
        });
        let out1 = engine1.run(&test, &stream);
        let (engine4, test4) = trained_engine(EngineConfig {
            workers: 4,
            queue_capacity: 2,
            admission: AdmissionConfig::unbounded(),
            ..EngineConfig::default()
        });
        assert_eq!(test.len(), test4.len());
        let out4 = engine4.run(&test4, &stream);
        assert_eq!(out1.log, out4.log);
        assert_eq!(out1.records.len(), test.len());
        assert!(!out1.crashed());
        assert!(out1
            .records
            .iter()
            .all(|r| matches!(r.outcome, EventOutcome::Predicted { .. })));
    }

    #[test]
    fn online_mode_inserts_resolved_incidents_and_stays_deterministic() {
        let stream = StreamConfig {
            seed: 2,
            arrivals: ArrivalModel::Poisson { mean_gap_secs: 900 },
            reraise_prob: 0.25,
        };
        let make = |workers| {
            let (engine, test) = trained_engine(EngineConfig {
                workers,
                index_mode: IndexMode::Online,
                admission: AdmissionConfig::unbounded(),
                ..EngineConfig::default()
            });
            (engine.run(&test, &stream), engine)
        };
        let (out1, engine1) = make(1);
        let (out3, _) = make(3);
        assert_eq!(out1.log, out3.log, "online log must not depend on workers");
        let train_len = engine1.copilot().history_len();
        let index_len = as_u64(field(&out1.report, &["online_index_len"])) as usize;
        assert_eq!(index_len, train_len + out1.records.len());
        // Flapping re-raises hit the memo caches.
        let hits = as_u64(field(&out1.report, &["caches", "embed", "hits"]));
        assert!(hits > 0, "duplicate alerts should hit the embed cache");
    }

    #[test]
    fn storm_with_admission_sheds_and_reports() {
        let stream = StreamConfig {
            seed: 8,
            arrivals: ArrivalModel::Bursty {
                mean_gap_secs: 240,
                burst_prob: 0.6,
                burst_len: 8,
                burst_gap_secs: 5,
            },
            reraise_prob: 0.1,
        };
        let (engine, test) = trained_engine(EngineConfig {
            workers: 2,
            admission: AdmissionConfig {
                capacity_secs: 900,
                ..AdmissionConfig::default()
            },
            ..EngineConfig::default()
        });
        let out = engine.run(&test, &stream);
        let shed = out
            .records
            .iter()
            .filter(|r| matches!(r.outcome, EventOutcome::Shed { .. }))
            .count();
        assert!(shed > 0, "a storm against a small capacity must shed");
        assert_eq!(
            as_u64(field(&out.report, &["stream", "shed"])) as usize,
            shed
        );
        assert!(out.exec.makespan_secs > 0);
        assert!(out.log.contains("verdict=shed"));
    }

    #[test]
    fn injected_faults_never_lose_an_event_and_stay_deterministic() {
        let stream = StreamConfig::replay();
        let faults = WorkerFaultConfig {
            panic_per_mille: 120,
            stall_per_mille: 50,
            error_per_mille: 30,
            ..WorkerFaultConfig::default()
        };
        let make = |workers| {
            let (engine, test) = trained_engine(EngineConfig {
                workers,
                faults,
                admission: AdmissionConfig::unbounded(),
                ..EngineConfig::default()
            });
            let n = test.len();
            (engine.run(&test, &stream), n)
        };
        let (out1, n1) = make(1);
        let (out4, n4) = make(4);
        assert_eq!(n1, n4);
        assert_eq!(out1.records.len(), n1, "every event must complete");
        assert_eq!(
            out1.log, out4.log,
            "fault outcomes must not depend on the worker count"
        );
        let panics = as_u64(field(&out1.report, &["faults", "worker_panics"]));
        assert!(panics > 0, "a 12% panic rate over {n1} events must fire");
        let respawns = as_u64(field(&out1.report, &["faults", "worker_respawns"]));
        assert_eq!(panics, respawns, "every killed worker must respawn");
    }

    #[test]
    fn breaker_fast_fails_a_fault_storm_and_stays_deterministic() {
        let stream = StreamConfig::replay();
        let faults = WorkerFaultConfig {
            panic_per_mille: 400,
            stall_per_mille: 150,
            error_per_mille: 100,
            ..WorkerFaultConfig::default()
        };
        let make = |workers| {
            let (engine, test) = trained_engine(EngineConfig {
                workers,
                faults,
                breaker: Some(BreakerConfig {
                    trip_quarantines: 1,
                    cooldown_secs: 1 << 40,
                }),
                admission: AdmissionConfig::unbounded(),
                ..EngineConfig::default()
            });
            let n = test.len();
            (engine.run(&test, &stream), n)
        };
        let (out1, n1) = make(1);
        let (out4, _) = make(4);
        assert_eq!(out1.records.len(), n1, "fast-fails still commit");
        assert_eq!(out1.log, out4.log, "the fast-fail set is planned");
        assert!(out1.log.contains("circuit open"), "the breaker must trip");
        let fast = as_u64(field(&out1.report, &["faults", "breaker_fast_fails"]));
        assert!(fast > 0);
        // Fast-failed events are never dispatched: fewer pool jobs than
        // the no-breaker run would execute.
        assert!(out1.exec.completed < n1);
    }

    #[test]
    fn real_clock_smoke_reproduces_the_virtual_log_and_measures_wall() {
        let stream = StreamConfig::replay();
        let (virtual_engine, test_v) = trained_engine(EngineConfig {
            workers: 2,
            admission: AdmissionConfig::unbounded(),
            ..EngineConfig::default()
        });
        let out_v = virtual_engine.run(&test_v, &stream);
        assert!(out_v.wall.is_none(), "DES runs report no wall stats");
        let (real_engine, test_r) = trained_engine(EngineConfig {
            workers: 2,
            admission: AdmissionConfig::unbounded(),
            clock: ClockConfig::Real(RealClockConfig {
                nanos_per_virtual_sec: 1_000,
                pace_arrivals: false,
            }),
            ..EngineConfig::default()
        });
        let out_r = real_engine.run(&test_r, &stream);
        assert_eq!(
            out_v.log, out_r.log,
            "the prediction log is byte-identical across clock backends"
        );
        let wall = out_r.wall.expect("real runs measure wall time");
        assert_eq!(wall.completed, test_r.len());
        assert!(wall.wall_nanos > 0);
        assert!(wall.throughput_per_sec > 0.0);
        assert!(wall.p99_ms >= wall.p50_ms);
        assert_eq!(
            field(&out_r.report, &["clock"]),
            &Value::Str("real".to_string()),
            "the report names its clock backend"
        );
        assert!(as_u64(field(&out_r.report, &["wall", "wall_nanos"])) > 0);
    }

    #[test]
    fn report_carries_schema_version_and_round_trips() {
        let stream = StreamConfig::replay();
        let registry = crate::metrics::MetricsRegistry::shared();
        let (engine, test) = trained_engine(EngineConfig {
            workers: 1,
            admission: AdmissionConfig::unbounded(),
            metrics: Some(Arc::clone(&registry)),
            ..EngineConfig::default()
        });
        let out = engine.run(&test, &stream);
        assert_eq!(
            as_u64(field(&out.report, &["schema_version"])),
            u64::from(crate::vmetrics::REPORT_SCHEMA_VERSION)
        );
        assert_eq!(
            field(&out.report, &["clock"]),
            &Value::Str("virtual".to_string())
        );
        // The report must survive a serialize/parse round trip with its
        // version intact — the drift guard for downstream consumers.
        let text = serde_json::to_string(&out.report).expect("serializable");
        let back: Value = serde_json::from_str(&text).expect("parseable");
        assert_eq!(
            as_u64(field(&back, &["schema_version"])),
            u64::from(crate::vmetrics::REPORT_SCHEMA_VERSION)
        );
        // A metrics registry on a virtual run absorbs the run's
        // counters; the tenant label rides on every series.
        let predicted = registry.counter(
            "rca_events_total",
            &[("outcome", "predicted"), ("tenant", "0")],
        );
        assert_eq!(predicted, test.len() as u64);
        crate::metrics::validate_prometheus(&registry.render_prometheus())
            .expect("well-formed Prometheus text");
    }

    #[test]
    fn failed_records_render_single_line_and_round_trip() {
        let record = EventRecord {
            seq: 3,
            incident_idx: 1,
            at: SimTime::from_secs(120),
            severity: Severity::Sev2,
            alert_type: AlertType::default(),
            tenant: TenantId(7),
            outcome: EventOutcome::Failed {
                reason: "[pipeline failure] quarantined: kills=2 attempts=2".to_string(),
            },
        };
        let line = record.log_line();
        assert_eq!(line.lines().count(), 1);
        assert!(line.contains("verdict=failed"));
        assert!(line.contains("[pipeline failure]"));
        let json = serde_json::to_string(&record).expect("serializable");
        let back: EventRecord = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, record);
        assert_eq!(back.log_line(), line);
    }
}
