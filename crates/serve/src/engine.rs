//! The multi-worker streaming engine.
//!
//! [`ServeEngine`] consumes a virtual-time alert stream and runs the full
//! RCACopilot pipeline — collection → summarization → embedding →
//! retrieval → prediction — concurrently across a pool of OS threads fed
//! by a bounded queue. Three design rules keep it honest:
//!
//! 1. **Plan on the virtual clock, execute on real threads.** Admission,
//!    shedding, degraded mode and retrieval visibility are all decided by
//!    a deterministic pre-pass over the stream (ex-ante costs, reference
//!    drain rate, infinite-server resolution times). Worker threads then
//!    execute the admitted work in any order the scheduler likes.
//! 2. **Commit in stream order.** A commit watermark advances over event
//!    sequence numbers; in [`IndexMode::Online`] a resolved incident is
//!    inserted into the incremental index exactly at its commit point, so
//!    index growth order never depends on thread interleaving.
//! 3. **Dispatch behind the watermark.** An event that is entitled to see
//!    historical entry `j` (because `j` resolved before the event
//!    arrived) is not handed to a worker until `j` has committed. Since
//!    entries that resolved *after* the event's arrival are filtered out
//!    at query time by `visible_from`, retrieval results — and therefore
//!    the prediction log — are byte-identical for every worker count.

use crate::admission::{self, AdmissionConfig, AdmissionInput, AdmissionPlan, Disposition};
use crate::cache::{fnv1a, MemoCache};
use crate::cost::{self, StageCosts, DEGRADED_SUMMARIZE_SECS};
use crate::stream::{self, StreamConfig, StreamEvent};
use crate::vmetrics::{simulate_pool, ExecStats, VirtualHistogram, VirtualJob};
use rcacopilot_core::retrieval::OnlineHistoricalIndex;
use rcacopilot_core::{CollectionStage, ContextSpec, HistoricalEntry, RcaCopilot, RcaPrediction};
use rcacopilot_simcloud::Incident;
use rcacopilot_telemetry::{AlertType, Severity, SimDuration, SimTime};
use serde_json::{json, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::thread;

/// Which historical index answers retrieval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// The pipeline's frozen training index — exactly the batch system.
    Frozen,
    /// An incremental index warm-started from the training set; each
    /// incident is inserted (with its post-resolution OCE label) once it
    /// resolves, so later incidents retrieve earlier streamed ones.
    Online,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Bound of the dispatch queue (≥ 1).
    pub queue_capacity: usize,
    /// Retrieval index mode.
    pub index_mode: IndexMode,
    /// Admission-control policy.
    pub admission: AdmissionConfig,
    /// Seed of the ex-ante cost model.
    pub cost_seed: u64,
    /// Bucket split threshold of the online index.
    pub max_cell: usize,
    /// Prompt-context configuration (must match the batch pipeline's for
    /// parity).
    pub spec: ContextSpec,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            queue_capacity: 64,
            index_mode: IndexMode::Frozen,
            admission: AdmissionConfig::default(),
            cost_seed: 11,
            max_cell: 64,
            spec: ContextSpec::default(),
        }
    }
}

/// What happened to one stream event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventOutcome {
    /// Rejected by admission control.
    Shed {
        /// Virtual backlog at the event's arrival.
        backlog_secs: u64,
    },
    /// Processed to a prediction.
    Predicted {
        /// The pipeline's answer.
        prediction: RcaPrediction,
        /// True when summarization was skipped under load.
        degraded: bool,
    },
}

/// The engine's record for one stream event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Stream sequence number.
    pub seq: usize,
    /// Index of the incident in the streamed slice.
    pub incident_idx: usize,
    /// Virtual arrival instant.
    pub at: SimTime,
    /// Alert severity.
    pub severity: Severity,
    /// Alert type.
    pub alert_type: AlertType,
    /// Outcome.
    pub outcome: EventOutcome,
}

impl EventRecord {
    /// Canonical one-line rendering; the concatenation of these lines is
    /// the engine's deterministic prediction log.
    pub fn log_line(&self) -> String {
        let head = format!(
            "seq={} inc={} at={} sev={} type={}",
            self.seq,
            self.incident_idx,
            self.at.as_secs(),
            self.severity.level(),
            self.alert_type,
        );
        match &self.outcome {
            EventOutcome::Shed { backlog_secs } => {
                format!("{head} verdict=shed backlog={backlog_secs}")
            }
            EventOutcome::Predicted {
                prediction,
                degraded,
            } => format!(
                "{head} verdict=predicted label={} unseen={} conf={:.6} compl={:.4} \
                 degraded={} demos={}",
                prediction.label,
                prediction.unseen,
                prediction.confidence,
                prediction.completeness,
                degraded,
                prediction.demo_categories.join(","),
            ),
        }
    }
}

/// Result of one engine run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Per-event records in stream order.
    pub records: Vec<EventRecord>,
    /// The deterministic prediction log (one line per event). Identical
    /// for every worker count and queue capacity.
    pub log: String,
    /// Virtual-time execution statistics for the configured worker count.
    pub exec: ExecStats,
    /// Full JSON report (stages, admission, caches, queue depths). Cache
    /// hit/miss counters depend on thread interleaving, so the report —
    /// unlike `log` — is not byte-stable across runs.
    pub report: Value,
}

/// A processed slot awaiting commit.
struct Slot {
    record: EventRecord,
    /// Entry to insert into the online index at commit time.
    entry: Option<(HistoricalEntry, SimTime)>,
}

/// Commit state: processed slots plus the in-order watermark.
struct CommitState {
    slots: Vec<Option<Slot>>,
    next: usize,
}

/// Memoization caches shared by the workers.
struct Caches {
    summary: MemoCache<String>,
    embed: MemoCache<Vec<f32>>,
}

/// Shared per-run context handed to workers.
struct RunCtx<'a> {
    incidents: &'a [Incident],
    events: &'a [StreamEvent],
    plan: &'a AdmissionPlan,
    resolve: &'a [Option<SimTime>],
    online: Option<&'a Mutex<OnlineHistoricalIndex>>,
    caches: &'a Caches,
}

/// The streaming serving engine around a trained pipeline.
#[derive(Debug)]
pub struct ServeEngine {
    copilot: RcaCopilot,
    stage: CollectionStage,
    config: EngineConfig,
}

impl ServeEngine {
    /// Wraps a trained pipeline with the standard (fault-free) collection
    /// stage.
    pub fn new(copilot: RcaCopilot, config: EngineConfig) -> Self {
        ServeEngine {
            copilot,
            stage: CollectionStage::standard(),
            config,
        }
    }

    /// The wrapped pipeline.
    pub fn copilot(&self) -> &RcaCopilot {
        &self.copilot
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Streams `incidents` through the engine and returns the records,
    /// the deterministic prediction log, and the virtual-time report.
    ///
    /// # Panics
    ///
    /// Panics if collection fails for an incident (the standard handler
    /// registry covers every alert type) or if a worker thread panics.
    pub fn run(&self, incidents: &[Incident], stream_config: &StreamConfig) -> ServeOutcome {
        let events = stream::schedule(incidents, stream_config);
        let n = events.len();
        let costs: Vec<StageCosts> = events
            .iter()
            .map(|e| cost::estimate(&incidents[e.incident_idx].alert, self.config.cost_seed))
            .collect();
        let inputs: Vec<AdmissionInput> = events
            .iter()
            .zip(&costs)
            .map(|(e, c)| AdmissionInput {
                at: e.at,
                severity: incidents[e.incident_idx].alert.severity,
                full_cost_secs: c.total(),
                degraded_cost_secs: c.degraded_total(),
            })
            .collect();
        let plan = admission::plan(&inputs, &self.config.admission);
        // Infinite-server resolution times: worker-independent, so index
        // visibility never depends on the pool size.
        let resolve: Vec<Option<SimTime>> = events
            .iter()
            .zip(&costs)
            .zip(&plan.dispositions)
            .map(|((e, c), d)| match d {
                Disposition::Shed => None,
                Disposition::Full => Some(e.at + SimDuration::from_secs(c.total())),
                Disposition::Degraded => Some(e.at + SimDuration::from_secs(c.degraded_total())),
            })
            .collect();
        // Dispatch watermark: event i may only run once every event j
        // that resolves at or before i's arrival has committed.
        let need: Vec<usize> = match self.config.index_mode {
            IndexMode::Frozen => vec![0; n],
            IndexMode::Online => (0..n)
                .map(|i| {
                    (0..i)
                        .rev()
                        .find(|&j| resolve[j].is_some_and(|r| r <= events[i].at))
                        .map_or(0, |j| j + 1)
                })
                .collect(),
        };

        let online: Option<Mutex<OnlineHistoricalIndex>> = match self.config.index_mode {
            IndexMode::Frozen => None,
            IndexMode::Online => Some(Mutex::new(OnlineHistoricalIndex::warm(
                self.copilot.index().entries(),
                self.config.max_cell,
            ))),
        };
        let caches = Caches {
            summary: MemoCache::new(),
            embed: MemoCache::new(),
        };
        let ctx = RunCtx {
            incidents,
            events: &events,
            plan: &plan,
            resolve: &resolve,
            online: online.as_ref(),
            caches: &caches,
        };

        let state = Mutex::new(CommitState {
            slots: (0..n).map(|_| None).collect(),
            next: 0,
        });
        let watermark = Condvar::new();
        // Shed events never reach a worker: record them up front so the
        // watermark can advance across them.
        {
            let mut st = state.lock().expect("commit state poisoned");
            for i in 0..n {
                if plan.dispositions[i] == Disposition::Shed {
                    st.slots[i] = Some(Slot {
                        record: self.shed_record(&ctx, i),
                        entry: None,
                    });
                }
            }
            advance(&mut st, ctx.online);
        }

        let workers = self.config.workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<usize>(self.config.queue_capacity.max(1));
        let rx = Mutex::new(rx);
        let queue_depth = AtomicUsize::new(0);
        let peak_queue = AtomicUsize::new(0);

        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = {
                        let guard = rx.lock().expect("dispatch queue poisoned");
                        match guard.recv() {
                            Ok(i) => i,
                            Err(_) => break,
                        }
                    };
                    queue_depth.fetch_sub(1, Ordering::Relaxed);
                    let slot = self.process_event(&ctx, i);
                    let mut st = state.lock().expect("commit state poisoned");
                    st.slots[i] = Some(slot);
                    advance(&mut st, ctx.online);
                    watermark.notify_all();
                });
            }
            // Dispatcher: feed admitted events in stream order, gated on
            // the commit watermark.
            for (i, &need_i) in need.iter().enumerate() {
                if plan.dispositions[i] == Disposition::Shed {
                    continue;
                }
                if need_i > 0 {
                    let mut st = state.lock().expect("commit state poisoned");
                    while st.next < need_i {
                        st = watermark.wait(st).expect("commit state poisoned");
                    }
                }
                let depth = queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                peak_queue.fetch_max(depth, Ordering::Relaxed);
                tx.send(i).expect("workers alive while dispatching");
            }
            drop(tx);
        });

        let records: Vec<EventRecord> = state
            .into_inner()
            .expect("commit state poisoned")
            .slots
            .into_iter()
            .map(|s| s.expect("every event committed").record)
            .collect();
        let mut log = String::new();
        for r in &records {
            log.push_str(&r.log_line());
            log.push('\n');
        }
        self.finish(
            records,
            log,
            &events,
            &costs,
            &plan,
            online.as_ref(),
            &caches,
            peak_queue.into_inner(),
        )
    }

    /// Builds the record for a shed event.
    fn shed_record(&self, ctx: &RunCtx<'_>, i: usize) -> EventRecord {
        let ev = ctx.events[i];
        let alert = &ctx.incidents[ev.incident_idx].alert;
        EventRecord {
            seq: ev.seq,
            incident_idx: ev.incident_idx,
            at: ev.at,
            severity: alert.severity,
            alert_type: alert.alert_type,
            outcome: EventOutcome::Shed {
                backlog_secs: ctx.plan.backlog_at_arrival[i],
            },
        }
    }

    /// Runs the full pipeline for one admitted event. Pure in the event
    /// and the deterministic plan — worker identity and timing never leak
    /// into the result.
    fn process_event(&self, ctx: &RunCtx<'_>, i: usize) -> Slot {
        let ev = ctx.events[i];
        let inc = &ctx.incidents[ev.incident_idx];
        let degraded = ctx.plan.dispositions[i] == Disposition::Degraded;
        let collected = self
            .stage
            .collect(inc)
            .unwrap_or_else(|e| panic!("collection failed for {}: {e}", inc.category));
        let raw_diag = collected.diagnostic_text();
        let content = fnv1a(raw_diag.as_bytes());
        let spec = &self.config.spec;
        let summary = if spec.diagnostic_info && spec.summarized {
            if degraded {
                truncated_summary(&raw_diag)
            } else {
                ctx.caches
                    .summary
                    .get_or_insert_with(content, || self.copilot.summarizer().summarize(&raw_diag))
            }
        } else {
            String::new()
        };
        let input_text = spec.render_parts(
            &collected.alert_info,
            &raw_diag,
            &summary,
            &collected.run.action_output_text(),
        );
        let query = ctx
            .caches
            .embed
            .get_or_insert_with(content, || self.copilot.embed_scaled(&raw_diag));
        let retrieval = &self.copilot.config().retrieval;
        let prediction = match ctx.online {
            None => self.copilot.predict_from_query(
                self.copilot.index(),
                &query,
                &input_text,
                ev.at,
                retrieval,
                &collected.run.degradation,
            ),
            Some(online) => {
                let snapshot = online.lock().expect("online index poisoned").snapshot();
                self.copilot.predict_from_query(
                    &snapshot,
                    &query,
                    &input_text,
                    ev.at,
                    retrieval,
                    &collected.run.degradation,
                )
            }
        };
        let entry = ctx.online.map(|_| {
            (
                HistoricalEntry {
                    id: i,
                    category: inc.category.clone(),
                    summary: input_text.clone(),
                    at: ev.at,
                    embedding: query.clone(),
                },
                ctx.resolve[i].expect("admitted events have a resolution time"),
            )
        });
        Slot {
            record: EventRecord {
                seq: ev.seq,
                incident_idx: ev.incident_idx,
                at: ev.at,
                severity: inc.alert.severity,
                alert_type: inc.alert.alert_type,
                outcome: EventOutcome::Predicted {
                    prediction,
                    degraded,
                },
            },
            entry,
        }
    }

    /// Assembles the virtual-time report and the final outcome.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        records: Vec<EventRecord>,
        log: String,
        events: &[StreamEvent],
        costs: &[StageCosts],
        plan: &AdmissionPlan,
        online: Option<&Mutex<OnlineHistoricalIndex>>,
        caches: &Caches,
        peak_queue: usize,
    ) -> ServeOutcome {
        let mut stage_hists = [
            VirtualHistogram::new(), // collect
            VirtualHistogram::new(), // summarize
            VirtualHistogram::new(), // embed
            VirtualHistogram::new(), // retrieve
            VirtualHistogram::new(), // predict
        ];
        let mut jobs: Vec<VirtualJob> = Vec::new();
        for (i, (e, c)) in events.iter().zip(costs).enumerate() {
            let service = match plan.dispositions[i] {
                Disposition::Shed => continue,
                Disposition::Full => {
                    stage_hists[1].record(c.summarize_secs);
                    c.total()
                }
                Disposition::Degraded => {
                    stage_hists[1].record(DEGRADED_SUMMARIZE_SECS);
                    c.degraded_total()
                }
            };
            stage_hists[0].record(c.collect_secs);
            stage_hists[2].record(c.embed_secs);
            stage_hists[3].record(c.retrieve_secs);
            stage_hists[4].record(c.predict_secs);
            jobs.push(VirtualJob {
                arrival_secs: e.at.as_secs(),
                service_secs: service,
            });
        }
        let exec = simulate_pool(&jobs, self.config.workers.max(1));
        let (sum_hits, sum_misses) = caches.summary.stats();
        let (emb_hits, emb_misses) = caches.embed.stats();
        let report = json!({
            "engine": {
                "workers": self.config.workers,
                "queue_capacity": self.config.queue_capacity,
                "index_mode": match self.config.index_mode {
                    IndexMode::Frozen => "frozen",
                    IndexMode::Online => "online",
                },
                "cost_seed": self.config.cost_seed,
            },
            "stream": {
                "events": events.len(),
                "admitted": plan.admitted(),
                "shed": plan.shed,
                "degraded": plan.degraded,
            },
            "admission": {
                "enabled": self.config.admission.enabled,
                "capacity_secs": self.config.admission.capacity_secs,
                "peak_backlog_secs": plan.peak_backlog_secs,
            },
            "stages": {
                "collect": stage_hists[0].to_json(),
                "summarize": stage_hists[1].to_json(),
                "embed": stage_hists[2].to_json(),
                "retrieve": stage_hists[3].to_json(),
                "predict": stage_hists[4].to_json(),
            },
            "exec": exec.to_json(),
            "caches": {
                "summary": { "hits": sum_hits, "misses": sum_misses },
                "embed": { "hits": emb_hits, "misses": emb_misses },
            },
            "queue": { "peak_depth": peak_queue },
            "online_index_len": online
                .map(|o| o.lock().expect("online index poisoned").len()),
        });
        ServeOutcome {
            records,
            log,
            exec,
            report,
        }
    }
}

/// Advances the commit watermark over contiguous finished slots,
/// inserting online entries in commit order (and publishing one epoch per
/// batch).
fn advance(st: &mut CommitState, online: Option<&Mutex<OnlineHistoricalIndex>>) {
    let mut inserted = false;
    while st.next < st.slots.len() {
        let Some(slot) = st.slots[st.next].as_mut() else {
            break;
        };
        if let Some((entry, visible_from)) = slot.entry.take() {
            if let Some(online) = online {
                online
                    .lock()
                    .expect("online index poisoned")
                    .insert(entry, visible_from);
                inserted = true;
            }
        }
        st.next += 1;
    }
    if inserted {
        if let Some(online) = online {
            online.lock().expect("online index poisoned").publish();
        }
    }
}

/// Cheap degraded-mode replacement for LLM summarization: the first 60
/// words of the raw diagnostics.
fn truncated_summary(raw_diag: &str) -> String {
    raw_diag
        .split_whitespace()
        .take(60)
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ArrivalModel;
    use rcacopilot_core::eval::PreparedDataset;
    use rcacopilot_core::pipeline::RcaCopilotConfig;
    use rcacopilot_embed::{FastTextConfig, FeatureExtractor};
    use rcacopilot_simcloud::noise::NoiseProfile;
    use rcacopilot_simcloud::{generate_dataset, CampaignConfig, IncidentDataset, Topology};

    /// Looks up a (possibly nested) field of a JSON report map.
    fn field<'a>(v: &'a Value, path: &[&str]) -> &'a Value {
        let mut cur = v;
        for key in path {
            cur = cur
                .as_map()
                .expect("report node is a map")
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("report field {key} missing"));
        }
        cur
    }

    /// Unwraps an unsigned JSON number.
    fn as_u64(v: &Value) -> u64 {
        match v {
            Value::U64(n) => *n,
            Value::I64(n) => *n as u64,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn dataset() -> IncidentDataset {
        generate_dataset(&CampaignConfig {
            seed: 5,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile {
                routine_logs: 2,
                herring_logs: 1,
                healthy_traces: 1,
                unrelated_failure: false,
                bystander_anomalies: 1,
            },
        })
    }

    fn quick_config() -> RcaCopilotConfig {
        RcaCopilotConfig {
            embedding: FastTextConfig {
                dim: 24,
                epochs: 8,
                lr: 0.4,
                features: FeatureExtractor {
                    buckets: 1 << 12,
                    ..FeatureExtractor::default()
                },
                ..FastTextConfig::default()
            },
            ..RcaCopilotConfig::default()
        }
    }

    fn trained_engine(config: EngineConfig) -> (ServeEngine, Vec<Incident>) {
        let dataset = dataset();
        let split = dataset.split(7, 0.6);
        let prepared = PreparedDataset::prepare(&dataset, &split);
        let spec = config.spec;
        let copilot = RcaCopilot::train(&prepared.train_examples(&spec), quick_config());
        let test: Vec<Incident> = split
            .test
            .iter()
            .take(24)
            .map(|&i| dataset.incidents()[i].clone())
            .collect();
        (ServeEngine::new(copilot, config), test)
    }

    #[test]
    fn frozen_replay_log_is_identical_across_worker_counts() {
        let stream = StreamConfig::replay();
        let (engine1, test) = trained_engine(EngineConfig {
            workers: 1,
            admission: AdmissionConfig::unbounded(),
            ..EngineConfig::default()
        });
        let out1 = engine1.run(&test, &stream);
        let (engine4, test4) = trained_engine(EngineConfig {
            workers: 4,
            queue_capacity: 2,
            admission: AdmissionConfig::unbounded(),
            ..EngineConfig::default()
        });
        assert_eq!(test.len(), test4.len());
        let out4 = engine4.run(&test4, &stream);
        assert_eq!(out1.log, out4.log);
        assert_eq!(out1.records.len(), test.len());
        assert!(out1
            .records
            .iter()
            .all(|r| matches!(r.outcome, EventOutcome::Predicted { .. })));
    }

    #[test]
    fn online_mode_inserts_resolved_incidents_and_stays_deterministic() {
        let stream = StreamConfig {
            seed: 2,
            arrivals: ArrivalModel::Poisson { mean_gap_secs: 900 },
            reraise_prob: 0.25,
        };
        let make = |workers| {
            let (engine, test) = trained_engine(EngineConfig {
                workers,
                index_mode: IndexMode::Online,
                admission: AdmissionConfig::unbounded(),
                ..EngineConfig::default()
            });
            (engine.run(&test, &stream), engine)
        };
        let (out1, engine1) = make(1);
        let (out3, _) = make(3);
        assert_eq!(out1.log, out3.log, "online log must not depend on workers");
        let train_len = engine1.copilot().history_len();
        let index_len = as_u64(field(&out1.report, &["online_index_len"])) as usize;
        assert_eq!(index_len, train_len + out1.records.len());
        // Flapping re-raises hit the memo caches.
        let hits = as_u64(field(&out1.report, &["caches", "embed", "hits"]));
        assert!(hits > 0, "duplicate alerts should hit the embed cache");
    }

    #[test]
    fn storm_with_admission_sheds_and_reports() {
        let stream = StreamConfig {
            seed: 8,
            arrivals: ArrivalModel::Bursty {
                mean_gap_secs: 240,
                burst_prob: 0.6,
                burst_len: 8,
                burst_gap_secs: 5,
            },
            reraise_prob: 0.1,
        };
        let (engine, test) = trained_engine(EngineConfig {
            workers: 2,
            admission: AdmissionConfig {
                capacity_secs: 900,
                ..AdmissionConfig::default()
            },
            ..EngineConfig::default()
        });
        let out = engine.run(&test, &stream);
        let shed = out
            .records
            .iter()
            .filter(|r| matches!(r.outcome, EventOutcome::Shed { .. }))
            .count();
        assert!(shed > 0, "a storm against a small capacity must shed");
        assert_eq!(
            as_u64(field(&out.report, &["stream", "shed"])) as usize,
            shed
        );
        assert!(out.exec.makespan_secs > 0);
        assert!(out.log.contains("verdict=shed"));
    }
}
