//! The observability plane's metrics registry and exporters.
//!
//! [`MetricsRegistry`] is a process-shareable registry of labeled
//! counters and fixed-bucket histograms — the structured successor to
//! the ad-hoc [`crate::vmetrics`] counters, which the engine bridges in
//! at report time ([`crate::vmetrics::FaultCounters::export_to`]). Two
//! exporters render the same registry:
//!
//! - [`MetricsRegistry::render_prometheus`] — Prometheus text exposition
//!   format (`# TYPE` headers, `_bucket{le=…}`/`_sum`/`_count` series),
//!   served by the tiny blocking [`MetricsServer`] in real mode;
//! - [`MetricsRegistry::render_json`] — a versioned JSON document
//!   ([`METRICS_SCHEMA_VERSION`]), dumped to a file in DES mode via
//!   [`MetricsRegistry::dump_json`].
//!
//! Output ordering is stable (sorted by series name, then label set), so
//! two renders of the same registry state are byte-identical. Label
//! values are escaped per the exposition format.
//!
//! Storage is **striped by metric name**: a metric's series all live in
//! one of [`STRIPES`] independently locked shards, picked by FNV-1a of
//! the name, so a thousand tenant engines exporting disjoint metrics (or
//! the same metric family, which serializes only that family) never
//! convoy on one registry-wide mutex. Renders merge the stripes into one
//! sorted view, so the striping is invisible in every export.
//!
//! For label dimensions whose value space scales with the fleet — the
//! `tenant` label on a thousand-tenant plane — a **cardinality guard**
//! ([`MetricsRegistry::limit_label_values`]) caps the number of distinct
//! values a label may take; excess values fold into the single
//! [`OVERFLOW_LABEL_VALUE`] series, keeping render size and memory
//! bounded no matter how many tenants report.

use crate::supervisor::lock_recovered_plain;
use serde_json::{json, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Schema version of [`MetricsRegistry::render_json`]; bumped whenever a
/// field changes meaning, so downstream consumers can pin parsing. The
/// legacy engine report carries its own independent version
/// ([`crate::vmetrics::REPORT_SCHEMA_VERSION`]).
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Default histogram bucket upper bounds, in seconds — wall-clock
/// oriented (0.5 ms … 10 s), suitable for the real-mode stage timings.
pub const DEFAULT_BUCKETS: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// Bucket bounds for *virtual*-seconds histograms (stage costs run
/// 1–300 virtual seconds).
pub const VIRTUAL_SECS_BUCKETS: &[f64] = &[
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 150.0, 250.0, 500.0, 1000.0,
];

/// A label set: `(name, value)` pairs. Order is immaterial — keys are
/// normalized (sorted by label name) before use, so two call sites
/// naming the same labels in different orders hit the same series.
pub type Labels<'a> = &'a [(&'a str, &'a str)];

fn label_key(labels: Labels<'_>) -> String {
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = String::new();
    for (i, (k, v)) in sorted.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out
}

/// Escapes a label value per the Prometheus exposition format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One fixed-bucket histogram: cumulative counts per upper bound, plus
/// sum and count for mean derivation.
#[derive(Debug, Clone)]
pub struct FixedHistogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl FixedHistogram {
    fn new(bounds: &[f64]) -> Self {
        FixedHistogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1], // +1 for +Inf
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Cumulative count at each bound (the Prometheus `le` semantics),
    /// ending with the `+Inf` bucket (== total count).
    pub fn cumulative(&self) -> Vec<(String, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            let le = match self.bounds.get(i) {
                Some(b) => format_f64(*b),
                None => "+Inf".to_string(),
            };
            out.push((le, acc));
        }
        out
    }
}

/// Renders an `f64` the way Prometheus expects (no trailing `.0` loss,
/// no exponent for the magnitudes used here).
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Number of independently locked storage shards in a
/// [`MetricsRegistry`]. A metric name maps to exactly one stripe, so
/// per-family ordering needs no cross-stripe coordination.
pub const STRIPES: usize = 16;

/// The label value excess values fold into once a label's
/// [cardinality cap](MetricsRegistry::limit_label_values) is reached.
pub const OVERFLOW_LABEL_VALUE: &str = "overflow";

/// 64-bit FNV-1a; the stripe selector.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[derive(Debug, Default)]
struct Inner {
    /// `(metric name, rendered label set) → value`.
    counters: BTreeMap<(String, String), u64>,
    /// `(metric name, rendered label set) → histogram`.
    histograms: BTreeMap<(String, String), FixedHistogram>,
    /// Per-metric bucket bounds registered ahead of observation.
    bounds: BTreeMap<String, Vec<f64>>,
    /// Per-metric help strings.
    help: BTreeMap<String, String>,
}

/// Cardinality state of one guarded label: the cap and the distinct
/// values admitted so far.
#[derive(Debug)]
struct LabelGuard {
    cap: usize,
    seen: BTreeSet<String>,
}

impl LabelGuard {
    /// Maps `value` under the cap: `None` keeps it as-is, `Some` is the
    /// replacement. A value once admitted stays admitted (stable series
    /// identity); `admit` distinguishes write paths (which may consume a
    /// cap slot) from read paths (which must not).
    fn map(&mut self, value: &str, admit: bool) -> Option<String> {
        if self.seen.contains(value) {
            return None;
        }
        if self.seen.len() < self.cap {
            if admit {
                self.seen.insert(value.to_string());
            }
            return None;
        }
        Some(OVERFLOW_LABEL_VALUE.to_string())
    }
}

/// A registry of labeled counters and fixed-bucket histograms.
#[derive(Debug)]
pub struct MetricsRegistry {
    stripes: Vec<Mutex<Inner>>,
    guards: Mutex<BTreeMap<String, LabelGuard>>,
    /// Fast path: skip the guard lock entirely until a cap is installed.
    guarded: AtomicBool,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            stripes: (0..STRIPES).map(|_| Mutex::new(Inner::default())).collect(),
            guards: Mutex::new(BTreeMap::new()),
            guarded: AtomicBool::new(false),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// An empty registry behind an [`Arc`], ready to share with an
    /// engine config and a [`MetricsServer`].
    pub fn shared() -> Arc<Self> {
        Arc::new(MetricsRegistry::new())
    }

    /// The stripe holding every series of metric `name`.
    fn stripe(&self, name: &str) -> &Mutex<Inner> {
        &self.stripes[(fnv1a(name.as_bytes()) % STRIPES as u64) as usize]
    }

    /// Caps the label `label` at `cap` distinct values registry-wide;
    /// values beyond the cap fold into [`OVERFLOW_LABEL_VALUE`]. Values
    /// can be pre-admitted deterministically with
    /// [`MetricsRegistry::admit_label_value`] — otherwise first-write
    /// wins. Installing a cap of 0 folds every value. Re-installing
    /// replaces the cap but keeps already-admitted values.
    pub fn limit_label_values(&self, label: &str, cap: usize) {
        let mut guards = lock_recovered_plain(&self.guards);
        guards
            .entry(label.to_string())
            .and_modify(|g| g.cap = cap)
            .or_insert_with(|| LabelGuard {
                cap,
                seen: BTreeSet::new(),
            });
        self.guarded.store(true, Ordering::Release);
    }

    /// Pre-admits `value` for a guarded `label`, consuming one cap slot;
    /// returns whether the value was (or already is) admitted. A
    /// multi-tenant plane admits its tenant ids in slot order before
    /// shard workers race, so which tenants keep dedicated series is
    /// deterministic under any interleaving. No-op (`true`) when the
    /// label has no guard.
    pub fn admit_label_value(&self, label: &str, value: &str) -> bool {
        if !self.guarded.load(Ordering::Acquire) {
            return true;
        }
        let mut guards = lock_recovered_plain(&self.guards);
        match guards.get_mut(label) {
            Some(guard) => guard.map(value, true).is_none(),
            None => true,
        }
    }

    /// Renders the series key for `labels`, folding guarded label values
    /// past their cap into [`OVERFLOW_LABEL_VALUE`].
    fn series_key(&self, labels: Labels<'_>, admit: bool) -> String {
        if !self.guarded.load(Ordering::Acquire) {
            return label_key(labels);
        }
        let mut guards = lock_recovered_plain(&self.guards);
        let mapped: Vec<(&str, String)> = labels
            .iter()
            .map(|&(k, v)| {
                let value = guards
                    .get_mut(k)
                    .and_then(|g| g.map(v, admit))
                    .unwrap_or_else(|| v.to_string());
                (k, value)
            })
            .collect();
        let pairs: Vec<(&str, &str)> = mapped.iter().map(|(k, v)| (*k, v.as_str())).collect();
        label_key(&pairs)
    }

    /// Sets the `# HELP` string for a metric.
    pub fn describe(&self, name: &str, help: &str) {
        let mut inner = lock_recovered_plain(self.stripe(name));
        inner.help.insert(name.to_string(), help.to_string());
    }

    /// Registers custom bucket bounds for a histogram metric; must be
    /// called before the first `observe` of that metric to take effect.
    pub fn register_buckets(&self, name: &str, bounds: &[f64]) {
        let mut inner = lock_recovered_plain(self.stripe(name));
        inner.bounds.insert(name.to_string(), bounds.to_vec());
    }

    /// Adds `delta` to the counter `name{labels}`.
    pub fn inc_counter_by(&self, name: &str, labels: Labels<'_>, delta: u64) {
        let key = self.series_key(labels, true);
        let mut inner = lock_recovered_plain(self.stripe(name));
        *inner.counters.entry((name.to_string(), key)).or_insert(0) += delta;
    }

    /// Increments the counter `name{labels}` by one.
    pub fn inc_counter(&self, name: &str, labels: Labels<'_>) {
        self.inc_counter_by(name, labels, 1);
    }

    /// Records `value` (seconds) into the histogram `name{labels}`,
    /// using the metric's registered bounds or [`DEFAULT_BUCKETS`].
    pub fn observe(&self, name: &str, labels: Labels<'_>, value: f64) {
        let key = self.series_key(labels, true);
        let mut inner = lock_recovered_plain(self.stripe(name));
        let bounds = inner
            .bounds
            .get(name)
            .cloned()
            .unwrap_or_else(|| DEFAULT_BUCKETS.to_vec());
        inner
            .histograms
            .entry((name.to_string(), key))
            .or_insert_with(|| FixedHistogram::new(&bounds))
            .observe(value);
    }

    /// Reads a counter back (0 when never incremented) — for tests and
    /// report assembly.
    pub fn counter(&self, name: &str, labels: Labels<'_>) -> u64 {
        let key = self.series_key(labels, false);
        let inner = lock_recovered_plain(self.stripe(name));
        inner
            .counters
            .get(&(name.to_string(), key))
            .copied()
            .unwrap_or(0)
    }

    /// Total observation count of a histogram (0 when absent).
    pub fn histogram_count(&self, name: &str, labels: Labels<'_>) -> u64 {
        let key = self.series_key(labels, false);
        let inner = lock_recovered_plain(self.stripe(name));
        inner
            .histograms
            .get(&(name.to_string(), key))
            .map_or(0, FixedHistogram::count)
    }

    /// One sorted view over all stripes — renders see the registry as if
    /// it were a single map, so striping never changes export bytes.
    fn merged(&self) -> Inner {
        let mut all = Inner::default();
        for stripe in &self.stripes {
            let inner = lock_recovered_plain(stripe);
            all.counters
                .extend(inner.counters.iter().map(|(k, v)| (k.clone(), *v)));
            all.histograms
                .extend(inner.histograms.iter().map(|(k, v)| (k.clone(), v.clone())));
            all.help
                .extend(inner.help.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        all
    }

    /// Renders the registry in Prometheus text exposition format, with
    /// stable ordering (sorted by series name, then label set).
    pub fn render_prometheus(&self) -> String {
        let inner = self.merged();
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for ((name, labels), value) in &inner.counters {
            if last_name != Some(name.as_str()) {
                if let Some(help) = inner.help.get(name) {
                    let _ = writeln!(out, "# HELP {name} {help}");
                }
                let _ = writeln!(out, "# TYPE {name} counter");
                last_name = Some(name.as_str());
            }
            if labels.is_empty() {
                let _ = writeln!(out, "{name} {value}");
            } else {
                let _ = writeln!(out, "{name}{{{labels}}} {value}");
            }
        }
        let mut last_name: Option<&str> = None;
        for ((name, labels), hist) in &inner.histograms {
            if last_name != Some(name.as_str()) {
                if let Some(help) = inner.help.get(name) {
                    let _ = writeln!(out, "# HELP {name} {help}");
                }
                let _ = writeln!(out, "# TYPE {name} histogram");
                last_name = Some(name.as_str());
            }
            let sep = if labels.is_empty() { "" } else { "," };
            for (le, cum) in hist.cumulative() {
                let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cum}");
            }
            if labels.is_empty() {
                let _ = writeln!(out, "{name}_sum {}", format_f64(hist.sum()));
                let _ = writeln!(out, "{name}_count {}", hist.count());
            } else {
                let _ = writeln!(out, "{name}_sum{{{labels}}} {}", format_f64(hist.sum()));
                let _ = writeln!(out, "{name}_count{{{labels}}} {}", hist.count());
            }
        }
        out
    }

    /// Renders the registry as a versioned JSON document.
    pub fn render_json(&self) -> Value {
        let inner = self.merged();
        let counters: Vec<Value> = inner
            .counters
            .iter()
            .map(|((name, labels), value)| {
                json!({ "name": name, "labels": labels, "value": *value })
            })
            .collect();
        let histograms: Vec<Value> = inner
            .histograms
            .iter()
            .map(|((name, labels), hist)| {
                let buckets: Vec<Value> = hist
                    .cumulative()
                    .into_iter()
                    .map(|(le, cum)| json!({ "le": le, "count": cum }))
                    .collect();
                json!({
                    "name": name,
                    "labels": labels,
                    "count": hist.count(),
                    "sum": hist.sum(),
                    "buckets": buckets,
                })
            })
            .collect();
        json!({
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": counters,
            "histograms": histograms,
        })
    }

    /// Writes the JSON export to `path` — the DES-mode exporter.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn dump_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let text = serde_json::to_string_pretty(&self.render_json())
            .expect("registry JSON is serializable");
        std::fs::write(path, text)
    }
}

/// Checks that `text` is non-empty, well-formed Prometheus exposition
/// output; returns the number of sample lines.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no value separator: {line:?}"))?;
        if value.parse::<f64>().is_err() {
            return Err(format!("bad sample value {value:?}: {line:?}"));
        }
        let name = series.split('{').next().unwrap_or("");
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            return Err(format!("bad metric name {name:?}: {line:?}"));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(format!("unterminated label set: {line:?}"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no sample lines".to_string());
    }
    Ok(samples)
}

/// A tiny blocking HTTP endpoint serving the registry — the real-mode
/// exporter. Routes: `/metrics` (Prometheus text) and `/metrics.json`.
/// One accept loop on one thread; good for a scrape every few seconds,
/// which is all a bench or CI check needs.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serves `registry` until [`MetricsServer::shutdown`] or drop.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn spawn(registry: Arc<MetricsRegistry>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                let Ok(mut conn) = conn else { continue };
                let _ = serve_one(&mut conn, &registry);
            }
        });
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Answers one HTTP exchange on `conn`.
fn serve_one(conn: &mut TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    conn.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    let mut buf = [0u8; 1024];
    let n = conn.read(&mut buf)?;
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            registry.render_prometheus(),
        ),
        "/metrics.json" => (
            "200 OK",
            "application/json",
            serde_json::to_string_pretty(&registry.render_json())
                .expect("registry JSON is serializable"),
        ),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    conn.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let reg = MetricsRegistry::new();
        reg.inc_counter(
            "rca_events_total",
            &[("tenant", "0"), ("outcome", "predicted")],
        );
        reg.inc_counter(
            "rca_events_total",
            &[("tenant", "0"), ("outcome", "predicted")],
        );
        reg.inc_counter("rca_events_total", &[("tenant", "1"), ("outcome", "shed")]);
        assert_eq!(
            reg.counter(
                "rca_events_total",
                &[("tenant", "0"), ("outcome", "predicted")]
            ),
            2
        );
        assert_eq!(
            reg.counter("rca_events_total", &[("tenant", "1"), ("outcome", "shed")]),
            1
        );
        assert_eq!(reg.counter("rca_events_total", &[("tenant", "9")]), 0);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let reg = MetricsRegistry::new();
        reg.register_buckets("h", &[1.0, 10.0]);
        for v in [0.5, 0.7, 5.0, 100.0] {
            reg.observe("h", &[("stage", "embed")], v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE h histogram"));
        assert!(text.contains("h_bucket{stage=\"embed\",le=\"1.0\"} 2"));
        assert!(text.contains("h_bucket{stage=\"embed\",le=\"10.0\"} 3"));
        assert!(text.contains("h_bucket{stage=\"embed\",le=\"+Inf\"} 4"));
        assert!(text.contains("h_count{stage=\"embed\"} 4"));
        assert_eq!(reg.histogram_count("h", &[("stage", "embed")]), 4);
    }

    #[test]
    fn prometheus_render_is_stable_and_validates() {
        let reg = MetricsRegistry::new();
        reg.describe("rca_faults_total", "Fault counters by kind.");
        reg.inc_counter_by("rca_faults_total", &[("kind", "worker_panics")], 3);
        reg.inc_counter("rca_stage_started_total", &[("stage", "collect")]);
        reg.observe("rca_stage_seconds", &[("stage", "collect")], 0.003);
        let a = reg.render_prometheus();
        let b = reg.render_prometheus();
        assert_eq!(a, b, "renders of the same state are byte-identical");
        assert!(a.contains("# HELP rca_faults_total Fault counters by kind."));
        let samples = validate_prometheus(&a).expect("well-formed");
        // 2 counters + (14 default buckets + Inf) + sum + count.
        assert_eq!(samples, 2 + DEFAULT_BUCKETS.len() + 1 + 2);
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("# only comments\n").is_err());
        assert!(validate_prometheus("metric_no_value\n").is_err());
        assert!(validate_prometheus("1bad_name 3\n").is_err());
        assert!(validate_prometheus("metric{unterminated 3\n").is_err());
        assert!(validate_prometheus("ok_metric 3\nok_metric{a=\"b\"} 4.5\n").is_ok());
    }

    #[test]
    fn json_export_round_trips_with_schema_version() {
        let reg = MetricsRegistry::new();
        reg.inc_counter("c_total", &[("tenant", "7")]);
        reg.observe("h_seconds", &[], 0.25);
        let text = serde_json::to_string(&reg.render_json()).expect("serializable");
        let back: Value = serde_json::from_str(&text).expect("parses back");
        let map = back.as_map().expect("top-level map");
        let version = map
            .iter()
            .find(|(k, _)| k == "schema_version")
            .map(|(_, v)| v)
            .expect("schema_version present");
        assert_eq!(*version, Value::U64(u64::from(METRICS_SCHEMA_VERSION)));
        let counters = map
            .iter()
            .find(|(k, _)| k == "counters")
            .and_then(|(_, v)| v.as_seq())
            .expect("counters list");
        assert_eq!(counters.len(), 1);
    }

    #[test]
    fn striped_storage_renders_identically_to_a_flat_map() {
        // Metric names chosen to land on several stripes; the render must
        // still be globally sorted by (name, label set).
        let reg = MetricsRegistry::new();
        for name in ["z_total", "a_total", "m_total", "rca_events_total"] {
            reg.inc_counter(name, &[("tenant", "3")]);
            reg.inc_counter(name, &[("tenant", "1")]);
        }
        let text = reg.render_prometheus();
        let names: Vec<&str> = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| l.split('{').next().unwrap_or(""))
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "merged render is name-sorted");
        validate_prometheus(&text).expect("well-formed");
        assert_eq!(reg.counter("a_total", &[("tenant", "1")]), 1);
    }

    #[test]
    fn cardinality_guard_folds_excess_label_values_into_overflow() {
        let reg = MetricsRegistry::new();
        reg.limit_label_values("tenant", 2);
        for tenant in ["1", "2", "3", "4"] {
            reg.inc_counter("rca_events_total", &[("tenant", tenant)]);
            reg.observe("rca_stage_seconds", &[("tenant", tenant)], 0.01);
        }
        // First two distinct values keep their series; the rest fold.
        assert_eq!(reg.counter("rca_events_total", &[("tenant", "1")]), 1);
        assert_eq!(reg.counter("rca_events_total", &[("tenant", "2")]), 1);
        assert_eq!(
            reg.counter("rca_events_total", &[("tenant", OVERFLOW_LABEL_VALUE)]),
            2
        );
        // Reading a folded value routes to the overflow series too.
        assert_eq!(reg.counter("rca_events_total", &[("tenant", "3")]), 2);
        assert_eq!(
            reg.histogram_count("rca_stage_seconds", &[("tenant", OVERFLOW_LABEL_VALUE)]),
            2
        );
        // Unguarded labels are untouched.
        reg.inc_counter("other_total", &[("kind", "x")]);
        assert_eq!(reg.counter("other_total", &[("kind", "x")]), 1);
    }

    #[test]
    fn pre_admitted_label_values_win_cap_slots_deterministically() {
        let reg = MetricsRegistry::new();
        reg.limit_label_values("tenant", 2);
        assert!(reg.admit_label_value("tenant", "7"));
        assert!(reg.admit_label_value("tenant", "9"));
        assert!(!reg.admit_label_value("tenant", "11"), "cap exhausted");
        assert!(reg.admit_label_value("tenant", "7"), "re-admit is stable");
        // A write from a late tenant folds even though it arrived first.
        reg.inc_counter("rca_events_total", &[("tenant", "11")]);
        reg.inc_counter("rca_events_total", &[("tenant", "7")]);
        assert_eq!(
            reg.counter("rca_events_total", &[("tenant", OVERFLOW_LABEL_VALUE)]),
            1
        );
        assert_eq!(reg.counter("rca_events_total", &[("tenant", "7")]), 1);
        // Reads never consume cap slots.
        let fresh = MetricsRegistry::new();
        fresh.limit_label_values("tenant", 1);
        assert_eq!(fresh.counter("c_total", &[("tenant", "5")]), 0);
        assert!(fresh.admit_label_value("tenant", "6"), "read took no slot");
    }

    #[test]
    fn http_endpoint_serves_both_formats() {
        let reg = MetricsRegistry::shared();
        reg.inc_counter("rca_events_total", &[("tenant", "0")]);
        let server = MetricsServer::spawn(Arc::clone(&reg), "127.0.0.1:0").expect("bind");
        let addr = server.addr();
        let fetch = |path: &str| {
            let mut conn = TcpStream::connect(addr).expect("connect");
            conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .expect("write");
            let mut body = String::new();
            conn.read_to_string(&mut body).expect("read");
            body
        };
        let prom = fetch("/metrics");
        assert!(prom.starts_with("HTTP/1.1 200 OK"));
        let payload = prom.split("\r\n\r\n").nth(1).expect("body");
        validate_prometheus(payload).expect("prometheus body validates");
        let json_body = fetch("/metrics.json");
        assert!(json_body.contains("schema_version"));
        assert!(fetch("/nope").starts_with("HTTP/1.1 404"));
        server.shutdown();
    }
}
