//! The RCACopilot incident-handler engine (paper §4.1).
//!
//! An incident handler is a decision-tree workflow attached to one alert
//! type. Its nodes are reusable *actions* of three kinds:
//!
//! - **Scope switching** — widen or narrow the data-collection scope
//!   (forest ↔ machine), steering the "information spectrum".
//! - **Query** — run a [`rcacopilot_telemetry::query::Query`] against the
//!   incident's telemetry snapshot; the output (a key-value table plus
//!   text) both becomes diagnostic information and drives control flow via
//!   serializable [`action::Condition`]s on the result.
//! - **Mitigation** — suggest a mitigation step ("restart service",
//!   "engage networking team") and stop.
//!
//! Handlers are data, not code: they serialize to JSON and live in a
//! versioned [`registry::HandlerRegistry`], mirroring the paper's
//! database-backed handler store that OCEs edit through a web UI.
//! [`executor`] is the resilient execution engine — per-action deadlines,
//! bounded-backoff retries, per-source circuit breakers, and a
//! whole-handler time budget over a deterministic fault injector — that
//! both the fault-free and degraded paths run on.
//! [`library::standard_handlers`] builds the handler set for the simulated
//! transport service's ten alert types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod executor;
pub mod handler;
pub mod library;
pub mod registry;

pub use action::{Action, ActionNode, Condition, ScopeDirection};
pub use executor::{RetryPolicy, RunDegradation};
pub use handler::{Handler, HandlerError, HandlerRun};
pub use library::standard_handlers;
pub use registry::HandlerRegistry;
