//! Handler actions and the conditions that route control flow.

use rcacopilot_telemetry::query::{Query, QueryResult};
use serde::{Deserialize, Serialize};

/// Direction of a scope-switching action (paper §4.1.2, Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScopeDirection {
    /// Machine → forest: take a more holistic view.
    Widen,
    /// Forest → the machine with the most error-level log records in the
    /// window: zoom in on the noisiest machine.
    NarrowToNoisiestMachine,
}

/// One of the three action kinds a handler node can carry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Adjust the data-collection scope.
    ScopeSwitch(ScopeDirection),
    /// Collect diagnostic information from one source.
    Query {
        /// The query to run at the current scope.
        query: Query,
        /// How far back (seconds) from the alert to look.
        lookback_secs: u64,
    },
    /// Suggest a mitigation step and stop this branch.
    Mitigate {
        /// The suggested step, e.g. `Restart the transport service`.
        suggestion: String,
    },
}

/// A serializable predicate over a [`QueryResult`], used to pick the next
/// node. Edges are evaluated in order; the first matching edge wins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// Always matches (unconditional edge / fallback).
    Always,
    /// Matches when the row `key` parses as a number strictly greater
    /// than `threshold`. A missing or unparsable row does not match.
    RowGt {
        /// Row key to inspect.
        key: String,
        /// Numeric threshold.
        threshold: f64,
    },
    /// Matches when the row `key` equals `value` exactly.
    RowEq {
        /// Row key to inspect.
        key: String,
        /// Expected value.
        value: String,
    },
    /// Matches when the result's free text (or any row value) contains
    /// `needle`.
    TextContains {
        /// Substring looked for.
        needle: String,
    },
}

impl Condition {
    /// Evaluates the condition against the most recent query result.
    ///
    /// Non-query actions produce an empty result; only [`Condition::Always`]
    /// matches it.
    pub fn matches(&self, result: &QueryResult) -> bool {
        match self {
            Condition::Always => true,
            Condition::RowGt { key, threshold } => result
                .row(key)
                .and_then(|v| v.parse::<f64>().ok())
                .is_some_and(|v| v > *threshold),
            Condition::RowEq { key, value } => result.row(key) == Some(value.as_str()),
            Condition::TextContains { needle } => {
                result.text.contains(needle.as_str())
                    || result
                        .rows
                        .iter()
                        .any(|(k, v)| k.contains(needle.as_str()) || v.contains(needle.as_str()))
            }
        }
    }
}

/// One node of a handler's decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionNode {
    /// Node id, unique within the handler.
    pub id: u32,
    /// Human-readable node name (shown in the handler-construction UI and
    /// recorded in the executed path).
    pub name: String,
    /// The action performed at this node.
    pub action: Action,
    /// Outgoing edges: `(condition, target node id)`, evaluated in order.
    /// An empty list ends execution after this node.
    pub edges: Vec<(Condition, u32)>,
}

impl ActionNode {
    /// Creates a node.
    pub fn new(id: u32, name: impl Into<String>, action: Action) -> Self {
        ActionNode {
            id,
            name: name.into(),
            action,
            edges: Vec::new(),
        }
    }

    /// Adds an outgoing edge; returns `self` for chaining.
    pub fn edge(mut self, condition: Condition, target: u32) -> Self {
        self.edges.push((condition, target));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> QueryResult {
        let mut r = QueryResult::titled("Queue submission statistics");
        r.push_row("Total queued messages", "5123");
        r.push_row("Queues over limit", "2");
        r.push_line("NAMPR00MB0001: length 5000 (limit 2000), oldest 4000s");
        r
    }

    #[test]
    fn row_gt_parses_numbers() {
        let r = result();
        assert!(Condition::RowGt {
            key: "Total queued messages".into(),
            threshold: 5000.0
        }
        .matches(&r));
        assert!(!Condition::RowGt {
            key: "Total queued messages".into(),
            threshold: 6000.0
        }
        .matches(&r));
        // Missing row never matches.
        assert!(!Condition::RowGt {
            key: "nope".into(),
            threshold: 0.0
        }
        .matches(&r));
    }

    #[test]
    fn row_eq_and_text_contains() {
        let r = result();
        assert!(Condition::RowEq {
            key: "Queues over limit".into(),
            value: "2".into()
        }
        .matches(&r));
        assert!(Condition::TextContains {
            needle: "oldest 4000s".into()
        }
        .matches(&r));
        assert!(Condition::TextContains {
            needle: "limit".into()
        }
        .matches(&r));
        assert!(!Condition::TextContains {
            needle: "WinSock".into()
        }
        .matches(&r));
    }

    #[test]
    fn always_matches_empty_result() {
        let empty = QueryResult::default();
        assert!(Condition::Always.matches(&empty));
        assert!(!Condition::TextContains { needle: "x".into() }.matches(&empty));
    }

    #[test]
    fn node_builder_chains_edges() {
        let n = ActionNode::new(
            0,
            "Check queue",
            Action::Query {
                query: Query::QueueStats {
                    queue: "submission".into(),
                },
                lookback_secs: 3600,
            },
        )
        .edge(
            Condition::RowGt {
                key: "Queues over limit".into(),
                threshold: 0.0,
            },
            1,
        )
        .edge(Condition::Always, 2);
        assert_eq!(n.edges.len(), 2);
        assert_eq!(n.edges[1].1, 2);
    }

    #[test]
    fn actions_round_trip_serde() {
        let a = Action::ScopeSwitch(ScopeDirection::NarrowToNoisiestMachine);
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(a, serde_json::from_str(&json).unwrap());
        let m = Action::Mitigate {
            suggestion: "Engage networking team".into(),
        };
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(m, serde_json::from_str(&json).unwrap());
    }
}
