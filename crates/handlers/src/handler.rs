//! Handler definition and the execution engine.

use crate::action::{ActionNode, ScopeDirection};
use crate::executor::{RetryPolicy, RunDegradation};
use rcacopilot_telemetry::alert::AlertType;
use rcacopilot_telemetry::fault::NoFaults;
use rcacopilot_telemetry::log::LogLevel;
use rcacopilot_telemetry::query::{QueryResult, Scope};
use rcacopilot_telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Hard cap on executed nodes, guarding against malformed handler cycles.
pub(crate) const MAX_STEPS: usize = 64;

/// A versioned incident handler for one alert type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Handler {
    /// Alert type this handler serves.
    pub alert_type: AlertType,
    /// Monotonic version, managed by the registry.
    pub version: u32,
    /// Author note for this version.
    pub note: String,
    /// Decision-tree nodes; execution starts at `nodes[0]`.
    pub nodes: Vec<ActionNode>,
}

/// Errors from handler validation or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandlerError {
    /// The handler has no nodes.
    Empty,
    /// An edge references a node id that does not exist.
    DanglingEdge {
        /// Node holding the bad edge.
        from: u32,
        /// Missing target id.
        to: u32,
    },
    /// Two nodes share the same id.
    DuplicateId(u32),
    /// Execution exceeded the step limit (a cycle without exit).
    StepLimitExceeded,
    /// The execution policy's whole-handler time budget cannot cover the
    /// handler (a zero budget with query actions present).
    BudgetExceeded {
        /// The configured budget in virtual milliseconds.
        budget_ms: u64,
    },
    /// The retry policy is unusable (e.g. zero attempts allowed).
    InvalidPolicy(&'static str),
}

impl std::fmt::Display for HandlerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandlerError::Empty => write!(f, "handler has no nodes"),
            HandlerError::DanglingEdge { from, to } => {
                write!(f, "node {from} has an edge to missing node {to}")
            }
            HandlerError::DuplicateId(id) => write!(f, "duplicate node id {id}"),
            HandlerError::StepLimitExceeded => {
                write!(f, "execution exceeded {MAX_STEPS} steps (cycle?)")
            }
            HandlerError::BudgetExceeded { budget_ms } => {
                write!(f, "time budget of {budget_ms}ms cannot cover any query")
            }
            HandlerError::InvalidPolicy(why) => write!(f, "invalid retry policy: {why}"),
        }
    }
}

impl std::error::Error for HandlerError {}

/// The outcome of executing a handler over an incident snapshot.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HandlerRun {
    /// Diagnostic sections collected by query actions, in execution order.
    pub sections: Vec<QueryResult>,
    /// Names of nodes visited, in order.
    pub path: Vec<String>,
    /// Compact per-node outputs ("ActionOutput" in the paper's Table 3):
    /// node name → short digest of its result.
    pub action_outputs: Vec<(String, String)>,
    /// Mitigation suggestions reached.
    pub mitigations: Vec<String>,
    /// Scope at the end of execution (after any scope switches).
    pub final_scope: Scope,
    /// Degradation metadata: completeness of the collected diagnostics
    /// and what the resilience machinery spent. All-zero (completeness
    /// `1.0`) on fault-free runs.
    pub degradation: RunDegradation,
}

impl HandlerRun {
    /// Renders the collected sections as the incident's diagnostic
    /// information (the "DiagnosticInfo" context of Table 3).
    pub fn diagnostic_text(&self) -> String {
        let mut out = String::new();
        for s in &self.sections {
            out.push_str(&s.render());
            out.push('\n');
        }
        out
    }

    /// Renders the action outputs as `key: value` lines (the
    /// "ActionOutput" context of Table 3).
    pub fn action_output_text(&self) -> String {
        self.action_outputs
            .iter()
            .map(|(k, v)| format!("{k}: {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl Handler {
    /// Creates a handler (version 0) from nodes.
    pub fn new(alert_type: AlertType, nodes: Vec<ActionNode>) -> Self {
        Handler {
            alert_type,
            version: 0,
            note: String::new(),
            nodes,
        }
    }

    /// Validates structural invariants: nonempty, unique ids, no dangling
    /// edges.
    pub fn validate(&self) -> Result<(), HandlerError> {
        if self.nodes.is_empty() {
            return Err(HandlerError::Empty);
        }
        let mut ids = BTreeSet::new();
        for n in &self.nodes {
            if !ids.insert(n.id) {
                return Err(HandlerError::DuplicateId(n.id));
            }
        }
        for n in &self.nodes {
            for (_, to) in &n.edges {
                if !ids.contains(to) {
                    return Err(HandlerError::DanglingEdge {
                        from: n.id,
                        to: *to,
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the handler has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub(crate) fn node(&self, id: u32) -> Option<&ActionNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Executes the handler against `snapshot`, starting from the alert's
    /// `scope`, collecting diagnostic sections along the visited path.
    ///
    /// This is the fault-free entry point: it delegates to the resilient
    /// executor ([`Handler::execute_resilient`]) with
    /// [`NoFaults`] and the default [`RetryPolicy`], so both paths share
    /// one engine and a no-fault run is byte-identical to the historical
    /// behavior.
    pub fn execute(
        &self,
        snapshot: &TelemetrySnapshot,
        scope: Scope,
    ) -> Result<HandlerRun, HandlerError> {
        self.execute_resilient(snapshot, scope, &NoFaults, &RetryPolicy::default())
    }
}

/// Applies a scope switch using the snapshot's evidence.
pub(crate) fn switch_scope(
    snapshot: &TelemetrySnapshot,
    scope: Scope,
    direction: ScopeDirection,
) -> Scope {
    match direction {
        ScopeDirection::Widen => scope.widened(),
        ScopeDirection::NarrowToNoisiestMachine => {
            // Pick the machine with the most error-level records in scope.
            let mut best: Option<(rcacopilot_telemetry::ids::MachineId, usize)> = None;
            let mut counts = std::collections::BTreeMap::new();
            for rec in snapshot.logs.records() {
                if rec.level >= LogLevel::Error && scope.contains_machine(rec.machine) {
                    *counts.entry(rec.machine).or_insert(0usize) += 1;
                }
            }
            for (m, c) in counts {
                if best.is_none_or(|(_, bc)| c > bc) {
                    best = Some((m, c));
                }
            }
            match best {
                Some((m, _)) => Scope::Machine(m),
                None => scope,
            }
        }
    }
}

/// Short digest of a query result, used as the node's "action output".
pub(crate) fn digest_of(result: &QueryResult) -> String {
    if let Some((k, v)) = result.rows.first() {
        format!("{k}={v}")
    } else {
        let line = result.text.lines().next().unwrap_or("");
        let mut s: String = line.chars().take(60).collect();
        if s.is_empty() {
            s.push_str("(empty)");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, Condition};
    use rcacopilot_telemetry::ids::{ForestId, MachineId, MachineRole};
    use rcacopilot_telemetry::log::LogRecord;
    use rcacopilot_telemetry::query::Query;
    use rcacopilot_telemetry::time::SimTime;

    fn snapshot_with_errors() -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::new(SimTime::from_hours(10));
        for (idx, n) in [(1u32, 5usize), (2, 1)] {
            for i in 0..n {
                snap.logs.push(LogRecord {
                    at: SimTime::from_hours(9)
                        + rcacopilot_telemetry::time::SimDuration::from_mins(i as u64),
                    machine: MachineId::new(ForestId(0), MachineRole::Mailbox, idx),
                    process: "Transport.exe".into(),
                    component: "X".into(),
                    level: LogLevel::Error,
                    message: format!("boom {i}"),
                });
            }
        }
        snap.logs.finish();
        snap
    }

    fn simple_handler() -> Handler {
        Handler::new(
            AlertType::ProcessCrashSpike,
            vec![
                ActionNode::new(
                    0,
                    "Check error logs",
                    Action::Query {
                        query: Query::Logs {
                            level: LogLevel::Error,
                            contains: None,
                            limit: 10,
                        },
                        lookback_secs: 7200,
                    },
                )
                .edge(
                    Condition::RowGt {
                        key: "Matching records".into(),
                        threshold: 0.0,
                    },
                    1,
                )
                .edge(Condition::Always, 2),
                ActionNode::new(
                    1,
                    "Narrow to noisiest machine",
                    Action::ScopeSwitch(ScopeDirection::NarrowToNoisiestMachine),
                )
                .edge(Condition::Always, 3),
                ActionNode::new(
                    2,
                    "Suggest healthy close",
                    Action::Mitigate {
                        suggestion: "No errors found; monitor and auto-close.".into(),
                    },
                ),
                ActionNode::new(
                    3,
                    "Check machine logs",
                    Action::Query {
                        query: Query::Logs {
                            level: LogLevel::Error,
                            contains: None,
                            limit: 5,
                        },
                        lookback_secs: 7200,
                    },
                ),
            ],
        )
    }

    #[test]
    fn execution_follows_branches_and_narrows_scope() {
        let snap = snapshot_with_errors();
        let run = simple_handler()
            .execute(&snap, Scope::Forest(ForestId(0)))
            .unwrap();
        assert_eq!(
            run.path,
            vec![
                "Check error logs",
                "Narrow to noisiest machine",
                "Check machine logs"
            ]
        );
        // Narrowed to machine 1 (5 errors > 1 error).
        assert_eq!(
            run.final_scope,
            Scope::Machine(MachineId::new(ForestId(0), MachineRole::Mailbox, 1))
        );
        assert_eq!(run.sections.len(), 2);
        // Second query ran at machine scope: only machine 1 records.
        assert_eq!(run.sections[1].row("Matching records"), Some("5"));
        assert!(run.mitigations.is_empty());
        assert_eq!(run.action_outputs.len(), 3);
    }

    #[test]
    fn empty_snapshot_takes_fallback_branch_to_mitigation() {
        let snap = TelemetrySnapshot::new(SimTime::from_hours(1));
        let run = simple_handler()
            .execute(&snap, Scope::Forest(ForestId(0)))
            .unwrap();
        assert_eq!(run.path.last().unwrap(), "Suggest healthy close");
        assert_eq!(run.mitigations.len(), 1);
    }

    #[test]
    fn validation_catches_structural_bugs() {
        let mut h = simple_handler();
        h.nodes[0].edges[0].1 = 99;
        assert_eq!(
            h.validate(),
            Err(HandlerError::DanglingEdge { from: 0, to: 99 })
        );
        let mut h2 = simple_handler();
        h2.nodes[1].id = 0;
        assert_eq!(h2.validate(), Err(HandlerError::DuplicateId(0)));
        let h3 = Handler::new(AlertType::ProcessCrashSpike, vec![]);
        assert_eq!(h3.validate(), Err(HandlerError::Empty));
    }

    #[test]
    fn cycles_hit_the_step_limit() {
        let h = Handler::new(
            AlertType::ProcessCrashSpike,
            vec![
                ActionNode::new(0, "A", Action::ScopeSwitch(ScopeDirection::Widen))
                    .edge(Condition::Always, 1),
                ActionNode::new(1, "B", Action::ScopeSwitch(ScopeDirection::Widen))
                    .edge(Condition::Always, 0),
            ],
        );
        let snap = TelemetrySnapshot::new(SimTime::EPOCH);
        assert_eq!(
            h.execute(&snap, Scope::Service),
            Err(HandlerError::StepLimitExceeded)
        );
    }

    #[test]
    fn diagnostic_text_concatenates_sections() {
        let snap = snapshot_with_errors();
        let run = simple_handler()
            .execute(&snap, Scope::Forest(ForestId(0)))
            .unwrap();
        let text = run.diagnostic_text();
        assert!(text.contains("Error log query"));
        assert!(text.contains("boom"));
        let ao = run.action_output_text();
        assert!(ao.contains("Check error logs: Matching records=6"));
    }

    #[test]
    fn handlers_round_trip_serde() {
        let h = simple_handler();
        let json = serde_json::to_string_pretty(&h).unwrap();
        let back: Handler = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
