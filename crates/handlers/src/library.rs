//! The standard handler library for the simulated transport service.
//!
//! One handler per alert type, built the way an experienced OCE would:
//! start from the symptom the monitor saw, branch on what the first
//! queries reveal, and collect every source that historically mattered
//! for root causes behind this alert type. The structure of the
//! `DeliveryQueueBacklog` handler follows the paper's Figure 5.

use crate::action::{Action, ActionNode, Condition, ScopeDirection};
use crate::handler::Handler;
use crate::registry::HandlerRegistry;
use rcacopilot_telemetry::alert::AlertType;
use rcacopilot_telemetry::log::LogLevel;
use rcacopilot_telemetry::query::Query;

/// Default lookback for handler queries (seconds): three hours.
const LOOKBACK: u64 = 3 * 3600;

fn q(id: u32, name: &str, query: Query) -> ActionNode {
    ActionNode::new(
        id,
        name,
        Action::Query {
            query,
            lookback_secs: LOOKBACK,
        },
    )
}

fn mit(id: u32, name: &str, suggestion: &str) -> ActionNode {
    ActionNode::new(
        id,
        name,
        Action::Mitigate {
            suggestion: suggestion.to_string(),
        },
    )
}

fn logs(level: LogLevel, contains: Option<&str>, limit: usize) -> Query {
    Query::Logs {
        level,
        contains: contains.map(str::to_string),
        limit,
    }
}

fn metric(name: &str) -> Query {
    Query::MetricStats {
        metric: name.to_string(),
    }
}

fn probe(name: &str) -> Query {
    Query::ProbeResults {
        probe: name.to_string(),
    }
}

fn row_gt(key: &str, threshold: f64) -> Condition {
    Condition::RowGt {
        key: key.to_string(),
        threshold,
    }
}

fn contains(needle: &str) -> Condition {
    Condition::TextContains {
        needle: needle.to_string(),
    }
}

/// Builds the handler for "too many messages stuck in a queue" alerts
/// (paper Figure 5).
pub fn delivery_queue_backlog() -> Handler {
    Handler::new(
        AlertType::DeliveryQueueBacklog,
        vec![
            q(9, "Find queues over limit", Query::OverLimitQueues)
                .edge(Condition::Always, 0),
            q(0, "Check submission queue", Query::QueueStats { queue: "submission".into() })
                .edge(row_gt("Queues over limit", 0.0), 1)
                .edge(Condition::Always, 2),
            q(1, "Inspect tenant transport configs", Query::TenantConfigs)
                .edge(row_gt("Invalid settings", 0.0), 6)
                .edge(Condition::Always, 3),
            q(2, "Check mailbox delivery queue", Query::QueueStats { queue: "mailbox_delivery".into() })
                .edge(row_gt("Queues over limit", 0.0), 7)
                .edge(Condition::Always, 3),
            q(3, "Collect pipeline warnings", logs(LogLevel::Warning, None, 12))
                .edge(Condition::Always, 4),
            q(4, "Aggregate thread stacks", Query::ThreadStacks { process: None })
                .edge(Condition::Always, 5),
            q(5, "Group failing traces", Query::TraceFailures { top: 5 })
                .edge(contains("AuthService"), 8),
            mit(6, "Mitigate: fix tenant config",
                "Correct the invalid tenant transport setting and resume submission for the tenant."),
            mit(7, "Mitigate: restart delivery service",
                "Restart the mailbox delivery service and drain the delivery queue.")
                .edge(Condition::Always, 4),
            mit(8, "Mitigate: engage auth team",
                "Engage the authentication service team; dispatcher tasks are cancelled waiting for tokens."),
        ],
    )
}

/// Builds the handler for outbound connection failures (the paper's
/// hub-port-exhaustion example lands here).
pub fn outbound_connection_failure() -> Handler {
    Handler::new(
        AlertType::OutboundConnectionFailure,
        vec![
            q(0, "Probe hub outbound proxy", probe(crate::library::probe_names::HUB_OUTBOUND))
                .edge(row_gt("Failed Probes", 0.0), 1)
                .edge(Condition::Always, 3),
            q(1, "Count UDP sockets by process", Query::SocketsByProcess { protocol: "udp".into(), top: 5 })
                .edge(row_gt("Total UDP socket count", 10_000.0), 2)
                .edge(Condition::Always, 4),
            mit(2, "Mitigate: recycle transport to release ports",
                "Recycle the Transport service on the affected front door to release leaked UDP hub ports.")
                .edge(Condition::Always, 4),
            q(3, "Probe DNS resolution", probe(crate::library::probe_names::DNS))
                .edge(row_gt("Failed Probes", 0.0), 5)
                .edge(Condition::Always, 6),
            q(4, "Collect SMTP error logs", logs(LogLevel::Error, None, 10)),
            mit(5, "Mitigate: engage DNS owners",
                "Engage the DNS zone owners; outbound resolution is returning NXDOMAIN.")
                .edge(Condition::Always, 4),
            q(6, "Probe SMTP TLS", probe(crate::library::probe_names::SMTP_TLS))
                .edge(row_gt("Failed Probes", 0.0), 7)
                .edge(Condition::Always, 4),
            q(7, "Inspect certificates", Query::Certificates)
                .edge(Condition::Always, 4),
        ],
    )
}

/// Builds the handler for process-crash-spike alerts.
pub fn process_crash_spike() -> Handler {
    Handler::new(
        AlertType::ProcessCrashSpike,
        vec![
            q(0, "Collect process crash report", Query::ProcessCrashes)
                .edge(Condition::Always, 1),
            q(1, "Check disk usage", Query::DiskUsage)
                .edge(contains("99."), 2)
                .edge(Condition::Always, 3),
            mit(2, "Mitigate: free disk space",
                "Free space on the full volume (rotate logs, expand the disk); IO exceptions will clear.")
                .edge(Condition::Always, 3),
            q(3, "Collect error logs", logs(LogLevel::Error, None, 12))
                .edge(contains("SerializationException"), 4)
                .edge(Condition::Always, 5),
            mit(4, "Mitigate: engage security team",
                "Engage the security team: crash pattern matches an active exploit attempt.")
                .edge(Condition::Always, 5),
            q(5, "Aggregate thread stacks", Query::ThreadStacks { process: None })
                .edge(Condition::Always, 6),
            q(6, "Check provisioning and build status", Query::ProvisioningStatus),
        ],
    )
}

/// Builds the handler for authentication failures.
pub fn authentication_failure() -> Handler {
    Handler::new(
        AlertType::AuthenticationFailure,
        vec![
            q(0, "Inspect certificates", Query::Certificates)
                .edge(row_gt("Non-valid certificates", 0.0), 1)
                .edge(Condition::Always, 2),
            mit(
                1,
                "Mitigate: roll back certificate",
                "Roll back to the previous known-good certificate and re-run validation.",
            )
            .edge(Condition::Always, 2),
            q(
                2,
                "Probe auth endpoint",
                probe(crate::library::probe_names::AUTH),
            )
            .edge(Condition::Always, 3),
            q(
                3,
                "Collect auth error logs",
                logs(LogLevel::Error, None, 10),
            )
            .edge(Condition::Always, 4),
            q(4, "Check auth failure metric", metric("auth_failures")).edge(Condition::Always, 5),
            q(5, "Group failing traces", Query::TraceFailures { top: 5 }),
        ],
    )
}

/// Builds the handler for connection-limit alerts.
pub fn connection_limit_exceeded() -> Handler {
    Handler::new(
        AlertType::ConnectionLimitExceeded,
        vec![
            q(
                0,
                "Check concurrent connections",
                metric("concurrent_connections"),
            )
            .edge(Condition::Always, 1),
            q(1, "Inspect certificates", Query::Certificates)
                .edge(contains("bulkmail"), 2)
                .edge(Condition::Always, 3),
            mit(
                2,
                "Mitigate: block abusive certificate domain",
                "Block connectors using the abused certificate domain and purge the bogus tenants.",
            )
            .edge(Condition::Always, 3),
            q(
                3,
                "Collect connection warnings",
                logs(LogLevel::Warning, None, 12),
            )
            .edge(Condition::Always, 4),
            q(
                4,
                "Probe inbound SMTP",
                probe(crate::library::probe_names::SMTP_IN),
            ),
        ],
    )
}

/// Builds the handler for availability-drop alerts.
pub fn availability_drop() -> Handler {
    Handler::new(
        AlertType::AvailabilityDrop,
        vec![
            q(0, "Check availability metric", metric("availability")).edge(Condition::Always, 1),
            q(1, "Collect process crash report", Query::ProcessCrashes).edge(Condition::Always, 2),
            q(
                2,
                "Check provisioning and build status",
                Query::ProvisioningStatus,
            )
            .edge(Condition::Always, 3),
            q(3, "Collect error logs", logs(LogLevel::Error, None, 12)).edge(Condition::Always, 4),
            q(4, "Group failing traces", Query::TraceFailures { top: 5 }),
        ],
    )
}

/// Builds the handler for poisoned-message alerts.
pub fn poisoned_message() -> Handler {
    Handler::new(
        AlertType::PoisonedMessage,
        vec![
            q(
                0,
                "Check poison message metric",
                metric("poison_message_count"),
            )
            .edge(Condition::Always, 1),
            q(
                1,
                "Collect poison detections",
                logs(LogLevel::Error, Some("Poison"), 10),
            )
            .edge(Condition::Always, 2),
            q(2, "Collect process crash report", Query::ProcessCrashes).edge(Condition::Always, 3),
            q(3, "Collect error logs", logs(LogLevel::Error, None, 12)).edge(Condition::Always, 4),
            q(4, "Group failing traces", Query::TraceFailures { top: 5 }),
        ],
    )
}

/// Builds the handler for delivery-latency alerts.
pub fn delivery_latency_high() -> Handler {
    Handler::new(
        AlertType::DeliveryLatencyHigh,
        vec![
            q(
                0,
                "Check delivery latency metric",
                metric("delivery_latency_ms"),
            )
            .edge(Condition::Always, 1),
            q(
                1,
                "Collect pipeline warnings",
                logs(LogLevel::Warning, None, 12),
            )
            .edge(Condition::Always, 2),
            q(2, "Check CPU utilization", metric("cpu_util")).edge(Condition::Always, 3),
            q(
                3,
                "Aggregate thread stacks",
                Query::ThreadStacks { process: None },
            )
            .edge(Condition::Always, 4),
            q(4, "Group failing traces", Query::TraceFailures { top: 5 }),
        ],
    )
}

/// Builds the handler for resource-pressure alerts.
pub fn resource_pressure() -> Handler {
    Handler::new(
        AlertType::ResourcePressure,
        vec![
            q(0, "Check memory pressure", metric("memory_pressure")).edge(Condition::Always, 1),
            q(
                1,
                "Count TCP sockets by process",
                Query::SocketsByProcess {
                    protocol: "tcp".into(),
                    top: 5,
                },
            )
            .edge(Condition::Always, 2),
            q(2, "Check disk usage", Query::DiskUsage).edge(Condition::Always, 3),
            q(3, "Collect process crash report", Query::ProcessCrashes).edge(Condition::Always, 4),
            q(
                4,
                "Collect resource warnings",
                logs(LogLevel::Warning, None, 12),
            )
            .edge(Condition::Always, 5),
            q(
                5,
                "Aggregate thread stacks",
                Query::ThreadStacks { process: None },
            ),
        ],
    )
}

/// Builds the handler for dependency-timeout alerts; includes a widening
/// scope switch so machine-scoped alerts inspect the whole forest.
pub fn dependency_timeout() -> Handler {
    Handler::new(
        AlertType::DependencyTimeout,
        vec![
            ActionNode::new(
                0,
                "Widen scope to forest",
                Action::ScopeSwitch(ScopeDirection::Widen),
            )
            .edge(Condition::Always, 1),
            q(1, "Group failing traces", Query::TraceFailures { top: 6 })
                .edge(Condition::Always, 2),
            q(
                2,
                "Collect timeout error logs",
                logs(LogLevel::Error, None, 12),
            )
            .edge(Condition::Always, 3),
            q(
                3,
                "Probe network reachability",
                probe(crate::library::probe_names::REACHABILITY),
            )
            .edge(row_gt("Failed Probes", 0.0), 4)
            .edge(Condition::Always, 5),
            mit(
                4,
                "Mitigate: engage networking team",
                "Engage the networking team; reachability probes are failing across the link.",
            )
            .edge(Condition::Always, 5),
            q(
                5,
                "Check dependency latency metric",
                metric("dependency_latency_ms"),
            )
            .edge(Condition::Always, 6),
            q(
                6,
                "Aggregate thread stacks",
                Query::ThreadStacks { process: None },
            ),
        ],
    )
}

/// Fixed probe names the library queries (shared with the simulator's
/// signature module; duplicated here so the handler crate stays
/// independent of the simulator).
pub mod probe_names {
    /// Outbound hub proxy probe.
    pub const HUB_OUTBOUND: &str = "DatacenterHubOutboundProxyProbe";
    /// DNS resolution probe.
    pub const DNS: &str = "DnsResolutionProbe";
    /// Outbound SMTP TLS probe.
    pub const SMTP_TLS: &str = "SmtpTlsProbe";
    /// Authentication endpoint probe.
    pub const AUTH: &str = "AuthEndpointProbe";
    /// Cross-forest network reachability probe.
    pub const REACHABILITY: &str = "NetworkReachabilityProbe";
    /// Inbound SMTP acceptance probe.
    pub const SMTP_IN: &str = "SmtpInboundProbe";
}

/// Builds a registry loaded with the latest standard handler for every
/// alert type.
pub fn standard_handlers() -> HandlerRegistry {
    let registry = HandlerRegistry::new();
    for handler in [
        delivery_queue_backlog(),
        outbound_connection_failure(),
        process_crash_spike(),
        authentication_failure(),
        connection_limit_exceeded(),
        availability_drop(),
        poisoned_message(),
        delivery_latency_high(),
        resource_pressure(),
        dependency_timeout(),
    ] {
        registry
            .register(handler)
            .expect("standard handlers are structurally valid");
    }
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_covers_every_alert_type() {
        let reg = standard_handlers();
        assert_eq!(reg.enabled_count(), AlertType::ALL.len());
        for at in AlertType::ALL {
            let h = reg.current(at).expect("handler exists");
            assert_eq!(h.alert_type, at);
            h.validate().expect("handler valid");
            assert!(h.len() >= 5, "{at} handler too small");
        }
    }

    #[test]
    fn every_handler_has_a_query_action_first_or_second() {
        let reg = standard_handlers();
        for at in AlertType::ALL {
            let h = reg.current(at).unwrap();
            let early_query = h
                .nodes
                .iter()
                .take(2)
                .any(|n| matches!(n.action, Action::Query { .. }));
            assert!(early_query, "{at} handler should query early");
        }
    }

    #[test]
    fn handlers_include_mitigation_branches_where_designed() {
        let h = delivery_queue_backlog();
        let mitigations = h
            .nodes
            .iter()
            .filter(|n| matches!(n.action, Action::Mitigate { .. }))
            .count();
        assert_eq!(mitigations, 3);
    }

    #[test]
    fn dependency_handler_starts_with_scope_switch() {
        let h = dependency_timeout();
        assert!(matches!(
            h.nodes[0].action,
            Action::ScopeSwitch(ScopeDirection::Widen)
        ));
    }

    #[test]
    fn library_handlers_serialize() {
        let reg = standard_handlers();
        let json = reg.to_json();
        let back = HandlerRegistry::from_json(&json).unwrap();
        assert_eq!(back.enabled_count(), AlertType::ALL.len());
    }
}
