//! The versioned handler store.
//!
//! The paper keeps handlers in a database behind a web UI; OCEs add new
//! versions as the system evolves, and old versions remain queryable
//! ("we also maintain the versions of the handlers in the database",
//! §4.1.1). This registry keeps every version in memory, guarded by a
//! [`parking_lot::RwLock`] so the collection stage can serve concurrent
//! incidents, and serializes to JSON for persistence.

use crate::handler::{Handler, HandlerError};
use parking_lot::RwLock;
use rcacopilot_telemetry::alert::AlertType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Serializable snapshot of the registry contents.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct RegistryData {
    /// Alert type name → all versions, oldest first.
    handlers: BTreeMap<String, Vec<Handler>>,
}

/// Thread-safe, versioned handler registry.
#[derive(Debug, Default)]
pub struct HandlerRegistry {
    data: RwLock<RegistryData>,
}

impl HandlerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        HandlerRegistry::default()
    }

    /// Registers a new version of the handler for its alert type.
    ///
    /// The handler is validated first; its `version` field is overwritten
    /// with the next version number. Returns the assigned version.
    pub fn register(&self, mut handler: Handler) -> Result<u32, HandlerError> {
        handler.validate()?;
        let mut data = self.data.write();
        let versions = data
            .handlers
            .entry(handler.alert_type.name().to_string())
            .or_default();
        let version = versions.len() as u32;
        handler.version = version;
        versions.push(handler);
        Ok(version)
    }

    /// The current (latest) handler for `alert_type`, if any.
    pub fn current(&self, alert_type: AlertType) -> Option<Handler> {
        self.data
            .read()
            .handlers
            .get(alert_type.name())
            .and_then(|v| v.last().cloned())
    }

    /// A specific historical version.
    pub fn version(&self, alert_type: AlertType, version: u32) -> Option<Handler> {
        self.data
            .read()
            .handlers
            .get(alert_type.name())
            .and_then(|v| v.get(version as usize).cloned())
    }

    /// Number of versions stored for `alert_type`.
    pub fn version_count(&self, alert_type: AlertType) -> usize {
        self.data
            .read()
            .handlers
            .get(alert_type.name())
            .map_or(0, Vec::len)
    }

    /// Alert types with at least one handler.
    pub fn alert_types(&self) -> Vec<AlertType> {
        self.data
            .read()
            .handlers
            .keys()
            .filter_map(|k| AlertType::parse(k))
            .collect()
    }

    /// Total number of enabled (latest-version) handlers.
    pub fn enabled_count(&self) -> usize {
        self.data.read().handlers.len()
    }

    /// Serializes the full registry (all versions) to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&*self.data.read()).expect("registry serializes")
    }

    /// Restores a registry from [`HandlerRegistry::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let data: RegistryData = serde_json::from_str(json)?;
        Ok(HandlerRegistry {
            data: RwLock::new(data),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, ActionNode};

    fn handler(alert_type: AlertType, note: &str) -> Handler {
        let mut h = Handler::new(
            alert_type,
            vec![ActionNode::new(
                0,
                "Mitigate",
                Action::Mitigate {
                    suggestion: note.to_string(),
                },
            )],
        );
        h.note = note.to_string();
        h
    }

    #[test]
    fn register_assigns_monotonic_versions() {
        let reg = HandlerRegistry::new();
        let v0 = reg
            .register(handler(AlertType::PoisonedMessage, "first"))
            .unwrap();
        let v1 = reg
            .register(handler(AlertType::PoisonedMessage, "second"))
            .unwrap();
        assert_eq!((v0, v1), (0, 1));
        assert_eq!(reg.version_count(AlertType::PoisonedMessage), 2);
        assert_eq!(
            reg.current(AlertType::PoisonedMessage).unwrap().note,
            "second"
        );
        assert_eq!(
            reg.version(AlertType::PoisonedMessage, 0).unwrap().note,
            "first"
        );
    }

    #[test]
    fn invalid_handlers_are_rejected() {
        let reg = HandlerRegistry::new();
        let empty = Handler::new(AlertType::ResourcePressure, vec![]);
        assert!(reg.register(empty).is_err());
        assert_eq!(reg.version_count(AlertType::ResourcePressure), 0);
    }

    #[test]
    fn missing_handler_returns_none() {
        let reg = HandlerRegistry::new();
        assert!(reg.current(AlertType::DeliveryLatencyHigh).is_none());
        assert!(reg.version(AlertType::DeliveryLatencyHigh, 0).is_none());
    }

    #[test]
    fn json_round_trip_preserves_versions() {
        let reg = HandlerRegistry::new();
        reg.register(handler(AlertType::PoisonedMessage, "a"))
            .unwrap();
        reg.register(handler(AlertType::PoisonedMessage, "b"))
            .unwrap();
        reg.register(handler(AlertType::ResourcePressure, "c"))
            .unwrap();
        let json = reg.to_json();
        let back = HandlerRegistry::from_json(&json).unwrap();
        assert_eq!(back.version_count(AlertType::PoisonedMessage), 2);
        assert_eq!(back.enabled_count(), 2);
        assert_eq!(back.current(AlertType::ResourcePressure).unwrap().note, "c");
    }

    #[test]
    fn alert_types_lists_registered() {
        let reg = HandlerRegistry::new();
        reg.register(handler(AlertType::PoisonedMessage, "a"))
            .unwrap();
        reg.register(handler(AlertType::AvailabilityDrop, "b"))
            .unwrap();
        let mut types = reg.alert_types();
        types.sort();
        assert_eq!(
            types,
            vec![AlertType::AvailabilityDrop, AlertType::PoisonedMessage]
        );
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = std::sync::Arc::new(HandlerRegistry::new());
        let mut joins = Vec::new();
        for i in 0..8 {
            let reg = reg.clone();
            joins.push(std::thread::spawn(move || {
                reg.register(handler(AlertType::PoisonedMessage, &format!("v{i}")))
                    .unwrap();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(reg.version_count(AlertType::PoisonedMessage), 8);
    }
}
