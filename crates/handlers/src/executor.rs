//! The resilient handler executor.
//!
//! [`Handler::execute`](crate::handler::Handler::execute) assumes every
//! query answers. Real diagnostic back-ends do not, so this module walks
//! the same decision tree through a [`FaultInjector`], wrapping each
//! query action with:
//!
//! - **per-action deadline + bounded exponential backoff retries** — a
//!   failed attempt is retried up to [`RetryPolicy::max_attempts`] times,
//!   each retry preceded by `base_backoff_ms << (attempt-1)` (capped at
//!   [`RetryPolicy::max_backoff_ms`]) of *virtual* waiting;
//! - **a whole-handler time budget** — every attempt, timeout, and
//!   backoff charges a deterministic virtual cost; once
//!   [`RetryPolicy::handler_budget_ms`] is spent, remaining queries
//!   fail fast with [`FaultCause::BudgetExhausted`];
//! - **a per-data-source circuit breaker** — after
//!   [`RetryPolicy::breaker_threshold`] consecutive exhausted queries
//!   against one source, further queries to it are skipped with
//!   [`FaultCause::CircuitOpen`] instead of burning budget;
//! - **graceful degradation** — a query that ultimately fails emits an
//!   explicit `[data unavailable: <cause>]` section and control flow
//!   follows the node's fallback edge (conditions on rows cannot match a
//!   failed section, so the first `Always` edge routes around the gap);
//!   the run never aborts.
//!
//! All timing is virtual, counted in milliseconds of simulated latency —
//! no wall clock — so a run is a pure function of
//! `(handler, snapshot, scope, injector, policy)` and replays bit-for-bit.
//!
//! Degradation metadata is recorded on the run as [`RunDegradation`]
//! and threaded through collection into the prediction prompt, where
//! incomplete diagnostics downgrade the reported confidence.

use crate::action::Action;
use crate::handler::{digest_of, switch_scope, Handler, HandlerError, HandlerRun, MAX_STEPS};
use rcacopilot_telemetry::fault::{DataSource, FaultCause, FaultInjector, NoFaults, QueryOutcome};
use rcacopilot_telemetry::query::{QueryResult, Scope, TimeWindow};
use rcacopilot_telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Retry, deadline, budget, and circuit-breaker parameters of the
/// resilient executor. All times are virtual milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts per query action (1 = no retries). Must be >= 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_backoff_ms: u64,
    /// Backoff cap.
    pub max_backoff_ms: u64,
    /// Per-action deadline: the virtual cost charged by an attempt that
    /// times out.
    pub action_deadline_ms: u64,
    /// Virtual cost of an attempt that answers (fully or partially), or
    /// that fails fast (source down).
    pub query_cost_ms: u64,
    /// Whole-handler virtual time budget.
    pub handler_budget_ms: u64,
    /// Consecutive exhausted queries against one source before its
    /// circuit breaker opens for the rest of the run.
    pub breaker_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Budget sized so a fault-free walk of MAX_STEPS query nodes
        // (64 * 50ms = 3.2s) never comes near exhaustion.
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 100,
            max_backoff_ms: 2_000,
            action_deadline_ms: 1_000,
            query_cost_ms: 50,
            handler_budget_ms: 60_000,
            breaker_threshold: 4,
        }
    }
}

impl RetryPolicy {
    /// Backoff charged before retry number `attempt` (1-based attempt
    /// that just failed): exponential, capped.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        (self.base_backoff_ms << shift).min(self.max_backoff_ms)
    }

    /// Upper bound on the virtual cost one query action can incur:
    /// every attempt times out, plus every backoff.
    pub fn worst_case_action_ms(&self) -> u64 {
        let attempts = u64::from(self.max_attempts.max(1));
        let backoffs: u64 = (1..self.max_attempts).map(|a| self.backoff_ms(a)).sum();
        attempts * self.action_deadline_ms + backoffs
    }
}

/// Degradation metadata of one handler run: how much of the intended
/// diagnostic information actually arrived, and what the resilience
/// machinery spent getting it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunDegradation {
    /// Query actions executed (sections attempted).
    pub sections_total: u32,
    /// Sections that produced no data (`[data unavailable: ...]`).
    pub sections_failed: u32,
    /// Sections that produced degraded data (truncated or stale).
    pub sections_partial: u32,
    /// Retry attempts performed across all query actions.
    pub retries: u32,
    /// Virtual milliseconds spent (queries, timeouts, backoffs).
    pub budget_spent_ms: u64,
    /// Data sources that exhausted at least one query, in order of
    /// first failure (deduplicated).
    pub sources_failed: Vec<String>,
}

impl RunDegradation {
    /// Fraction of intended diagnostic information that arrived: failed
    /// sections count zero, partial sections count half. `1.0` for a
    /// run with no query actions or no faults.
    pub fn completeness(&self) -> f64 {
        if self.sections_total == 0 {
            return 1.0;
        }
        let lost = f64::from(self.sections_failed) + 0.5 * f64::from(self.sections_partial);
        (1.0 - lost / f64::from(self.sections_total)).max(0.0)
    }

    /// True when any section failed or arrived degraded.
    pub fn is_degraded(&self) -> bool {
        self.sections_failed > 0 || self.sections_partial > 0
    }

    /// One-line summary for prompt annotation and reports, e.g.
    /// `3 of 5 diagnostic sections unavailable (sources: probes, queues)`.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} of {} diagnostic sections unavailable",
            self.sections_failed, self.sections_total
        );
        if self.sections_partial > 0 {
            s.push_str(&format!(", {} partial", self.sections_partial));
        }
        if !self.sources_failed.is_empty() {
            s.push_str(&format!(" (sources: {})", self.sources_failed.join(", ")));
        }
        s
    }
}

/// Per-source consecutive-failure counters backing the circuit breaker.
#[derive(Debug, Default)]
struct BreakerState {
    consecutive: BTreeMap<DataSource, u32>,
    open: BTreeSet<DataSource>,
}

impl BreakerState {
    fn is_open(&self, source: DataSource) -> bool {
        self.open.contains(&source)
    }

    fn record_success(&mut self, source: DataSource) {
        self.consecutive.insert(source, 0);
    }

    fn record_failure(&mut self, source: DataSource, threshold: u32) {
        let c = self.consecutive.entry(source).or_insert(0);
        *c += 1;
        if *c >= threshold {
            self.open.insert(source);
        }
    }
}

impl Handler {
    /// Executes the handler through a fault injector with the resilience
    /// policy applied to every query action.
    ///
    /// With [`NoFaults`] and any sane policy this produces exactly the
    /// sections, path, and outputs of the fault-free engine — plus a
    /// [`RunDegradation`] reporting completeness `1.0`. Under faults the
    /// run always completes: failed queries degrade into
    /// `[data unavailable: <cause>]` sections and follow their fallback
    /// edge.
    ///
    /// Errors are configuration errors only: structural validation
    /// failures, a policy allowing zero attempts
    /// ([`HandlerError::InvalidPolicy`]), a zero time budget for a
    /// handler containing query actions ([`HandlerError::BudgetExceeded`]),
    /// or a cycle exceeding the step limit.
    pub fn execute_resilient(
        &self,
        snapshot: &TelemetrySnapshot,
        scope: Scope,
        faults: &dyn FaultInjector,
        policy: &RetryPolicy,
    ) -> Result<HandlerRun, HandlerError> {
        self.validate()?;
        if policy.max_attempts == 0 {
            return Err(HandlerError::InvalidPolicy(
                "retry policy must allow at least one attempt",
            ));
        }
        let has_queries = self
            .nodes
            .iter()
            .any(|n| matches!(n.action, Action::Query { .. }));
        if policy.handler_budget_ms == 0 && has_queries {
            return Err(HandlerError::BudgetExceeded { budget_ms: 0 });
        }

        let mut run = HandlerRun {
            final_scope: scope,
            ..HandlerRun::default()
        };
        let mut deg = RunDegradation::default();
        let mut breaker = BreakerState::default();
        let mut spent_ms: u64 = 0;
        let mut current = Some(self.nodes[0].id);
        let mut steps = 0;
        while let Some(id) = current {
            steps += 1;
            if steps > MAX_STEPS {
                return Err(HandlerError::StepLimitExceeded);
            }
            let node = match self.node(id) {
                Some(n) => n,
                // Unreachable after validate(); surfaced as the structural
                // error rather than a panic.
                None => return Err(HandlerError::DanglingEdge { from: id, to: id }),
            };
            run.path.push(node.name.clone());
            let result = match &node.action {
                Action::Query {
                    query,
                    lookback_secs,
                } => {
                    deg.sections_total += 1;
                    let source = query.data_source();
                    let window = TimeWindow::lookback(snapshot.taken_at, *lookback_secs);
                    let outcome = run_query_attempts(
                        snapshot,
                        query,
                        run.final_scope,
                        window,
                        faults,
                        policy,
                        &mut breaker,
                        &mut spent_ms,
                        &mut deg.retries,
                    );
                    let r = match outcome {
                        QueryOutcome::Ok(r) => {
                            breaker.record_success(source);
                            r
                        }
                        QueryOutcome::Partial { result, cause } => {
                            // Data arrived: the source is alive, but the
                            // section is marked so readers (and the
                            // summarizer) see the gap.
                            breaker.record_success(source);
                            deg.sections_partial += 1;
                            let mut r = result;
                            r.push_line(format!("[data degraded: {cause}]"));
                            r
                        }
                        QueryOutcome::Failed { cause } => {
                            // CircuitOpen/BudgetExhausted are executor
                            // verdicts, not evidence the source failed
                            // again.
                            if !matches!(
                                cause,
                                FaultCause::CircuitOpen { .. } | FaultCause::BudgetExhausted { .. }
                            ) {
                                breaker.record_failure(source, policy.breaker_threshold);
                            }
                            deg.sections_failed += 1;
                            let name = source.name().to_string();
                            if !deg.sources_failed.contains(&name) {
                                deg.sources_failed.push(name);
                            }
                            let mut r = QueryResult::titled(format!(
                                "{} query on {}",
                                query.kind(),
                                run.final_scope
                            ));
                            r.push_line(format!("[data unavailable: {cause}]"));
                            r
                        }
                    };
                    run.action_outputs.push((node.name.clone(), digest_of(&r)));
                    run.sections.push(r.clone());
                    r
                }
                Action::ScopeSwitch(direction) => {
                    run.final_scope = switch_scope(snapshot, run.final_scope, *direction);
                    run.action_outputs
                        .push((node.name.clone(), run.final_scope.label()));
                    QueryResult::default()
                }
                Action::Mitigate { suggestion } => {
                    run.mitigations.push(suggestion.clone());
                    run.action_outputs
                        .push((node.name.clone(), suggestion.clone()));
                    QueryResult::default()
                }
            };
            current = node
                .edges
                .iter()
                .find(|(cond, _)| cond.matches(&result))
                .map(|(_, to)| *to);
        }
        deg.budget_spent_ms = spent_ms;
        run.degradation = deg;
        Ok(run)
    }
}

/// Runs the attempt loop for one query action: deadline/backoff/budget
/// accounting, breaker fast-fail. Returns the final outcome.
#[allow(clippy::too_many_arguments)]
fn run_query_attempts(
    snapshot: &TelemetrySnapshot,
    query: &rcacopilot_telemetry::query::Query,
    scope: Scope,
    window: TimeWindow,
    faults: &dyn FaultInjector,
    policy: &RetryPolicy,
    breaker: &mut BreakerState,
    spent_ms: &mut u64,
    retries: &mut u32,
) -> QueryOutcome {
    let source = query.data_source();
    if breaker.is_open(source) {
        return QueryOutcome::Failed {
            cause: FaultCause::CircuitOpen { source },
        };
    }
    let mut attempt: u32 = 1;
    loop {
        if *spent_ms >= policy.handler_budget_ms {
            return QueryOutcome::Failed {
                cause: FaultCause::BudgetExhausted {
                    budget_ms: policy.handler_budget_ms,
                },
            };
        }
        let outcome = snapshot.execute_faulted(query, scope, window, faults, attempt);
        match &outcome {
            QueryOutcome::Ok(_) | QueryOutcome::Partial { .. } => {
                *spent_ms = spent_ms.saturating_add(policy.query_cost_ms);
                return outcome;
            }
            QueryOutcome::Failed { cause } => {
                // A timeout burns the whole deadline; a fast failure
                // (source down) only the probe cost.
                let cost = match cause {
                    FaultCause::Timeout => policy.action_deadline_ms,
                    _ => policy.query_cost_ms,
                };
                *spent_ms = spent_ms.saturating_add(cost);
                if attempt >= policy.max_attempts {
                    return outcome;
                }
                *retries += 1;
                *spent_ms = spent_ms.saturating_add(policy.backoff_ms(attempt));
                attempt += 1;
            }
        }
    }
}

/// Convenience: the policy/injector pair of the fault-free path.
pub fn default_execution() -> (NoFaults, RetryPolicy) {
    (NoFaults, RetryPolicy::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionNode, Condition};
    use rcacopilot_telemetry::alert::AlertType;
    use rcacopilot_telemetry::fault::FaultDecision;
    use rcacopilot_telemetry::ids::{ForestId, MachineId, MachineRole};
    use rcacopilot_telemetry::log::{LogLevel, LogRecord};
    use rcacopilot_telemetry::query::Query;
    use rcacopilot_telemetry::time::SimTime;

    /// Injector that fails the first `fail_attempts` attempts of every
    /// query, then answers.
    #[derive(Debug)]
    struct FailFirst {
        fail_attempts: u32,
        decision: FaultDecision,
    }

    impl FaultInjector for FailFirst {
        fn decide(&self, _: DataSource, _: Scope, _: TimeWindow, attempt: u32) -> FaultDecision {
            if attempt <= self.fail_attempts {
                self.decision
            } else {
                FaultDecision::None
            }
        }
    }

    /// Injector with one permanently dead source.
    #[derive(Debug)]
    struct DeadSource(DataSource);

    impl FaultInjector for DeadSource {
        fn decide(&self, s: DataSource, _: Scope, _: TimeWindow, _: u32) -> FaultDecision {
            if s == self.0 {
                FaultDecision::Unavailable
            } else {
                FaultDecision::None
            }
        }
    }

    fn snapshot() -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::new(SimTime::from_hours(10));
        for i in 0..4 {
            snap.logs.push(LogRecord {
                at: SimTime::from_hours(9),
                machine: MachineId::new(ForestId(0), MachineRole::Hub, 1),
                process: "Transport.exe".into(),
                component: "X".into(),
                level: LogLevel::Error,
                message: format!("boom {i}"),
            });
        }
        snap.logs.finish();
        snap
    }

    fn log_query() -> Action {
        Action::Query {
            query: Query::Logs {
                level: LogLevel::Error,
                contains: None,
                limit: 10,
            },
            lookback_secs: 7200,
        }
    }

    /// logs query -> (has records) disk query | (fallback) mitigation.
    fn handler() -> Handler {
        Handler::new(
            AlertType::ProcessCrashSpike,
            vec![
                ActionNode::new(0, "Check error logs", log_query())
                    .edge(
                        Condition::RowGt {
                            key: "Matching records".into(),
                            threshold: 0.0,
                        },
                        1,
                    )
                    .edge(Condition::Always, 2),
                ActionNode::new(
                    1,
                    "Check disks",
                    Action::Query {
                        query: Query::DiskUsage,
                        lookback_secs: 3600,
                    },
                ),
                ActionNode::new(
                    2,
                    "Escalate blind",
                    Action::Mitigate {
                        suggestion: "Diagnostics unavailable; engage the on-call directly.".into(),
                    },
                ),
            ],
        )
    }

    #[test]
    fn no_faults_matches_plain_execute_exactly() {
        let snap = snapshot();
        let h = handler();
        let plain = h.execute(&snap, Scope::Service).unwrap();
        let resilient = h
            .execute_resilient(&snap, Scope::Service, &NoFaults, &RetryPolicy::default())
            .unwrap();
        assert_eq!(plain, resilient);
        assert_eq!(resilient.degradation.completeness(), 1.0);
        assert_eq!(resilient.degradation.retries, 0);
        assert!(!resilient.degradation.is_degraded());
    }

    #[test]
    fn transient_fault_is_retried_to_success() {
        let snap = snapshot();
        let h = handler();
        let inj = FailFirst {
            fail_attempts: 2,
            decision: FaultDecision::Timeout,
        };
        let run = h
            .execute_resilient(&snap, Scope::Service, &inj, &RetryPolicy::default())
            .unwrap();
        // Both queries succeed on the third attempt.
        assert_eq!(run.degradation.sections_failed, 0);
        assert_eq!(run.degradation.retries, 4);
        assert_eq!(run.path, vec!["Check error logs", "Check disks"]);
        // Two timeouts + two backoffs + one success per query.
        let per_query = 2 * 1000 + 100 + 200 + 50;
        assert_eq!(run.degradation.budget_spent_ms, 2 * per_query);
        assert!(!run.diagnostic_text().contains("[data unavailable"));
    }

    #[test]
    fn exhausted_query_degrades_and_takes_fallback_edge() {
        let snap = snapshot();
        let h = handler();
        let inj = DeadSource(DataSource::Logs);
        let run = h
            .execute_resilient(&snap, Scope::Service, &inj, &RetryPolicy::default())
            .unwrap();
        // The logs query exhausts its retries; the fallback edge routes
        // to the blind-escalation mitigation instead of the disk query.
        assert_eq!(run.path, vec!["Check error logs", "Escalate blind"]);
        assert_eq!(run.mitigations.len(), 1);
        assert_eq!(run.degradation.sections_failed, 1);
        assert_eq!(run.degradation.sources_failed, vec!["logs".to_string()]);
        let text = run.diagnostic_text();
        assert!(
            text.contains("[data unavailable: source logs unavailable]"),
            "text: {text}"
        );
        assert!(run.degradation.completeness() < 1.0);
    }

    #[test]
    fn circuit_breaker_opens_after_threshold_and_skips_attempts() {
        let snap = snapshot();
        // Handler hammering the same dead source five times in sequence.
        let mut nodes: Vec<ActionNode> = (0..5)
            .map(|i| {
                ActionNode::new(i, format!("q{i}"), log_query()).edge(Condition::Always, i + 1)
            })
            .collect();
        nodes.push(ActionNode::new(
            5,
            "done",
            Action::Mitigate {
                suggestion: "stop".into(),
            },
        ));
        let h = Handler::new(AlertType::ProcessCrashSpike, nodes);
        let policy = RetryPolicy {
            breaker_threshold: 2,
            ..RetryPolicy::default()
        };
        let run = h
            .execute_resilient(
                &snap,
                Scope::Service,
                &DeadSource(DataSource::Logs),
                &policy,
            )
            .unwrap();
        assert_eq!(run.degradation.sections_failed, 5);
        let text = run.diagnostic_text();
        // First two queries exhaust retries; the remaining three are
        // skipped by the open breaker.
        assert_eq!(
            text.matches("circuit breaker open for source logs").count(),
            3
        );
        // Skipped queries cost nothing: spent covers exactly two
        // exhausted queries (3 fast failures + 2 backoffs each).
        assert_eq!(run.degradation.budget_spent_ms, 2 * (3 * 50 + 100 + 200));
    }

    #[test]
    fn budget_exhaustion_fails_fast_but_never_aborts() {
        let snap = snapshot();
        let h = handler();
        let policy = RetryPolicy {
            handler_budget_ms: 50, // exactly one query's cost
            ..RetryPolicy::default()
        };
        let run = h
            .execute_resilient(&snap, Scope::Service, &NoFaults, &policy)
            .unwrap();
        // First query fits the budget; the second fails fast on it.
        assert_eq!(run.degradation.sections_failed, 1);
        assert!(run
            .diagnostic_text()
            .contains("[data unavailable: handler budget of 50ms exhausted]"));
    }

    #[test]
    fn zero_budget_with_queries_is_a_config_error() {
        let snap = snapshot();
        let policy = RetryPolicy {
            handler_budget_ms: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(
            handler().execute_resilient(&snap, Scope::Service, &NoFaults, &policy),
            Err(HandlerError::BudgetExceeded { budget_ms: 0 })
        );
        let zero_attempts = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert!(matches!(
            handler().execute_resilient(&snap, Scope::Service, &NoFaults, &zero_attempts),
            Err(HandlerError::InvalidPolicy(_))
        ));
    }

    #[test]
    fn partial_data_is_marked_and_counts_half() {
        let snap = snapshot();
        let h = handler();
        let inj = FailFirst {
            fail_attempts: u32::MAX,
            decision: FaultDecision::PartialRows {
                keep_per_mille: 500,
            },
        };
        let run = h
            .execute_resilient(&snap, Scope::Service, &inj, &RetryPolicy::default())
            .unwrap();
        assert_eq!(run.degradation.sections_failed, 0);
        assert_eq!(run.degradation.sections_partial, 2);
        assert!((run.degradation.completeness() - 0.5).abs() < 1e-9);
        assert!(run
            .diagnostic_text()
            .contains("[data degraded: partial result"));
    }

    #[test]
    fn worst_case_action_cost_bounds_observed_spend() {
        let policy = RetryPolicy::default();
        // 3 timeouts (1000 each) + backoffs 100 + 200.
        assert_eq!(policy.worst_case_action_ms(), 3300);
        assert_eq!(policy.backoff_ms(1), 100);
        assert_eq!(policy.backoff_ms(2), 200);
        assert_eq!(policy.backoff_ms(10), 2000);
    }
}
