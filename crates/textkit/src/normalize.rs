//! Normalization and entity masking for diagnostic text.
//!
//! Incident text is full of tokens that are unique per incident (machine
//! names, GUIDs, timestamps, pids, counters) and therefore pure noise for
//! similarity: two occurrences of the *same* root cause never share them.
//! [`mask_entities`] replaces them with stable placeholder tokens so that
//! embeddings and TF-IDF see the *shape* of the text, not its serial
//! numbers.

/// Lowercases and collapses whitespace without masking.
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true;
    for ch in text.chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// True if `tok` looks like a machine name, e.g. `NAMPR03MB1234`
/// (letters then digits then letters then digits, mostly uppercase).
fn looks_like_machine_name(tok: &str) -> bool {
    if tok.len() < 8 || !tok.chars().all(|c| c.is_ascii_alphanumeric()) {
        return false;
    }
    let uppercase = tok.chars().filter(|c| c.is_ascii_uppercase()).count();
    let digits = tok.chars().filter(|c| c.is_ascii_digit()).count();
    uppercase >= 4 && digits >= 3 && tok.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// True if `tok` is hex-ish (GUID fragment, trace id).
fn looks_like_hex_id(tok: &str) -> bool {
    tok.len() >= 8
        && tok.chars().all(|c| c.is_ascii_hexdigit() || c == '-')
        && tok.chars().any(|c| c.is_ascii_digit())
        && tok.chars().any(|c| c.is_ascii_alphabetic() || c == '-')
}

/// True if `tok` is a date or time fragment (`11/21/2022`, `2:04:20`,
/// `2022-11-21T02:04:20Z`).
fn looks_like_timestamp(tok: &str) -> bool {
    let has_sep = tok.contains('/') || tok.contains(':') || tok.contains('-');
    let digits = tok.chars().filter(|c| c.is_ascii_digit()).count();
    has_sep
        && digits >= 4
        && tok
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '/' | ':' | '-' | 'T' | 'Z' | '.'))
}

/// True if `tok` is a bare number of 3+ digits (pid, count, port).
fn looks_like_big_number(tok: &str) -> bool {
    tok.len() >= 3 && tok.chars().all(|c| c.is_ascii_digit())
}

/// Masks per-incident entities with placeholder tokens.
///
/// Splits on whitespace, maps each raw token through the masking rules,
/// and rejoins. Punctuation at token edges is preserved around the mask so
/// the sentence shape survives.
pub fn mask_entities(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for (i, ws_tok) in text.split_whitespace().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        // `key=value` log tokens: mask each side independently.
        for (j, raw) in ws_tok.split('=').enumerate() {
            if j > 0 {
                out.push('=');
            }
            mask_one(raw, &mut out);
        }
    }
    out
}

/// Masks a single `=`-free token into `out`.
fn mask_one(raw: &str, out: &mut String) {
    {
        let start = raw.find(|c: char| c.is_ascii_alphanumeric()).unwrap_or(0);
        let end = raw
            .rfind(|c: char| c.is_ascii_alphanumeric())
            .map(|e| e + 1)
            .unwrap_or(raw.len());
        if start >= end {
            out.push_str(raw);
            return;
        }
        let (prefix, rest) = raw.split_at(start);
        let (core, suffix) = rest.split_at(end - start);
        let masked = if looks_like_timestamp(core) {
            "<time>"
        } else if looks_like_machine_name(core) {
            "<machine>"
        } else if looks_like_hex_id(core) {
            "<hexid>"
        } else if looks_like_big_number(core) {
            "<num>"
        } else {
            core
        };
        out.push_str(prefix);
        out.push_str(masked);
        out.push_str(suffix);
    }
}

/// Splits normalized text into word tokens (alphanumeric runs, keeping
/// `<placeholders>`, dotted identifiers like `system.io.ioexception` are
/// split on dots so exception parts become tokens).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut chars = text.chars().peekable();
    while let Some(ch) = chars.next() {
        if ch == '<' {
            // Possible placeholder token.
            let mut ph = String::from("<");
            let mut ok = false;
            for c2 in chars.by_ref() {
                ph.push(c2);
                if c2 == '>' {
                    ok = true;
                    break;
                }
                if !c2.is_ascii_alphanumeric() {
                    break;
                }
            }
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            if ok {
                tokens.push(ph);
            }
            continue;
        }
        if ch.is_ascii_alphanumeric() || ch == '_' {
            cur.push(ch.to_ascii_lowercase());
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_lowercases_and_collapses() {
        assert_eq!(normalize("  Hello\n\tWORLD  "), "hello world");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn machine_names_are_masked() {
        let masked = mask_entities("probe from NAMPR03MB1234 failed");
        assert_eq!(masked, "probe from <machine> failed");
    }

    #[test]
    fn timestamps_are_masked() {
        let masked = mask_entities("at 11/21/2022 2:04:20 AM it failed");
        assert_eq!(masked, "at <time> <time> AM it failed");
        let iso = mask_entities("ts=2022-11-21T02:04:20Z ok");
        assert!(iso.contains("<time>"));
    }

    #[test]
    fn hex_ids_and_numbers_are_masked() {
        let masked = mask_entities("trace 3fa85f64-5717 pid 203736 port 25");
        assert!(masked.contains("<hexid>"));
        assert!(masked.contains("<num>"));
        // Two-digit numbers survive: they are often meaningful (error codes).
        assert!(masked.ends_with("port 25"));
    }

    #[test]
    fn exception_names_survive_masking() {
        let masked = mask_entities("InformativeSocketException: No such host is known.");
        assert!(masked.contains("InformativeSocketException:"));
    }

    #[test]
    fn punctuation_preserved_around_masks() {
        let masked = mask_entities("(11/21/2022)");
        assert_eq!(masked, "(<time>)");
    }

    #[test]
    fn tokenize_splits_dotted_identifiers() {
        let toks = tokenize("System.IO.IOException at TcpClientFactory.Create(...)");
        assert!(toks.contains(&"system".to_string()));
        assert!(toks.contains(&"ioexception".to_string()));
        assert!(toks.contains(&"tcpclientfactory".to_string()));
    }

    #[test]
    fn tokenize_keeps_placeholders() {
        let toks = tokenize("probe from <machine> at <time> count <num>");
        assert!(toks.contains(&"<machine>".to_string()));
        assert!(toks.contains(&"<time>".to_string()));
        assert!(toks.contains(&"<num>".to_string()));
    }

    #[test]
    fn tokenize_handles_unclosed_angle() {
        let toks = tokenize("a < b and a <b");
        assert_eq!(toks, vec!["a", "b", "and", "a"]);
    }

    #[test]
    fn masking_is_idempotent() {
        let once = mask_entities("NAMPR03MB1234 at 2:04:20");
        let twice = mask_entities(&once);
        assert_eq!(once, twice);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn mask_entities_is_idempotent(s in "[ -~]{0,120}") {
            let once = mask_entities(&s);
            prop_assert_eq!(mask_entities(&once), once.clone());
        }

        #[test]
        fn normalize_is_idempotent(s in "[ -~\\n\\t]{0,120}") {
            let once = normalize(&s);
            prop_assert_eq!(normalize(&once), once.clone());
        }

        #[test]
        fn tokenize_yields_no_empty_tokens(s in "[ -~]{0,160}") {
            for tok in tokenize(&normalize(&s)) {
                prop_assert!(!tok.is_empty());
            }
        }

        #[test]
        fn normalize_never_grows_whitespace(s in "[ -~ ]{0,160}") {
            let out = normalize(&s);
            prop_assert!(!out.contains("  "), "double space in {out:?}");
            prop_assert!(!out.starts_with(' '));
            prop_assert!(!out.ends_with(' '));
        }
    }
}
