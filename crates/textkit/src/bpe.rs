//! A byte-pair-encoding tokenizer — the reproduction's `tiktoken`.
//!
//! The paper uses tiktoken only to *count* tokens (the summarizer's
//! 120–140-word budget, the prompt-length limits) and the simulated LLM
//! needs a stable subword id space. This is a classic BPE trained on a
//! corpus: start from characters, repeatedly merge the most frequent
//! adjacent symbol pair until the target vocabulary size is reached.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// End-of-word marker appended during training/encoding, so that merges do
/// not cross word boundaries and suffixes tokenize consistently.
const EOW: char = '\u{1}';

/// A trained BPE tokenizer.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BpeTokenizer {
    /// Symbol table: id → symbol string.
    symbols: Vec<String>,
    /// Reverse lookup: symbol string → id.
    ids: BTreeMap<String, u32>,
    /// Ordered merge rules: (left id, right id) → merged id, by priority.
    merges: HashMap<(u32, u32), (u32, u32)>,
}

impl BpeTokenizer {
    /// Trains a tokenizer on `corpus`, stopping at `vocab_size` symbols or
    /// when no pair occurs at least twice.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size` is zero.
    pub fn train(corpus: &[String], vocab_size: usize) -> Self {
        assert!(vocab_size > 0, "vocab_size must be positive");
        let mut tok = BpeTokenizer::default();

        // Word frequency table over lowercased whitespace words.
        let mut word_freq: BTreeMap<String, u64> = BTreeMap::new();
        for doc in corpus {
            for w in doc.split_whitespace() {
                *word_freq.entry(w.to_lowercase()).or_insert(0) += 1;
            }
        }

        // Seed the symbol table with single characters (+ EOW).
        let mut char_set: Vec<char> = word_freq
            .keys()
            .flat_map(|w| w.chars())
            .collect::<std::collections::BTreeSet<char>>()
            .into_iter()
            .collect();
        char_set.push(EOW);
        for c in char_set {
            tok.intern(c.to_string());
        }

        // Represent each distinct word as a symbol-id sequence.
        let mut words: Vec<(Vec<u32>, u64)> = word_freq
            .iter()
            .map(|(w, f)| {
                let mut seq: Vec<u32> = w.chars().map(|c| tok.ids[&c.to_string()]).collect();
                seq.push(tok.ids[&EOW.to_string()]);
                (seq, *f)
            })
            .collect();

        let mut priority = 0u32;
        while tok.symbols.len() < vocab_size {
            // Count adjacent pairs.
            let mut pair_freq: HashMap<(u32, u32), u64> = HashMap::new();
            for (seq, f) in &words {
                for win in seq.windows(2) {
                    *pair_freq.entry((win[0], win[1])).or_insert(0) += f;
                }
            }
            // Deterministic best pair: max frequency, ties by pair ids.
            let Some((&best_pair, &best_freq)) = pair_freq
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            else {
                break;
            };
            if best_freq < 2 {
                break;
            }
            let merged_sym = format!(
                "{}{}",
                tok.symbols[best_pair.0 as usize], tok.symbols[best_pair.1 as usize]
            );
            let merged_id = tok.intern(merged_sym);
            tok.merges.insert(best_pair, (priority, merged_id));
            priority += 1;

            // Apply the merge to every word.
            for (seq, _) in &mut words {
                let mut out = Vec::with_capacity(seq.len());
                let mut i = 0;
                while i < seq.len() {
                    if i + 1 < seq.len() && (seq[i], seq[i + 1]) == best_pair {
                        out.push(merged_id);
                        i += 2;
                    } else {
                        out.push(seq[i]);
                        i += 1;
                    }
                }
                *seq = out;
            }
        }
        tok
    }

    fn intern(&mut self, sym: String) -> u32 {
        if let Some(&id) = self.ids.get(&sym) {
            return id;
        }
        let id = self.symbols.len() as u32;
        self.symbols.push(sym.clone());
        self.ids.insert(sym, id);
        id
    }

    /// Number of symbols in the vocabulary.
    pub fn vocab_size(&self) -> usize {
        self.symbols.len()
    }

    /// Encodes `text` into symbol ids. Unknown characters are skipped.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::new();
        for word in text.split_whitespace() {
            let lower = word.to_lowercase();
            let mut seq: Vec<u32> = lower
                .chars()
                .filter_map(|c| self.ids.get(&c.to_string()).copied())
                .collect();
            if let Some(&eow) = self.ids.get(&EOW.to_string()) {
                seq.push(eow);
            }
            // Repeatedly apply the highest-priority applicable merge.
            loop {
                let mut best: Option<(u32, usize, u32)> = None; // (priority, pos, merged)
                for (pos, win) in seq.windows(2).enumerate() {
                    if let Some(&(prio, merged)) = self.merges.get(&(win[0], win[1])) {
                        if best.is_none_or(|(bp, _, _)| prio < bp) {
                            best = Some((prio, pos, merged));
                        }
                    }
                }
                let Some((_, pos, merged)) = best else { break };
                seq[pos] = merged;
                seq.remove(pos + 1);
            }
            out.extend(seq);
        }
        out
    }

    /// Number of BPE tokens in `text` — the reproduction's token counter.
    pub fn count_tokens(&self, text: &str) -> usize {
        self.encode(text).len()
    }

    /// Decodes ids back to a string (words separated by single spaces).
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut out = String::new();
        for &id in ids {
            if let Some(sym) = self.symbols.get(id as usize) {
                for c in sym.chars() {
                    if c == EOW {
                        out.push(' ');
                    } else {
                        out.push(c);
                    }
                }
            }
        }
        out.trim_end().to_string()
    }

    /// The symbol string of id, if valid.
    pub fn symbol(&self, id: u32) -> Option<&str> {
        self.symbols.get(id as usize).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        vec![
            "the transport process failed failed failed".to_string(),
            "transport process restarted".to_string(),
            "socket socket socket exception in transport".to_string(),
        ]
    }

    #[test]
    fn training_reaches_target_or_exhausts_merges() {
        let tok = BpeTokenizer::train(&corpus(), 200);
        assert!(tok.vocab_size() <= 200);
        assert!(tok.vocab_size() > 20);
    }

    #[test]
    fn frequent_words_compress_to_few_tokens() {
        let tok = BpeTokenizer::train(&corpus(), 300);
        let frequent = tok.count_tokens("transport");
        let rare = tok.count_tokens("zzzgibberishzzz");
        assert!(
            frequent < "transport".len(),
            "frequent word should merge below character count, got {frequent}"
        );
        // Rare word stays near character granularity (chars present in corpus).
        assert!(rare >= frequent);
    }

    #[test]
    fn encode_decode_round_trips_known_text() {
        let tok = BpeTokenizer::train(&corpus(), 300);
        let text = "transport process failed";
        let ids = tok.encode(text);
        assert_eq!(tok.decode(&ids), text);
    }

    #[test]
    fn unknown_characters_are_skipped_not_panicking() {
        let tok = BpeTokenizer::train(&corpus(), 100);
        let ids = tok.encode("Ω≈ç√ transport");
        assert!(!ids.is_empty());
        assert!(tok.decode(&ids).contains("transport"));
    }

    #[test]
    fn encoding_is_case_insensitive() {
        let tok = BpeTokenizer::train(&corpus(), 300);
        assert_eq!(tok.encode("Transport"), tok.encode("transport"));
    }

    #[test]
    fn count_tokens_is_additive_over_words() {
        let tok = BpeTokenizer::train(&corpus(), 300);
        let a = tok.count_tokens("transport");
        let b = tok.count_tokens("process");
        assert_eq!(tok.count_tokens("transport process"), a + b);
    }

    #[test]
    #[should_panic(expected = "vocab_size must be positive")]
    fn zero_vocab_panics() {
        let _ = BpeTokenizer::train(&corpus(), 0);
    }

    #[test]
    fn training_is_deterministic() {
        let a = BpeTokenizer::train(&corpus(), 150);
        let b = BpeTokenizer::train(&corpus(), 150);
        assert_eq!(
            a.encode("transport process failed"),
            b.encode("transport process failed")
        );
        assert_eq!(a.vocab_size(), b.vocab_size());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn encode_decode_round_trips_corpus_alphabet(words in proptest::collection::vec("[a-z]{1,8}", 1..8)) {
            let corpus = vec![words.join(" "), "the quick brown fox".to_string()];
            let tok = BpeTokenizer::train(&corpus, 200);
            let text = words.join(" ");
            let ids = tok.encode(&text);
            prop_assert_eq!(tok.decode(&ids), text);
        }

        #[test]
        fn token_count_is_monotone_under_concat(a in "[a-z ]{1,40}", b in "[a-z ]{1,40}") {
            let corpus = vec![a.clone(), b.clone()];
            let tok = BpeTokenizer::train(&corpus, 150);
            let joined = format!("{a} {b}");
            prop_assert!(tok.count_tokens(&joined) <= tok.count_tokens(&a) + tok.count_tokens(&b) + 1);
        }
    }
}
