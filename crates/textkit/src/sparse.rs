//! Sparse vectors with the operations the pipeline needs.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A sparse vector: sorted `(index, value)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    entries: Vec<(usize, f64)>,
}

impl SparseVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        SparseVector {
            entries: Vec::new(),
        }
    }

    /// Builds a vector from an accumulation map.
    pub fn from_map(map: BTreeMap<usize, f64>) -> Self {
        SparseVector {
            entries: map.into_iter().filter(|(_, v)| *v != 0.0).collect(),
        }
    }

    /// Builds from unsorted pairs, summing duplicates.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (usize, f64)>) -> Self {
        let mut map: BTreeMap<usize, f64> = BTreeMap::new();
        for (i, v) in pairs {
            *map.entry(i).or_insert(0.0) += v;
        }
        Self::from_map(map)
    }

    /// The nonzero entries, sorted by index.
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Number of nonzero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True if the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Value at `index` (0.0 if absent).
    pub fn get(&self, index: usize) -> f64 {
        self.entries
            .binary_search_by_key(&index, |(i, _)| *i)
            .map(|pos| self.entries[pos].1)
            .unwrap_or(0.0)
    }

    /// Dot product with another sparse vector.
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j, mut acc) = (0, 0, 0.0);
        while i < self.entries.len() && j < other.entries.len() {
            let (ia, va) = self.entries[i];
            let (ib, vb) = other.entries[j];
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += va * vb;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|(_, v)| v * v).sum::<f64>().sqrt()
    }

    /// Cosine similarity; 0.0 when either vector is zero.
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Euclidean distance to another sparse vector.
    pub fn euclidean(&self, other: &SparseVector) -> f64 {
        let mut acc = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            let a = self.entries.get(i);
            let b = other.entries.get(j);
            match (a, b) {
                (Some(&(ia, va)), Some(&(ib, vb))) => match ia.cmp(&ib) {
                    std::cmp::Ordering::Less => {
                        acc += va * va;
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        acc += vb * vb;
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        acc += (va - vb) * (va - vb);
                        i += 1;
                        j += 1;
                    }
                },
                (Some(&(_, va)), None) => {
                    acc += va * va;
                    i += 1;
                }
                (None, Some(&(_, vb))) => {
                    acc += vb * vb;
                    j += 1;
                }
                (None, None) => break,
            }
        }
        acc.sqrt()
    }

    /// Scales all entries in place.
    pub fn scale(&mut self, factor: f64) {
        for (_, v) in &mut self.entries {
            *v *= factor;
        }
    }

    /// L2-normalizes in place; zero vectors stay zero.
    pub fn l2_normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            self.scale(1.0 / n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(usize, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn from_pairs_sums_duplicates_and_drops_zeros() {
        let x = v(&[(3, 1.0), (1, 2.0), (3, 2.0), (5, 0.0)]);
        assert_eq!(x.entries(), &[(1, 2.0), (3, 3.0)]);
        assert_eq!(x.nnz(), 2);
        assert_eq!(x.get(3), 3.0);
        assert_eq!(x.get(4), 0.0);
    }

    #[test]
    fn dot_matches_dense_computation() {
        let a = v(&[(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = v(&[(2, 4.0), (5, 1.0), (7, 9.0)]);
        assert!((a.dot(&b) - (2.0 * 4.0 + 3.0 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn euclidean_handles_disjoint_support() {
        let a = v(&[(0, 3.0)]);
        let b = v(&[(1, 4.0)]);
        assert!((a.euclidean(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.euclidean(&a), 0.0);
    }

    #[test]
    fn cosine_of_parallel_vectors_is_one() {
        let a = v(&[(1, 1.0), (2, 2.0)]);
        let mut b = a.clone();
        b.scale(3.5);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let a = v(&[(1, 1.0)]);
        let z = SparseVector::new();
        assert_eq!(a.cosine(&z), 0.0);
        assert!(z.is_empty());
    }

    #[test]
    fn l2_normalize_gives_unit_norm() {
        let mut a = v(&[(0, 3.0), (1, 4.0)]);
        a.l2_normalize();
        assert!((a.norm() - 1.0).abs() < 1e-12);
        let mut z = SparseVector::new();
        z.l2_normalize();
        assert!(z.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn sparse_strategy() -> impl Strategy<Value = SparseVector> {
        proptest::collection::vec((0usize..64, -5.0f64..5.0), 0..12)
            .prop_map(SparseVector::from_pairs)
    }

    proptest! {
        #[test]
        fn dot_is_symmetric(a in sparse_strategy(), b in sparse_strategy()) {
            prop_assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-9);
        }

        #[test]
        fn cosine_is_bounded(a in sparse_strategy(), b in sparse_strategy()) {
            let c = a.cosine(&b);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c), "cosine {c}");
        }

        #[test]
        fn euclidean_satisfies_identity_and_symmetry(a in sparse_strategy(), b in sparse_strategy()) {
            prop_assert!(a.euclidean(&a) < 1e-9);
            prop_assert!((a.euclidean(&b) - b.euclidean(&a)).abs() < 1e-9);
        }

        #[test]
        fn euclidean_triangle_inequality(
            a in sparse_strategy(), b in sparse_strategy(), c in sparse_strategy()
        ) {
            prop_assert!(a.euclidean(&c) <= a.euclidean(&b) + b.euclidean(&c) + 1e-9);
        }

        #[test]
        fn l2_normalize_gives_unit_or_zero(a in sparse_strategy()) {
            let mut v = a.clone();
            v.l2_normalize();
            let n = v.norm();
            prop_assert!(n < 1e-9 || (n - 1.0).abs() < 1e-6, "norm {n}");
        }

        #[test]
        fn dot_against_self_is_norm_squared(a in sparse_strategy()) {
            prop_assert!((a.dot(&a) - a.norm() * a.norm()).abs() < 1e-6);
        }
    }
}
