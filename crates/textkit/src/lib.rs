//! Text processing primitives for the RCACopilot reproduction.
//!
//! Diagnostic information is noisy semi-structured text: machine names,
//! GUIDs, timestamps, counters. Everything downstream — the FastText-style
//! embedding model, the TF-IDF features of the XGBoost baseline, and the
//! simulated LLM — shares the primitives in this crate:
//!
//! - [`mod@normalize`]: canonicalization and entity masking (timestamps,
//!   machine names, hex ids, large numbers → placeholder tokens) plus word
//!   tokenization.
//! - [`ngram`]: word and character n-gram extraction with feature hashing.
//! - [`sparse`]: sparse vectors with dot/cosine/Euclidean operations.
//! - [`tfidf`]: a fit/transform TF-IDF vectorizer over a corpus.
//! - [`bpe`]: a byte-pair-encoding tokenizer (the `tiktoken` substitute)
//!   used for token counting and as the simulated LLM's input space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpe;
pub mod ngram;
pub mod normalize;
pub mod sparse;
pub mod tfidf;

pub use bpe::BpeTokenizer;
pub use ngram::{char_ngrams, hash_token, word_ngrams};
pub use normalize::{mask_entities, normalize, tokenize};
pub use sparse::SparseVector;
pub use tfidf::TfIdfVectorizer;
