//! N-gram extraction and feature hashing.
//!
//! FastText-style models represent a word by the bag of its character
//! n-grams, hashed into a fixed-size bucket table. The hash is FNV-1a —
//! simple, fast, and deterministic across runs, which the reproduction
//! relies on for stable results.

/// FNV-1a 64-bit hash of a string.
pub fn hash_token(token: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET;
    for b in token.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Character n-grams of `word` for all `n` in `min_n..=max_n`, with the
/// FastText convention of angle-bracket word boundaries (`<word>`).
///
/// Returns the n-grams as strings; the whole padded word is *not* included
/// (callers usually add the word token itself separately).
pub fn char_ngrams(word: &str, min_n: usize, max_n: usize) -> Vec<String> {
    let padded: Vec<char> = std::iter::once('<')
        .chain(word.chars())
        .chain(std::iter::once('>'))
        .collect();
    let mut grams = Vec::new();
    for n in min_n..=max_n {
        if padded.len() < n {
            break;
        }
        for start in 0..=(padded.len() - n) {
            grams.push(padded[start..start + n].iter().collect());
        }
    }
    grams
}

/// Word n-grams (as joined strings with `_`) for all `n` in `1..=max_n`.
pub fn word_ngrams(tokens: &[String], max_n: usize) -> Vec<String> {
    let mut grams = Vec::new();
    for n in 1..=max_n {
        if tokens.len() < n {
            break;
        }
        for start in 0..=(tokens.len() - n) {
            grams.push(tokens[start..start + n].join("_"));
        }
    }
    grams
}

/// Maps a token to a bucket index in `0..buckets`.
pub fn bucket_of(token: &str, buckets: usize) -> usize {
    debug_assert!(buckets > 0, "bucket count must be positive");
    (hash_token(token) % buckets as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_deterministic_and_spreads() {
        assert_eq!(hash_token("abc"), hash_token("abc"));
        assert_ne!(hash_token("abc"), hash_token("abd"));
        assert_ne!(hash_token(""), hash_token("a"));
    }

    #[test]
    fn char_ngrams_use_boundaries() {
        let grams = char_ngrams("cat", 3, 3);
        assert_eq!(grams, vec!["<ca", "cat", "at>"]);
    }

    #[test]
    fn char_ngrams_multiple_sizes() {
        let grams = char_ngrams("io", 2, 4);
        // Padded: < i o >  (len 4).
        assert!(grams.contains(&"<i".to_string()));
        assert!(grams.contains(&"io>".to_string()));
        assert!(grams.contains(&"<io>".to_string()));
    }

    #[test]
    fn char_ngrams_short_word_does_not_panic() {
        let grams = char_ngrams("a", 3, 6);
        assert_eq!(grams, vec!["<a>"]);
        let empty = char_ngrams("", 3, 6);
        assert!(empty.is_empty() || empty == vec!["<>".to_string()]);
    }

    #[test]
    fn word_ngrams_join_with_underscore() {
        let toks: Vec<String> = ["udp", "socket", "count"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let grams = word_ngrams(&toks, 2);
        assert!(grams.contains(&"udp".to_string()));
        assert!(grams.contains(&"udp_socket".to_string()));
        assert!(grams.contains(&"socket_count".to_string()));
        assert_eq!(grams.len(), 3 + 2);
    }

    #[test]
    fn buckets_are_in_range() {
        for tok in ["a", "b", "winsock", "system.io"] {
            assert!(bucket_of(tok, 97) < 97);
        }
    }
}
