//! TF-IDF vectorization over a fitted corpus vocabulary.

use crate::normalize::{mask_entities, normalize, tokenize};
use crate::sparse::SparseVector;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fit/transform TF-IDF vectorizer.
///
/// `fit` learns the vocabulary and document frequencies from a corpus;
/// `transform` maps documents to L2-normalized TF-IDF vectors. Tokens
/// outside the fitted vocabulary are ignored, mirroring scikit-learn.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TfIdfVectorizer {
    vocab: BTreeMap<String, usize>,
    idf: Vec<f64>,
    documents_fitted: usize,
    min_df: usize,
    mask: bool,
}

impl TfIdfVectorizer {
    /// Creates a vectorizer keeping tokens with document frequency
    /// `>= min_df`, masking per-incident entities when `mask` is set.
    pub fn new(min_df: usize, mask: bool) -> Self {
        TfIdfVectorizer {
            vocab: BTreeMap::new(),
            idf: Vec::new(),
            documents_fitted: 0,
            min_df: min_df.max(1),
            mask,
        }
    }

    fn tokens_of(&self, doc: &str) -> Vec<String> {
        let text = if self.mask {
            normalize(&mask_entities(doc))
        } else {
            normalize(doc)
        };
        tokenize(&text)
    }

    /// Learns vocabulary and IDF weights from `corpus`.
    pub fn fit(&mut self, corpus: &[String]) {
        let mut df: BTreeMap<String, usize> = BTreeMap::new();
        for doc in corpus {
            let mut seen: Vec<String> = self.tokens_of(doc);
            seen.sort();
            seen.dedup();
            for tok in seen {
                *df.entry(tok).or_insert(0) += 1;
            }
        }
        self.vocab.clear();
        self.idf.clear();
        self.documents_fitted = corpus.len();
        let n = corpus.len() as f64;
        for (tok, count) in df {
            if count >= self.min_df {
                let idx = self.vocab.len();
                self.vocab.insert(tok, idx);
                // Smoothed IDF as in scikit-learn.
                self.idf.push(((1.0 + n) / (1.0 + count as f64)).ln() + 1.0);
            }
        }
    }

    /// Vocabulary size after fitting.
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// Number of documents the vectorizer was fitted on.
    pub fn documents_fitted(&self) -> usize {
        self.documents_fitted
    }

    /// Index of a token in the fitted vocabulary.
    pub fn token_index(&self, token: &str) -> Option<usize> {
        self.vocab.get(token).copied()
    }

    /// Transforms one document into an L2-normalized TF-IDF vector.
    pub fn transform(&self, doc: &str) -> SparseVector {
        let mut counts: BTreeMap<usize, f64> = BTreeMap::new();
        for tok in self.tokens_of(doc) {
            if let Some(&idx) = self.vocab.get(&tok) {
                *counts.entry(idx).or_insert(0.0) += 1.0;
            }
        }
        let mut v = SparseVector::from_pairs(
            counts
                .into_iter()
                .map(|(idx, tf)| (idx, tf * self.idf[idx])),
        );
        v.l2_normalize();
        v
    }

    /// Fits on `corpus` and transforms every document.
    pub fn fit_transform(&mut self, corpus: &[String]) -> Vec<SparseVector> {
        self.fit(corpus);
        corpus.iter().map(|d| self.transform(d)).collect()
    }

    /// Indices of the `n` most *common* vocabulary terms (lowest IDF).
    /// Used to build dense truncated feature vectors for tree models.
    pub fn top_features_by_df(&self, n: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.idf.len()).collect();
        order.sort_by(|&a, &b| {
            self.idf[a]
                .partial_cmp(&self.idf[b])
                .expect("finite idf")
                .then(a.cmp(&b))
        });
        order.truncate(n);
        order
    }

    /// Projects a sparse vector onto the given feature indices, densely.
    pub fn project_dense(vector: &SparseVector, features: &[usize]) -> Vec<f32> {
        features.iter().map(|&i| vector.get(i) as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        vec![
            "udp socket exhausted on hub".to_string(),
            "udp port count high on hub".to_string(),
            "disk full io exception".to_string(),
        ]
    }

    #[test]
    fn fit_builds_vocab_with_min_df() {
        let mut v = TfIdfVectorizer::new(1, false);
        v.fit(&corpus());
        assert!(v.vocab_len() > 5);
        assert!(v.token_index("udp").is_some());
        assert_eq!(v.documents_fitted(), 3);

        let mut v2 = TfIdfVectorizer::new(2, false);
        v2.fit(&corpus());
        // Only "udp", "on", "hub" appear in >= 2 documents.
        assert_eq!(v2.vocab_len(), 3);
        assert!(v2.token_index("disk").is_none());
    }

    #[test]
    fn transform_is_unit_norm_and_ignores_oov() {
        let mut v = TfIdfVectorizer::new(1, false);
        v.fit(&corpus());
        let x = v.transform("udp socket banana");
        assert!((x.norm() - 1.0).abs() < 1e-9);
        // OOV "banana" contributes nothing.
        let y = v.transform("banana");
        assert!(y.is_empty());
    }

    #[test]
    fn similar_documents_are_closer() {
        let mut v = TfIdfVectorizer::new(1, false);
        let docs = corpus();
        let vecs = v.fit_transform(&docs);
        let sim_same_topic = vecs[0].cosine(&vecs[1]);
        let sim_diff_topic = vecs[0].cosine(&vecs[2]);
        assert!(sim_same_topic > sim_diff_topic);
    }

    #[test]
    fn rare_terms_weigh_more_than_common() {
        let mut v = TfIdfVectorizer::new(1, false);
        v.fit(&corpus());
        let x = v.transform("udp disk");
        let udp = x.get(v.token_index("udp").unwrap());
        let disk = x.get(v.token_index("disk").unwrap());
        // "disk" appears in one doc, "udp" in two: disk has higher IDF.
        assert!(disk > udp);
    }

    #[test]
    fn masking_mode_masks_machines() {
        let mut v = TfIdfVectorizer::new(1, true);
        v.fit(&["probe from NAMPR03MB1234 failed".to_string()]);
        assert!(v.token_index("<machine>").is_some());
        assert!(v.token_index("nampr03mb1234").is_none());
    }
}
