//! Nearest-neighbor indexes over dense embeddings.
//!
//! The retrieval stage needs Euclidean nearest neighbors (paper §4.2.2).
//! [`BruteForceIndex`] is exact; [`IvfIndex`] adds a k-means coarse
//! quantizer (inverted file) for larger deployments, trading a little
//! recall for sublinear probing.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Squared Euclidean distance.
fn d2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// An exact nearest-neighbor index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BruteForceIndex {
    ids: Vec<u64>,
    vectors: Vec<Vec<f32>>,
}

impl BruteForceIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        BruteForceIndex::default()
    }

    /// Adds a vector under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `vector`'s dimension differs from previously added ones.
    pub fn add(&mut self, id: u64, vector: Vec<f32>) {
        if let Some(first) = self.vectors.first() {
            assert_eq!(first.len(), vector.len(), "dimension mismatch");
        }
        self.ids.push(id);
        self.vectors.push(vector);
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The `k` nearest neighbors of `query` as `(id, euclidean distance)`,
    /// closest first.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<(u64, f32)> {
        let mut hits: Vec<(u64, f32)> = self
            .ids
            .iter()
            .zip(&self.vectors)
            .map(|(&id, v)| (id, d2(query, v)))
            .collect();
        hits.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        hits.truncate(k);
        hits.into_iter().map(|(id, d)| (id, d.sqrt())).collect()
    }
}

/// An inverted-file index: k-means coarse quantizer + per-cell lists.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IvfIndex {
    centroids: Vec<Vec<f32>>,
    cells: Vec<Vec<(u64, Vec<f32>)>>,
    /// Number of cells probed per query.
    nprobe: usize,
}

impl IvfIndex {
    /// Builds an IVF index over `(id, vector)` pairs with `ncells` k-means
    /// cells, probing `nprobe` cells per query.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or `ncells`/`nprobe` is zero.
    pub fn build(items: &[(u64, Vec<f32>)], ncells: usize, nprobe: usize, seed: u64) -> Self {
        assert!(!items.is_empty(), "cannot build an empty IVF index");
        assert!(
            ncells > 0 && nprobe > 0,
            "ncells and nprobe must be positive"
        );
        let ncells = ncells.min(items.len());
        let dim = items[0].1.len();
        let mut rng = SmallRng::seed_from_u64(seed);

        // K-means++ -lite init: random distinct points.
        let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(ncells);
        let mut chosen = std::collections::BTreeSet::new();
        while centroids.len() < ncells {
            let i = rng.gen_range(0..items.len());
            if chosen.insert(i) {
                centroids.push(items[i].1.clone());
            }
        }

        // Lloyd iterations.
        let mut assignment = vec![0usize; items.len()];
        for _ in 0..12 {
            let mut changed = false;
            for (i, (_, v)) in items.iter().enumerate() {
                let best = nearest_centroid(&centroids, v);
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            let mut sums = vec![vec![0.0f32; dim]; ncells];
            let mut counts = vec![0usize; ncells];
            for (i, (_, v)) in items.iter().enumerate() {
                counts[assignment[i]] += 1;
                for (s, x) in sums[assignment[i]].iter_mut().zip(v) {
                    *s += x;
                }
            }
            for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if *count > 0 {
                    for (cv, s) in c.iter_mut().zip(sum) {
                        *cv = s / *count as f32;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let mut cells: Vec<Vec<(u64, Vec<f32>)>> = vec![Vec::new(); ncells];
        for (i, (id, v)) in items.iter().enumerate() {
            cells[assignment[i]].push((*id, v.clone()));
        }
        IvfIndex {
            centroids,
            cells,
            nprobe: nprobe.min(ncells),
        }
    }

    /// Total vectors indexed.
    pub fn len(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }

    /// True if the index holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate `k` nearest neighbors of `query`, closest first.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<(u64, f32)> {
        // Rank cells by centroid distance, probe the closest `nprobe`.
        let mut order: Vec<(usize, f32)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, d2(c, query)))
            .collect();
        order.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        let mut hits: Vec<(u64, f32)> = Vec::new();
        for &(cell, _) in order.iter().take(self.nprobe) {
            for (id, v) in &self.cells[cell] {
                hits.push((*id, d2(v, query)));
            }
        }
        hits.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        hits.truncate(k);
        hits.into_iter().map(|(id, d)| (id, d.sqrt())).collect()
    }
}

fn nearest_centroid(centroids: &[Vec<f32>], v: &[f32]) -> usize {
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = d2(c, v);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_data() -> Vec<(u64, Vec<f32>)> {
        // Three tight clusters around (0,0), (10,0), (0,10).
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        for i in 0..30u64 {
            let (cx, cy) = match i % 3 {
                0 => (0.0, 0.0),
                1 => (10.0, 0.0),
                _ => (0.0, 10.0),
            };
            out.push((
                i,
                vec![cx + rng.gen_range(-0.5..0.5), cy + rng.gen_range(-0.5..0.5)],
            ));
        }
        out
    }

    #[test]
    fn brute_force_returns_exact_neighbors_sorted() {
        let mut idx = BruteForceIndex::new();
        for (id, v) in cluster_data() {
            idx.add(id, v);
        }
        let hits = idx.knn(&[0.0, 0.0], 5);
        assert_eq!(hits.len(), 5);
        for w in hits.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // All five neighbors come from the (0,0) cluster (ids % 3 == 0).
        for (id, d) in &hits {
            assert_eq!(id % 3, 0, "wrong cluster for id {id}");
            assert!(*d < 2.0);
        }
    }

    #[test]
    fn knn_handles_k_larger_than_len() {
        let mut idx = BruteForceIndex::new();
        idx.add(1, vec![0.0]);
        idx.add(2, vec![1.0]);
        let hits = idx.knn(&[0.0], 10);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mixed_dimensions_panic() {
        let mut idx = BruteForceIndex::new();
        idx.add(1, vec![0.0, 1.0]);
        idx.add(2, vec![0.0]);
    }

    #[test]
    fn ivf_matches_brute_force_on_clustered_data() {
        let data = cluster_data();
        let ivf = IvfIndex::build(&data, 3, 2, 9);
        assert_eq!(ivf.len(), data.len());
        let mut bf = BruteForceIndex::new();
        for (id, v) in &data {
            bf.add(*id, v.clone());
        }
        let q = [9.8f32, 0.2];
        let exact: Vec<u64> = bf.knn(&q, 5).into_iter().map(|(id, _)| id).collect();
        let approx: Vec<u64> = ivf.knn(&q, 5).into_iter().map(|(id, _)| id).collect();
        assert_eq!(
            exact, approx,
            "well-separated clusters: IVF should be exact"
        );
    }

    #[test]
    fn ivf_distances_are_euclidean_not_squared() {
        let data = vec![(1u64, vec![0.0f32, 0.0]), (2, vec![3.0, 4.0])];
        let ivf = IvfIndex::build(&data, 1, 1, 0);
        let hits = ivf.knn(&[0.0, 0.0], 2);
        assert!((hits[1].1 - 5.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_ivf_build_panics() {
        let _ = IvfIndex::build(&[], 4, 1, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn brute_force_matches_naive_scan(
            points in proptest::collection::vec(
                proptest::collection::vec(-10.0f32..10.0, 2..=2), 2..25),
            query in proptest::collection::vec(-10.0f32..10.0, 2..=2),
            k in 1usize..6
        ) {
            let mut idx = BruteForceIndex::new();
            for (i, p) in points.iter().enumerate() {
                idx.add(i as u64, p.clone());
            }
            let hits = idx.knn(&query, k);
            // Naive: sort all distances, compare the distance multiset.
            let mut naive: Vec<f32> = points
                .iter()
                .map(|p| {
                    p.iter()
                        .zip(&query)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f32>()
                        .sqrt()
                })
                .collect();
            naive.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (hit, expected) in hits.iter().zip(naive.iter()) {
                prop_assert!((hit.1 - expected).abs() < 1e-4);
            }
        }
    }
}
