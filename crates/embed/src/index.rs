//! Nearest-neighbor indexes over dense embeddings.
//!
//! The retrieval stage needs Euclidean nearest neighbors (paper §4.2.2).
//! [`BruteForceIndex`] is exact; [`IvfIndex`] adds a k-means coarse
//! quantizer (inverted file) for larger deployments, trading a little
//! recall for sublinear probing. [`BucketedIndex`] is the *online* exact
//! index behind the serving plane: vectors are routed into metric cells
//! that split as they grow, queries prune cells with triangle-inequality
//! lower bounds, and [`EpochIndex`] layers cheap epoch-snapshotted read
//! views on top so concurrent readers never observe a half-applied
//! insert.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Squared Euclidean distance.
fn d2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Structural footprint report of an index: what the bench JSON and the
/// serving report surface so memory regressions are visible.
///
/// `cells` counts IVF/bucketed cells, `layers` HNSW graph layers, and
/// `edges` HNSW adjacency entries; fields that don't apply to a given
/// index are zero. `bytes` is an estimate of resident size from the
/// structure's own accounting, not an allocator measurement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct IndexStats {
    /// Indexed vectors.
    pub vectors: usize,
    /// Vector dimensionality (0 while empty).
    pub dim: usize,
    /// Metric/quantizer cells (bucketed, IVF).
    pub cells: usize,
    /// Graph layers (HNSW).
    pub layers: usize,
    /// Graph edges (HNSW).
    pub edges: usize,
    /// Estimated resident bytes.
    pub bytes: usize,
}

impl IndexStats {
    /// Folds another report into this one (cross-shard aggregation):
    /// counts add, `dim`/`layers` take the max.
    pub fn merge(&mut self, other: &IndexStats) {
        self.vectors += other.vectors;
        self.dim = self.dim.max(other.dim);
        self.cells += other.cells;
        self.layers = self.layers.max(other.layers);
        self.edges += other.edges;
        self.bytes += other.bytes;
    }
}

/// An exact nearest-neighbor index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BruteForceIndex {
    ids: Vec<u64>,
    vectors: Vec<Vec<f32>>,
}

impl BruteForceIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        BruteForceIndex::default()
    }

    /// Adds a vector under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `vector`'s dimension differs from previously added ones.
    pub fn add(&mut self, id: u64, vector: Vec<f32>) {
        if let Some(first) = self.vectors.first() {
            assert_eq!(first.len(), vector.len(), "dimension mismatch");
        }
        self.ids.push(id);
        self.vectors.push(vector);
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The `k` nearest neighbors of `query` as `(id, euclidean distance)`,
    /// closest first.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<(u64, f32)> {
        let mut hits: Vec<(u64, f32)> = self
            .ids
            .iter()
            .zip(&self.vectors)
            .map(|(&id, v)| (id, d2(query, v)))
            .collect();
        // total_cmp, not partial_cmp: a non-finite distance (degenerate
        // vector upstream) gets a deterministic rank instead of a panic.
        hits.sort_by(|a, b| a.1.total_cmp(&b.1));
        hits.truncate(k);
        hits.into_iter().map(|(id, d)| (id, d.sqrt())).collect()
    }

    /// Structure report (see [`IndexStats`]).
    pub fn stats(&self) -> IndexStats {
        let dim = self.vectors.first().map_or(0, Vec::len);
        IndexStats {
            vectors: self.len(),
            dim,
            cells: 0,
            layers: 0,
            edges: 0,
            bytes: self.len() * (dim * 4 + 8 + std::mem::size_of::<Vec<f32>>()),
        }
    }
}

/// One IVF cell: `(id, vector)` pairs behind an [`Arc`] for cheap
/// copy-on-write snapshots.
type IvfCell = Arc<Vec<(u64, Vec<f32>)>>;

/// An inverted-file index: k-means coarse quantizer + per-cell lists.
///
/// Cells sit behind [`Arc`]s so cloning the index (the epoch-snapshot
/// operation when it backs the online retrieval plane) costs `O(cells)`,
/// and a post-snapshot [`insert`](IvfIndex::insert) pays one
/// copy-on-write of the receiving cell only.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    centroids: Vec<Vec<f32>>,
    cells: Vec<IvfCell>,
    /// Number of cells probed per query.
    nprobe: usize,
}

impl IvfIndex {
    /// Builds an IVF index over `(id, vector)` pairs with `ncells` k-means
    /// cells, probing `nprobe` cells per query.
    ///
    /// Degenerate arguments degrade instead of panicking: an empty
    /// `items` yields an empty index (no centroids, every query answers
    /// empty), and zero `ncells`/`nprobe` are clamped to 1.
    pub fn build(items: &[(u64, Vec<f32>)], ncells: usize, nprobe: usize, seed: u64) -> Self {
        if items.is_empty() {
            return IvfIndex {
                centroids: Vec::new(),
                cells: Vec::new(),
                nprobe: nprobe.max(1),
            };
        }
        let ncells = ncells.max(1).min(items.len());
        let nprobe = nprobe.max(1);
        let dim = items[0].1.len();
        let mut rng = SmallRng::seed_from_u64(seed);

        // K-means++ -lite init: random distinct points.
        let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(ncells);
        let mut chosen = std::collections::BTreeSet::new();
        while centroids.len() < ncells {
            let i = rng.gen_range(0..items.len());
            if chosen.insert(i) {
                centroids.push(items[i].1.clone());
            }
        }

        // Lloyd iterations.
        let mut assignment = vec![0usize; items.len()];
        for _ in 0..12 {
            let mut changed = false;
            for (i, (_, v)) in items.iter().enumerate() {
                let best = nearest_centroid(&centroids, v);
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            let mut sums = vec![vec![0.0f32; dim]; ncells];
            let mut counts = vec![0usize; ncells];
            for (i, (_, v)) in items.iter().enumerate() {
                counts[assignment[i]] += 1;
                for (s, x) in sums[assignment[i]].iter_mut().zip(v) {
                    *s += x;
                }
            }
            for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if *count > 0 {
                    for (cv, s) in c.iter_mut().zip(sum) {
                        *cv = s / *count as f32;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let mut cells: Vec<Vec<(u64, Vec<f32>)>> = vec![Vec::new(); ncells];
        for (i, (id, v)) in items.iter().enumerate() {
            cells[assignment[i]].push((*id, v.clone()));
        }
        IvfIndex {
            centroids,
            cells: cells.into_iter().map(Arc::new).collect(),
            nprobe: nprobe.min(ncells),
        }
    }

    /// Total vectors indexed.
    pub fn len(&self) -> usize {
        self.cells.iter().map(|c| c.len()).sum()
    }

    /// True if the index holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of quantizer cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The default probe width this index was built with.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Appends a vector to its nearest cell without recentering — the
    /// online growth path when IVF backs the serving plane's retrieval
    /// index. The quantizer stays frozen at its build-time centroids, so
    /// routing (and therefore every query answer) is independent of when
    /// snapshots were taken in between.
    ///
    /// On an empty (never built) index the vector seeds a single cell
    /// whose centroid is the vector itself.
    pub fn insert(&mut self, id: u64, vector: Vec<f32>) {
        if self.centroids.is_empty() {
            self.centroids.push(vector.clone());
            self.cells.push(Arc::new(vec![(id, vector)]));
            return;
        }
        let cell = nearest_centroid(&self.centroids, &vector);
        Arc::make_mut(&mut self.cells[cell]).push((id, vector));
    }

    /// Ids of all vectors in the `nprobe` cells whose centroids are
    /// closest to `query`, ranked by true distance (ties by cell scan
    /// order) — the candidate set an exact re-ranker consumes. With
    /// `nprobe >= cell_count` every id is returned: guaranteed 100%
    /// candidate recall, mirroring the HNSW saturation rule.
    pub fn candidates(&self, query: &[f32], nprobe: usize) -> Vec<u64> {
        let mut order: Vec<(usize, f32)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, d2(c, query)))
            .collect();
        order.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let mut hits: Vec<(f32, usize, u64)> = Vec::new();
        for (pos, &(cell, _)) in order.iter().take(nprobe.max(1)).enumerate() {
            for (id, v) in self.cells[cell].iter() {
                hits.push((d2(v, query), pos, *id));
            }
        }
        hits.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        hits.into_iter().map(|(_, _, id)| id).collect()
    }

    /// Approximate `k` nearest neighbors of `query`, closest first,
    /// probing the build-time `nprobe` cells.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<(u64, f32)> {
        // Rank cells by centroid distance, probe the closest `nprobe`.
        let mut order: Vec<(usize, f32)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, d2(c, query)))
            .collect();
        order.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut hits: Vec<(u64, f32)> = Vec::new();
        for &(cell, _) in order.iter().take(self.nprobe) {
            for (id, v) in self.cells[cell].iter() {
                hits.push((*id, d2(v, query)));
            }
        }
        hits.sort_by(|a, b| a.1.total_cmp(&b.1));
        hits.truncate(k);
        hits.into_iter().map(|(id, d)| (id, d.sqrt())).collect()
    }

    /// Structure report (see [`IndexStats`]).
    pub fn stats(&self) -> IndexStats {
        let dim = self.centroids.first().map_or(0, Vec::len);
        let n = self.len();
        IndexStats {
            vectors: n,
            dim,
            cells: self.cells.len(),
            layers: 0,
            edges: 0,
            bytes: (n + self.centroids.len()) * (dim * 4 + 8 + std::mem::size_of::<Vec<f32>>()),
        }
    }
}

/// One vector stored in a [`BucketedIndex`] cell.
#[derive(Debug, Clone, PartialEq)]
struct BucketItem {
    /// Caller-assigned id.
    id: u64,
    /// Insertion sequence number — the tie-break that keeps pruned
    /// queries byte-compatible with [`BruteForceIndex`]'s stable sort.
    seq: u64,
    /// Timestamp in integer seconds ([`BucketedIndex::add_at`]; 0 for
    /// plain [`BucketedIndex::add`]). Kept as an integer so the cell
    /// time-range bounds below are *exact* — a float roundtrip could
    /// overstate a Δt and wrongly prune a boundary entry.
    t: u64,
    vector: Vec<f32>,
}

/// One metric cell: a centroid, a covering radius, and its vectors.
///
/// `items` sits behind an [`Arc`] so cloning the whole index (the epoch
/// snapshot operation) costs `O(cells)`, not `O(vectors)`; a writer that
/// touches a shared cell pays one copy-on-write of that cell only.
#[derive(Debug, Clone)]
struct Cell {
    centroid: Vec<f32>,
    /// Upper bound (in squared-distance-free euclidean terms) on the
    /// distance from `centroid` to any item in the cell. Only grows on
    /// insert; splits recompute it exactly.
    radius: f32,
    /// Earliest item timestamp in the cell (seconds; `u64::MAX` while
    /// empty). Exact — maintained in integer arithmetic.
    t_min: u64,
    /// Latest item timestamp in the cell (seconds; 0 while empty).
    t_max: u64,
    items: Arc<Vec<BucketItem>>,
}

impl Cell {
    fn new(centroid: Vec<f32>) -> Self {
        Cell {
            centroid,
            radius: 0.0,
            t_min: u64::MAX,
            t_max: 0,
            items: Arc::new(Vec::new()),
        }
    }
}

/// A view of one cell during a pruned scan, ordered by its spatial
/// lower bound.
#[derive(Debug)]
pub struct CellScan<'a> {
    /// Conservative lower bound (euclidean, padded for f32 rounding) on
    /// the distance from the query to *any* vector in this cell.
    pub lower_bound: f64,
    /// Exact `[t_min, t_max]` timestamp range of the cell's items.
    t_min: u64,
    t_max: u64,
    items: &'a [BucketItem],
}

impl CellScan<'_> {
    /// `(id, vector)` pairs of the cell, insertion order.
    pub fn items(&self) -> impl Iterator<Item = (u64, &[f32])> {
        self.items.iter().map(|it| (it.id, it.vector.as_slice()))
    }

    /// Exact lower bound, in integer seconds, on `|t − item.t|` over the
    /// cell's items: 0 when `t` falls inside the cell's time range,
    /// otherwise the distance to the nearest endpoint. Feeding this
    /// through the same seconds→days conversion the per-entry similarity
    /// uses yields a temporal-decay *upper* bound that is safe against
    /// float rounding (both paths are monotone in the integer Δt).
    pub fn min_abs_dt_secs(&self, t: u64) -> u64 {
        if self.t_min > self.t_max {
            // Empty cell: report an infinite gap so decay bounds it to ~0.
            return u64::MAX;
        }
        if t < self.t_min {
            self.t_min - t
        } else {
            t.saturating_sub(self.t_max)
        }
    }
}

/// Multiplicative + additive padding applied to cell radii when deriving
/// lower bounds: radii are maintained in `f32`, so an unpadded bound
/// could overstate the true `f64` distance by a few ulps and wrongly
/// prune a boundary vector.
const RADIUS_PAD: f64 = 1e-5;

/// An exact nearest-neighbor index that supports *online* growth.
///
/// Vectors are routed to the nearest cell centroid on [`add`]; a cell
/// that outgrows `max_cell` splits around its farthest pair, so `len`
/// and `knn` stay consistent at every point of the insert stream (no
/// build step, no staleness). Queries visit cells in lower-bound order
/// and stop once no remaining cell can beat the current `k`-th hit,
/// which keeps results *identical* to [`BruteForceIndex`] — including
/// tie order — while probing only a fraction of the cells on clustered
/// data.
///
/// [`add`]: BucketedIndex::add
#[derive(Debug, Clone)]
pub struct BucketedIndex {
    cells: Vec<Cell>,
    /// Split threshold: a cell holding more than this many vectors is
    /// re-bucketed into two cells.
    max_cell: usize,
    len: usize,
    next_seq: u64,
}

impl Default for BucketedIndex {
    fn default() -> Self {
        BucketedIndex::new(64)
    }
}

impl BucketedIndex {
    /// Creates an empty index with the given cell-split threshold.
    ///
    /// # Panics
    ///
    /// Panics if `max_cell` is zero.
    pub fn new(max_cell: usize) -> Self {
        assert!(max_cell > 0, "max_cell must be positive");
        BucketedIndex {
            cells: Vec::new(),
            max_cell,
            len: 0,
            next_seq: 0,
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of cells currently backing the index.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Adds a vector under `id` with timestamp 0 (no temporal metadata);
    /// see [`add_at`](BucketedIndex::add_at).
    ///
    /// # Panics
    ///
    /// Panics if `vector`'s dimension differs from previously added ones.
    pub fn add(&mut self, id: u64, vector: Vec<f32>) {
        self.add_at(id, vector, 0);
    }

    /// Adds a vector under `id` stamped with `t_secs`, splitting the
    /// receiving cell if it outgrows the threshold. The timestamp feeds
    /// each cell's exact `[t_min, t_max]` range, which
    /// [`CellScan::min_abs_dt_secs`] exposes so temporal-decay searches
    /// can skip cells that are too *old* as well as too far.
    ///
    /// # Panics
    ///
    /// Panics if `vector`'s dimension differs from previously added ones.
    pub fn add_at(&mut self, id: u64, vector: Vec<f32>, t_secs: u64) {
        if let Some(first) = self.cells.first() {
            assert_eq!(first.centroid.len(), vector.len(), "dimension mismatch");
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if self.cells.is_empty() {
            self.cells.push(Cell::new(vector.clone()));
        }
        let best = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| (i, d2(&c.centroid, &vector)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|(i, _)| i)
            // A cell was pushed above if none existed, so this is only a
            // defensive fallback, not a reachable panic.
            .unwrap_or(0);
        let cell = &mut self.cells[best];
        let dist = d2(&cell.centroid, &vector).sqrt();
        cell.radius = cell.radius.max(dist);
        cell.t_min = cell.t_min.min(t_secs);
        cell.t_max = cell.t_max.max(t_secs);
        Arc::make_mut(&mut cell.items).push(BucketItem {
            id,
            seq,
            t: t_secs,
            vector,
        });
        if self.cells[best].items.len() > self.max_cell {
            self.split_cell(best);
        }
    }

    /// Splits cell `idx` around its farthest pair of items. A cell whose
    /// items are all identical is left alone (splitting cannot shrink it).
    fn split_cell(&mut self, idx: usize) {
        let items = &self.cells[idx].items;
        let (mut a, mut b, mut far) = (0usize, 0usize, 0.0f32);
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                let d = d2(&items[i].vector, &items[j].vector);
                if d > far {
                    far = d;
                    a = i;
                    b = j;
                }
            }
        }
        if far <= 0.0 {
            return; // degenerate cell: every vector identical
        }
        let (ca, cb) = (items[a].vector.clone(), items[b].vector.clone());
        let mut left: Vec<BucketItem> = Vec::new();
        let mut right: Vec<BucketItem> = Vec::new();
        for it in items.iter() {
            if d2(&it.vector, &ca) <= d2(&it.vector, &cb) {
                left.push(it.clone());
            } else {
                right.push(it.clone());
            }
        }
        self.cells[idx] = rebuild_cell(ca, left);
        self.cells.push(rebuild_cell(cb, right));
    }

    /// Cells ordered by their conservative spatial lower-bound distance
    /// to `query` — the raw material for bound-pruned searches layered
    /// on top of this index (e.g. temporal-decay retrieval).
    pub fn prune_scan(&self, query: &[f32]) -> Vec<CellScan<'_>> {
        let mut scans: Vec<CellScan<'_>> = self
            .cells
            .iter()
            .map(|c| {
                let dc = d2_f64(&c.centroid, query).sqrt();
                let pad = c.radius as f64 * (1.0 + RADIUS_PAD) + RADIUS_PAD;
                CellScan {
                    lower_bound: (dc - pad).max(0.0),
                    t_min: c.t_min,
                    t_max: c.t_max,
                    items: &c.items,
                }
            })
            .collect();
        scans.sort_by(|a, b| a.lower_bound.total_cmp(&b.lower_bound));
        scans
    }

    /// The cell-split threshold this index was built with.
    pub fn max_cell(&self) -> usize {
        self.max_cell
    }

    /// A compacted rebuild: every vector is re-bucketed by farthest-pair
    /// bisection into fresh cells with tight mean centroids and exact
    /// radii, erasing the fragmentation (stale centroids, inflated radii,
    /// unbalanced cells) that a long stream of incremental splits
    /// accumulates. Ids and insertion sequence numbers are preserved, and
    /// since both [`knn`](BucketedIndex::knn) and
    /// [`prune_scan`](BucketedIndex::prune_scan)-based searches are exact
    /// with seq tie-breaks, every query answers byte-identically on the
    /// compacted index (property-tested in `rcacopilot-core`).
    pub fn compacted(&self) -> BucketedIndex {
        let mut items: Vec<BucketItem> = self
            .cells
            .iter()
            .flat_map(|c| c.items.iter().cloned())
            .collect();
        items.sort_by_key(|it| it.seq);
        let mut cells = Vec::new();
        let mut stack = vec![items];
        while let Some(items) = stack.pop() {
            if items.is_empty() {
                continue;
            }
            if items.len() <= self.max_cell {
                cells.push(rebuild_cell(mean_centroid(&items), items));
                continue;
            }
            // Approximate farthest pair by two sweeps: the point farthest
            // from an arbitrary anchor, then the point farthest from it.
            let a = farthest_from(&items, &items[0].vector);
            let b = farthest_from(&items, &items[a].vector);
            if d2(&items[a].vector, &items[b].vector) <= 0.0 {
                // Every vector identical: bisection cannot make progress.
                cells.push(rebuild_cell(items[0].vector.clone(), items));
                continue;
            }
            let (ca, cb) = (items[a].vector.clone(), items[b].vector.clone());
            let mut left = Vec::new();
            let mut right = Vec::new();
            for it in items {
                if d2(&it.vector, &ca) <= d2(&it.vector, &cb) {
                    left.push(it);
                } else {
                    right.push(it);
                }
            }
            stack.push(left);
            stack.push(right);
        }
        BucketedIndex {
            cells,
            max_cell: self.max_cell,
            len: self.len,
            next_seq: self.next_seq,
        }
    }

    /// The `k` nearest neighbors of `query` as `(id, euclidean distance)`,
    /// closest first — exactly [`BruteForceIndex::knn`]'s answer, tie
    /// order included.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<(u64, f32)> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        let mut hits: Vec<(f32, u64, u64)> = Vec::new(); // (d2, seq, id)
        let mut kth: f64 = f64::INFINITY;
        for scan in self.prune_scan(query) {
            if hits.len() >= k && scan.lower_bound * scan.lower_bound > kth {
                break;
            }
            for it in scan.items {
                let d = d2(&it.vector, query);
                hits.push((d, it.seq, it.id));
            }
            hits.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            hits.truncate(k);
            if hits.len() >= k {
                kth = hits[hits.len() - 1].0 as f64;
            }
        }
        hits.into_iter().map(|(d, _, id)| (id, d.sqrt())).collect()
    }

    /// Structure report (see [`IndexStats`]).
    pub fn stats(&self) -> IndexStats {
        let dim = self.cells.first().map_or(0, |c| c.centroid.len());
        IndexStats {
            vectors: self.len,
            dim,
            cells: self.cells.len(),
            layers: 0,
            edges: 0,
            bytes: self.len * (dim * 4 + std::mem::size_of::<BucketItem>())
                + self.cells.len() * (dim * 4 + std::mem::size_of::<Cell>()),
        }
    }
}

/// Arithmetic mean of the item vectors (compaction centroid).
fn mean_centroid(items: &[BucketItem]) -> Vec<f32> {
    let dim = items[0].vector.len();
    let mut mean = vec![0.0f32; dim];
    for it in items {
        for (m, x) in mean.iter_mut().zip(&it.vector) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= items.len() as f32;
    }
    mean
}

/// Index of the item farthest from `from` (first wins on exact ties, so
/// compaction is deterministic).
fn farthest_from(items: &[BucketItem], from: &[f32]) -> usize {
    let mut best = 0;
    let mut best_d = -1.0f32;
    for (i, it) in items.iter().enumerate() {
        let d = d2(&it.vector, from);
        if d > best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn rebuild_cell(centroid: Vec<f32>, items: Vec<BucketItem>) -> Cell {
    let radius = items
        .iter()
        .map(|it| d2(&it.vector, &centroid).sqrt())
        .fold(0.0f32, f32::max);
    let t_min = items.iter().map(|it| it.t).min().unwrap_or(u64::MAX);
    let t_max = items.iter().map(|it| it.t).max().unwrap_or(0);
    Cell {
        centroid,
        radius,
        t_min,
        t_max,
        items: Arc::new(items),
    }
}

/// Squared euclidean distance accumulated in `f64` (the precision the
/// retrieval similarity formula uses).
fn d2_f64(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum()
}

/// Epoch-snapshotted wrapper around a [`BucketedIndex`].
///
/// The single writer calls [`add`] freely and [`publish`]es an epoch
/// when a batch of inserts should become visible; readers grab
/// [`snapshot`]s — `Arc`-shared immutable views costing `O(cells)` to
/// produce — and query them without any coordination with the writer.
/// This is the index-side half of the serving plane's "each resolved
/// incident immediately becomes a retrieval candidate" contract.
///
/// [`add`]: EpochIndex::add
/// [`publish`]: EpochIndex::publish
/// [`snapshot`]: EpochIndex::snapshot
#[derive(Debug)]
pub struct EpochIndex {
    working: BucketedIndex,
    published: Arc<BucketedIndex>,
    epoch: u64,
}

impl Default for EpochIndex {
    fn default() -> Self {
        EpochIndex::new(64)
    }
}

impl EpochIndex {
    /// Creates an empty epoch index with the given cell-split threshold.
    pub fn new(max_cell: usize) -> Self {
        let working = BucketedIndex::new(max_cell);
        EpochIndex {
            published: Arc::new(working.clone()),
            working,
            epoch: 0,
        }
    }

    /// Adds a vector to the working set. Not visible to snapshots until
    /// the next [`publish`](EpochIndex::publish).
    pub fn add(&mut self, id: u64, vector: Vec<f32>) {
        self.working.add(id, vector);
    }

    /// Like [`add`](EpochIndex::add), stamped with `t_secs` for the
    /// cells' temporal bounds (see [`BucketedIndex::add_at`]).
    pub fn add_at(&mut self, id: u64, vector: Vec<f32>, t_secs: u64) {
        self.working.add_at(id, vector, t_secs);
    }

    /// Vectors in the working set (published or not).
    pub fn len(&self) -> usize {
        self.working.len()
    }

    /// True if the working set is empty.
    pub fn is_empty(&self) -> bool {
        self.working.is_empty()
    }

    /// Seals the current working set into a new published epoch and
    /// returns its number.
    pub fn publish(&mut self) -> u64 {
        self.published = Arc::new(self.working.clone());
        self.epoch += 1;
        self.epoch
    }

    /// Number of the currently published epoch (0 = empty initial epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Overrides the epoch counter — used when restoring an index from a
    /// checkpoint so epoch numbering continues where the journal left off.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The cell-split threshold of the working index.
    pub fn max_cell(&self) -> usize {
        self.working.max_cell()
    }

    /// Compacts the *working* index (see [`BucketedIndex::compacted`]).
    /// Published snapshots are untouched until the next
    /// [`publish`](EpochIndex::publish), which then seals the compacted
    /// structure. Queries answer identically before and after.
    pub fn compact(&mut self) {
        self.working = self.working.compacted();
    }

    /// The latest published read view. Cheap (`O(cells)` was paid at
    /// publish time; this is an `Arc` clone).
    pub fn snapshot(&self) -> Arc<BucketedIndex> {
        Arc::clone(&self.published)
    }
}

fn nearest_centroid(centroids: &[Vec<f32>], v: &[f32]) -> usize {
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = d2(c, v);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_data() -> Vec<(u64, Vec<f32>)> {
        // Three tight clusters around (0,0), (10,0), (0,10).
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        for i in 0..30u64 {
            let (cx, cy) = match i % 3 {
                0 => (0.0, 0.0),
                1 => (10.0, 0.0),
                _ => (0.0, 10.0),
            };
            out.push((
                i,
                vec![cx + rng.gen_range(-0.5..0.5), cy + rng.gen_range(-0.5..0.5)],
            ));
        }
        out
    }

    #[test]
    fn brute_force_returns_exact_neighbors_sorted() {
        let mut idx = BruteForceIndex::new();
        for (id, v) in cluster_data() {
            idx.add(id, v);
        }
        let hits = idx.knn(&[0.0, 0.0], 5);
        assert_eq!(hits.len(), 5);
        for w in hits.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // All five neighbors come from the (0,0) cluster (ids % 3 == 0).
        for (id, d) in &hits {
            assert_eq!(id % 3, 0, "wrong cluster for id {id}");
            assert!(*d < 2.0);
        }
    }

    #[test]
    fn knn_handles_k_larger_than_len() {
        let mut idx = BruteForceIndex::new();
        idx.add(1, vec![0.0]);
        idx.add(2, vec![1.0]);
        let hits = idx.knn(&[0.0], 10);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mixed_dimensions_panic() {
        let mut idx = BruteForceIndex::new();
        idx.add(1, vec![0.0, 1.0]);
        idx.add(2, vec![0.0]);
    }

    #[test]
    fn ivf_matches_brute_force_on_clustered_data() {
        let data = cluster_data();
        let ivf = IvfIndex::build(&data, 3, 2, 9);
        assert_eq!(ivf.len(), data.len());
        let mut bf = BruteForceIndex::new();
        for (id, v) in &data {
            bf.add(*id, v.clone());
        }
        let q = [9.8f32, 0.2];
        let exact: Vec<u64> = bf.knn(&q, 5).into_iter().map(|(id, _)| id).collect();
        let approx: Vec<u64> = ivf.knn(&q, 5).into_iter().map(|(id, _)| id).collect();
        assert_eq!(
            exact, approx,
            "well-separated clusters: IVF should be exact"
        );
    }

    #[test]
    fn ivf_distances_are_euclidean_not_squared() {
        let data = vec![(1u64, vec![0.0f32, 0.0]), (2, vec![3.0, 4.0])];
        let ivf = IvfIndex::build(&data, 1, 1, 0);
        let hits = ivf.knn(&[0.0, 0.0], 2);
        assert!((hits[1].1 - 5.0).abs() < 1e-5);
    }

    #[test]
    fn empty_ivf_build_degrades_to_empty_index() {
        let ivf = IvfIndex::build(&[], 4, 1, 0);
        assert!(ivf.is_empty());
        assert_eq!(ivf.cell_count(), 0);
        assert!(ivf.knn(&[0.0, 0.0], 3).is_empty());
        assert!(ivf.candidates(&[0.0, 0.0], 4).is_empty());
        assert_eq!(ivf.stats(), IndexStats::default());
    }

    #[test]
    fn ivf_recall_at_k_against_brute_force() {
        // 120 points in three well-separated clusters; probing 2 of 6
        // cells must recover nearly all of the true top-10.
        let mut rng = SmallRng::seed_from_u64(17);
        let data: Vec<(u64, Vec<f32>)> = (0..120u64)
            .map(|i| {
                let (cx, cy) = match i % 3 {
                    0 => (0.0, 0.0),
                    1 => (12.0, 0.0),
                    _ => (0.0, 12.0),
                };
                (
                    i,
                    vec![cx + rng.gen_range(-1.0..1.0), cy + rng.gen_range(-1.0..1.0)],
                )
            })
            .collect();
        let ivf = IvfIndex::build(&data, 6, 2, 3);
        let mut bf = BruteForceIndex::new();
        for (id, v) in &data {
            bf.add(*id, v.clone());
        }
        let mut hit = 0usize;
        let mut total = 0usize;
        for _ in 0..25 {
            let q = [rng.gen_range(-2.0..14.0), rng.gen_range(-2.0..14.0)];
            let exact: std::collections::BTreeSet<u64> =
                bf.knn(&q, 10).into_iter().map(|(id, _)| id).collect();
            hit += ivf
                .knn(&q, 10)
                .iter()
                .filter(|(id, _)| exact.contains(id))
                .count();
            total += exact.len();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.9, "IVF recall@10 was {recall}");
        // Saturation: probing every cell recovers the exact id set.
        let q = [3.0f32, 3.0];
        let exact: Vec<u64> = bf
            .knn(&q, data.len())
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        let all = ivf.candidates(&q, ivf.cell_count());
        assert_eq!(all.len(), exact.len());
        assert_eq!(
            all.iter().collect::<std::collections::BTreeSet<_>>(),
            exact.iter().collect::<std::collections::BTreeSet<_>>()
        );
    }

    #[test]
    fn ivf_insert_grows_without_rebuilding() {
        let data = cluster_data();
        let mut ivf = IvfIndex::build(&data[..15], 3, 3, 9);
        let snapshot = ivf.clone();
        for (id, v) in &data[15..] {
            ivf.insert(*id, v.clone());
        }
        assert_eq!(ivf.len(), data.len());
        assert_eq!(snapshot.len(), 15, "COW cells keep clones sealed");
        // Every id is findable when probing all cells.
        let got = ivf.candidates(&[0.0, 0.0], ivf.cell_count());
        assert_eq!(got.len(), data.len());
        // Insert into a never-built index seeds a single cell.
        let mut fresh = IvfIndex::build(&[], 4, 2, 0);
        fresh.insert(77, vec![1.0, 2.0]);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh.knn(&[1.0, 2.0], 1), vec![(77, 0.0)]);
    }

    #[test]
    fn bucketed_matches_brute_force_during_online_growth() {
        // Small split threshold forces several splits over the stream;
        // len/knn must agree with brute force after *every* insert.
        let mut bucketed = BucketedIndex::new(4);
        let mut bf = BruteForceIndex::new();
        for (id, v) in cluster_data() {
            bucketed.add(id, v.clone());
            bf.add(id, v);
            assert_eq!(bucketed.len(), bf.len());
            let q = [1.0f32, 2.0];
            assert_eq!(bucketed.knn(&q, 4), bf.knn(&q, 4));
        }
        assert!(bucketed.cell_count() > 1, "threshold 4 must split");
    }

    #[test]
    fn bucketed_survives_identical_vectors_without_splitting_forever() {
        let mut idx = BucketedIndex::new(2);
        for id in 0..10u64 {
            idx.add(id, vec![1.0, 1.0]);
        }
        assert_eq!(idx.len(), 10);
        // Degenerate cell cannot split; knn still exact, ties in
        // insertion order like brute force.
        let hits = idx.knn(&[1.0, 1.0], 3);
        assert_eq!(
            hits.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn bucketed_knn_handles_k_zero_and_empty() {
        let mut idx = BucketedIndex::new(8);
        assert!(idx.knn(&[0.0], 3).is_empty());
        idx.add(1, vec![0.5]);
        assert!(idx.knn(&[0.0], 0).is_empty());
        assert_eq!(idx.knn(&[0.0], 3).len(), 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn bucketed_mixed_dimensions_panic() {
        let mut idx = BucketedIndex::new(8);
        idx.add(1, vec![0.0, 1.0]);
        idx.add(2, vec![0.0]);
    }

    #[test]
    fn epoch_snapshots_are_stable_until_publish() {
        let mut epochs = EpochIndex::new(4);
        for (id, v) in cluster_data().into_iter().take(10) {
            epochs.add(id, v);
        }
        let before = epochs.snapshot();
        assert_eq!(before.len(), 0, "nothing published yet");
        assert_eq!(epochs.publish(), 1);
        let view = epochs.snapshot();
        assert_eq!(view.len(), 10);
        // Writer keeps inserting; the sealed view must not move.
        for (id, v) in cluster_data().into_iter().skip(10) {
            epochs.add(id, v);
        }
        assert_eq!(view.len(), 10);
        assert_eq!(epochs.len(), 30);
        epochs.publish();
        assert_eq!(epochs.snapshot().len(), 30);
        assert_eq!(epochs.epoch(), 2);
        // Old and new views answer independently.
        let q = [0.0f32, 0.0];
        assert_eq!(view.knn(&q, 3).len(), 3);
        assert_eq!(epochs.snapshot().knn(&q, 3).len(), 3);
    }

    #[test]
    fn compaction_preserves_knn_answers_exactly() {
        let mut idx = BucketedIndex::new(3);
        for (id, v) in cluster_data() {
            idx.add(id, v);
        }
        let compact = idx.compacted();
        assert_eq!(compact.len(), idx.len());
        assert_eq!(compact.max_cell(), idx.max_cell());
        assert!(
            compact.cell_count() <= idx.cell_count(),
            "compaction must not fragment further"
        );
        for q in [[0.0f32, 0.0], [10.0, 0.0], [5.0, 5.0], [-3.0, 12.0]] {
            for k in [1usize, 3, 7, 30] {
                assert_eq!(compact.knn(&q, k), idx.knn(&q, k), "q={q:?} k={k}");
            }
        }
        // Growth continues seamlessly after compaction (seq counter kept).
        let mut grown = compact.clone();
        grown.add(999, vec![0.1, 0.1]);
        assert_eq!(grown.len(), idx.len() + 1);
    }

    #[test]
    fn compaction_of_degenerate_identical_vectors_is_sound() {
        let mut idx = BucketedIndex::new(2);
        for id in 0..9u64 {
            idx.add(id, vec![2.0, 2.0]);
        }
        let compact = idx.compacted();
        assert_eq!(compact.len(), 9);
        assert_eq!(
            compact
                .knn(&[2.0, 2.0], 4)
                .iter()
                .map(|&(id, _)| id)
                .collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "insertion-order ties must survive compaction"
        );
    }

    #[test]
    fn epoch_compact_keeps_published_views_stable() {
        let mut epochs = EpochIndex::new(3);
        for (id, v) in cluster_data() {
            epochs.add(id, v);
        }
        epochs.publish();
        let sealed = epochs.snapshot();
        let before: Vec<(u64, f32)> = sealed.knn(&[0.0, 0.0], 5);
        epochs.compact();
        // Sealed view unchanged; new publishes serve the compacted cells
        // with identical answers.
        assert_eq!(sealed.knn(&[0.0, 0.0], 5), before);
        epochs.publish();
        assert_eq!(epochs.snapshot().knn(&[0.0, 0.0], 5), before);
        epochs.set_epoch(41);
        assert_eq!(epochs.epoch(), 41);
    }

    #[test]
    fn prune_scan_orders_cells_by_lower_bound_and_covers_everything() {
        let mut idx = BucketedIndex::new(4);
        for (id, v) in cluster_data() {
            idx.add(id, v);
        }
        let scans = idx.prune_scan(&[0.0, 0.0]);
        let mut total = 0;
        for w in scans.windows(2) {
            assert!(w[0].lower_bound <= w[1].lower_bound);
        }
        for s in &scans {
            total += s.items().count();
        }
        assert_eq!(total, idx.len());
    }

    #[test]
    fn temporal_ranges_survive_splits_and_compaction() {
        // Small threshold forces splits; every cell's [t_min, t_max]
        // must always cover exactly its own items.
        let check = |idx: &BucketedIndex| {
            for scan in idx.prune_scan(&[0.0, 0.0]) {
                let ts: Vec<u64> = scan.items.iter().map(|it| it.t).collect();
                assert!(!ts.is_empty(), "no empty cells expected");
                assert_eq!(scan.t_min, *ts.iter().min().unwrap());
                assert_eq!(scan.t_max, *ts.iter().max().unwrap());
            }
        };
        let mut idx = BucketedIndex::new(3);
        for (id, v) in cluster_data() {
            idx.add_at(id, v, id * 86_400 % 1_000_000);
            check(&idx);
        }
        assert!(idx.cell_count() > 1);
        check(&idx.compacted());
    }

    #[test]
    fn compaction_of_empty_index_is_a_noop() {
        let idx = BucketedIndex::new(4);
        let compact = idx.compacted();
        assert_eq!(compact.len(), 0);
        assert_eq!(compact.cell_count(), 0);
        assert!(compact.knn(&[0.0], 3).is_empty());
        // Growth still works afterwards (seq counter intact).
        let mut grown = compact;
        grown.add(1, vec![0.5]);
        assert_eq!(grown.knn(&[0.0], 1), vec![(1, 0.5)]);
        // EpochIndex::compact on an empty working set is equally safe.
        let mut epochs = EpochIndex::new(4);
        epochs.compact();
        epochs.publish();
        assert!(epochs.snapshot().is_empty());
    }

    #[test]
    fn compaction_of_a_single_cell_preserves_answers() {
        // max_cell larger than the population: one cell, never split.
        let mut idx = BucketedIndex::new(64);
        for (id, v) in cluster_data().into_iter().take(5) {
            idx.add(id, v);
        }
        assert_eq!(idx.cell_count(), 1);
        let compact = idx.compacted();
        assert_eq!(compact.cell_count(), 1);
        for k in [1usize, 3, 5, 9] {
            assert_eq!(compact.knn(&[1.0, 1.0], k), idx.knn(&[1.0, 1.0], k));
        }
        // Single-vector index: the minimal single cell.
        let mut one = BucketedIndex::new(2);
        one.add_at(9, vec![3.0], 1234);
        let compact_one = one.compacted();
        assert_eq!(compact_one.knn(&[0.0], 2), one.knn(&[0.0], 2));
        let scans = compact_one.prune_scan(&[0.0]);
        assert_eq!(scans[0].min_abs_dt_secs(1234), 0);
    }

    #[test]
    fn compaction_with_all_identical_timestamps_keeps_exact_time_bounds() {
        // Every item at the same instant: cell time ranges must collapse
        // to a point and survive splits + compaction exactly.
        let mut idx = BucketedIndex::new(3);
        for (id, v) in cluster_data() {
            idx.add_at(id, v, 777_000);
        }
        let mut epochs = EpochIndex::new(3);
        for (id, v) in cluster_data() {
            epochs.add_at(id, v, 777_000);
        }
        epochs.publish();
        let sealed = epochs.snapshot();
        epochs.compact();
        epochs.publish();
        for probe in [&idx.compacted(), &*epochs.snapshot()] {
            assert_eq!(probe.len(), 30);
            for scan in probe.prune_scan(&[0.0, 0.0]) {
                assert_eq!(scan.min_abs_dt_secs(777_000), 0);
                assert_eq!(scan.min_abs_dt_secs(777_060), 60);
                assert_eq!(scan.min_abs_dt_secs(776_000), 1000);
            }
            assert_eq!(probe.knn(&[0.0, 0.0], 5), idx.knn(&[0.0, 0.0], 5));
        }
        assert_eq!(sealed.knn(&[0.0, 0.0], 5), idx.knn(&[0.0, 0.0], 5));
    }

    #[test]
    fn min_abs_dt_secs_is_exact_distance_to_the_time_range() {
        let mut idx = BucketedIndex::new(8);
        idx.add_at(0, vec![0.0], 100);
        idx.add_at(1, vec![0.1], 500);
        let scans = idx.prune_scan(&[0.0]);
        assert_eq!(scans.len(), 1);
        assert_eq!(scans[0].min_abs_dt_secs(40), 60);
        assert_eq!(scans[0].min_abs_dt_secs(100), 0);
        assert_eq!(scans[0].min_abs_dt_secs(300), 0);
        assert_eq!(scans[0].min_abs_dt_secs(500), 0);
        assert_eq!(scans[0].min_abs_dt_secs(720), 220);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn brute_force_matches_naive_scan(
            points in proptest::collection::vec(
                proptest::collection::vec(-10.0f32..10.0, 2..=2), 2..25),
            query in proptest::collection::vec(-10.0f32..10.0, 2..=2),
            k in 1usize..6
        ) {
            let mut idx = BruteForceIndex::new();
            for (i, p) in points.iter().enumerate() {
                idx.add(i as u64, p.clone());
            }
            let hits = idx.knn(&query, k);
            // Naive: sort all distances, compare the distance multiset.
            let mut naive: Vec<f32> = points
                .iter()
                .map(|p| {
                    p.iter()
                        .zip(&query)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f32>()
                        .sqrt()
                })
                .collect();
            naive.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (hit, expected) in hits.iter().zip(naive.iter()) {
                prop_assert!((hit.1 - expected).abs() < 1e-4);
            }
        }

        /// Satellite parity property: an online-grown [`BucketedIndex`]
        /// returns the same k-NN answer as brute force over the same ids,
        /// for every insert order proptest generates and at every prefix
        /// of the stream.
        #[test]
        fn bucketed_online_add_matches_brute_force(
            points in proptest::collection::vec(
                proptest::collection::vec(-10.0f32..10.0, 3..=3), 1..60),
            query in proptest::collection::vec(-10.0f32..10.0, 3..=3),
            k in 1usize..8,
            max_cell in 1usize..12
        ) {
            let mut bucketed = BucketedIndex::new(max_cell);
            let mut bf = BruteForceIndex::new();
            for (i, p) in points.iter().enumerate() {
                bucketed.add(i as u64, p.clone());
                bf.add(i as u64, p.clone());
                prop_assert_eq!(bucketed.len(), bf.len());
            }
            let exact = bf.knn(&query, k);
            let online = bucketed.knn(&query, k);
            prop_assert_eq!(online, exact);
        }
    }
}
