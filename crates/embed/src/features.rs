//! Hashed feature extraction for FastText-style models.

use rcacopilot_textkit::ngram::{bucket_of, char_ngrams, word_ngrams};
use rcacopilot_textkit::normalize::{mask_entities, normalize, tokenize};
use serde::{Deserialize, Serialize};

/// Turns raw text into hashed feature-bucket indices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureExtractor {
    /// Number of hash buckets (rows of the embedding table).
    pub buckets: usize,
    /// Minimum character n-gram length.
    pub min_n: usize,
    /// Maximum character n-gram length.
    pub max_n: usize,
    /// Maximum word n-gram order (1 = unigrams only).
    pub word_ngrams: usize,
    /// Whether to mask per-incident entities before tokenizing.
    pub mask: bool,
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        FeatureExtractor {
            buckets: 1 << 15,
            min_n: 3,
            max_n: 5,
            word_ngrams: 2,
            mask: true,
        }
    }
}

impl FeatureExtractor {
    /// Extracts the bucket indices of all features of `text`.
    ///
    /// Features: word n-grams up to `word_ngrams`, plus character n-grams
    /// of each word (FastText's subword trick). Duplicates are kept —
    /// frequency matters for the averaged representation.
    pub fn extract(&self, text: &str) -> Vec<usize> {
        let canon = if self.mask {
            normalize(&mask_entities(text))
        } else {
            normalize(text)
        };
        let tokens = tokenize(&canon);
        let mut out = Vec::with_capacity(tokens.len() * 6);
        for gram in word_ngrams(&tokens, self.word_ngrams) {
            out.push(bucket_of(&gram, self.buckets));
        }
        for tok in &tokens {
            // Placeholders (<machine>, <num>, ...) carry no subword signal.
            if tok.starts_with('<') {
                continue;
            }
            for gram in char_ngrams(tok, self.min_n, self.max_n) {
                out.push(bucket_of(&gram, self.buckets));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_is_deterministic_and_in_range() {
        let fx = FeatureExtractor::default();
        let a = fx.extract("UDP socket count exhausted on NAMPR03FD0001");
        let b = fx.extract("UDP socket count exhausted on NAMPR03FD0001");
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|&i| i < fx.buckets));
    }

    #[test]
    fn masking_makes_machine_names_irrelevant() {
        let fx = FeatureExtractor::default();
        let a = fx.extract("probe failed on NAMPR03FD0001 with WinSock 11001");
        let b = fx.extract("probe failed on EURPR07FD0002 with WinSock 11001");
        assert_eq!(a, b, "masked machine names must not change features");
        let fx_raw = FeatureExtractor {
            mask: false,
            ..FeatureExtractor::default()
        };
        let c = fx_raw.extract("probe failed on NAMPR03FD0001 with WinSock 11001");
        let d = fx_raw.extract("probe failed on EURPR07FD0002 with WinSock 11001");
        assert_ne!(c, d);
    }

    #[test]
    fn similar_texts_share_features() {
        let fx = FeatureExtractor::default();
        let a: std::collections::BTreeSet<usize> = fx
            .extract("TenantSettingsNotFoundException in journaling")
            .into_iter()
            .collect();
        let b: std::collections::BTreeSet<usize> = fx
            .extract("TenantSettingsNotFoundException in submission")
            .into_iter()
            .collect();
        let c: std::collections::BTreeSet<usize> =
            fx.extract("UDP hub ports exhausted").into_iter().collect();
        let ab = a.intersection(&b).count();
        let ac = a.intersection(&c).count();
        assert!(
            ab > ac * 2,
            "related texts should share more buckets ({ab} vs {ac})"
        );
    }

    #[test]
    fn empty_text_yields_no_features() {
        let fx = FeatureExtractor::default();
        assert!(fx.extract("").is_empty());
        assert!(fx.extract("   \n\t ").is_empty());
    }
}
