//! FastText-style embeddings and nearest-neighbor search.
//!
//! The paper uses FastText both as RCACopilot's embedding model (§4.2.1,
//! chosen for efficiency and insensitivity to input length) and as a
//! classification baseline (Table 2). This crate implements the
//! supervised FastText architecture from scratch:
//!
//! - a hashed bag of character n-grams + word (bi)grams as input features
//!   ([`features`]),
//! - an averaged input-embedding layer and a linear softmax output layer
//!   trained with SGD ([`model::FastTextModel`]),
//! - the document embedding = the averaged input embedding (the hidden
//!   state), which feeds the retrieval stage, and
//! - nearest-neighbor indexes over embeddings ([`index`]): exact
//!   brute-force, the online bucketed/epoch indexes, and an IVF (k-means
//!   coarse quantizer) accelerator, and
//! - a deterministic seeded HNSW graph ([`ann`]) for approximate
//!   candidate generation over million-incident corpora.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ann;
pub mod features;
pub mod index;
pub mod model;

pub use ann::{HnswConfig, HnswIndex};
pub use features::FeatureExtractor;
pub use index::{BruteForceIndex, BucketedIndex, EpochIndex, IndexStats, IvfIndex};
pub use model::{FastTextConfig, FastTextModel};
