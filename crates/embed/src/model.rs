//! The supervised FastText model: averaged input embeddings + linear
//! softmax, trained with SGD.

use crate::features::FeatureExtractor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Training hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FastTextConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to zero).
    pub lr: f64,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
    /// Feature extraction settings.
    pub features: FeatureExtractor,
}

impl Default for FastTextConfig {
    fn default() -> Self {
        FastTextConfig {
            dim: 64,
            epochs: 30,
            lr: 0.35,
            seed: 7,
            features: FeatureExtractor::default(),
        }
    }
}

/// A trained FastText model: embedding table, output layer, label set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FastTextModel {
    config: FastTextConfig,
    /// Input embeddings, `buckets x dim`, flattened row-major.
    input: Vec<f32>,
    /// Output layer, `labels x dim`, flattened row-major.
    output: Vec<f32>,
    /// Label names, index = class id.
    labels: Vec<String>,
}

impl FastTextModel {
    /// Trains a model on `(text, label)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `examples` is empty.
    pub fn train(examples: &[(String, String)], config: FastTextConfig) -> Self {
        assert!(!examples.is_empty(), "training set must not be empty");
        let mut label_ids: BTreeMap<&str, usize> = BTreeMap::new();
        for (_, label) in examples {
            let next = label_ids.len();
            label_ids.entry(label.as_str()).or_insert(next);
        }
        let labels: Vec<String> = {
            let mut v = vec![String::new(); label_ids.len()];
            for (name, id) in &label_ids {
                v[*id] = (*name).to_string();
            }
            v
        };

        let dim = config.dim;
        let buckets = config.features.buckets;
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut input = vec![0.0f32; buckets * dim];
        for w in &mut input {
            *w = rng.gen_range(-0.5..0.5) / (dim as f32).sqrt();
        }
        let mut output = vec![0.0f32; labels.len() * dim];

        // Pre-extract features once.
        let docs: Vec<(Vec<usize>, usize)> = examples
            .iter()
            .map(|(text, label)| (config.features.extract(text), label_ids[label.as_str()]))
            .collect();

        let total_steps = (config.epochs * docs.len()).max(1) as f64;
        let mut step = 0f64;
        let mut order: Vec<usize> = (0..docs.len()).collect();
        let mut hidden = vec![0.0f32; dim];
        let mut grad = vec![0.0f32; dim];
        let mut scores = vec![0.0f32; labels.len()];

        for _ in 0..config.epochs {
            // Shuffle example order each epoch.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &di in &order {
                let (feats, target) = &docs[di];
                if feats.is_empty() {
                    step += 1.0;
                    continue;
                }
                let lr = (config.lr * (1.0 - step / total_steps)).max(config.lr * 0.01);
                step += 1.0;

                // Forward: hidden = mean of feature embeddings.
                hidden.iter_mut().for_each(|h| *h = 0.0);
                for &f in feats {
                    let row = &input[f * dim..(f + 1) * dim];
                    for (h, w) in hidden.iter_mut().zip(row) {
                        *h += w;
                    }
                }
                let inv = 1.0 / feats.len() as f32;
                hidden.iter_mut().for_each(|h| *h *= inv);

                // Scores and softmax.
                for (li, s) in scores.iter_mut().enumerate() {
                    let row = &output[li * dim..(li + 1) * dim];
                    *s = hidden.iter().zip(row).map(|(h, w)| h * w).sum();
                }
                softmax(&mut scores);

                // Backward.
                grad.iter_mut().for_each(|g| *g = 0.0);
                for (li, &p) in scores.iter().enumerate() {
                    let err = (p - if li == *target { 1.0 } else { 0.0 }) * lr as f32;
                    let row = &mut output[li * dim..(li + 1) * dim];
                    for d in 0..dim {
                        grad[d] += err * row[d];
                        row[d] -= err * hidden[d];
                    }
                }
                let scale = inv;
                for &f in feats {
                    let row = &mut input[f * dim..(f + 1) * dim];
                    for d in 0..dim {
                        row[d] -= grad[d] * scale;
                    }
                }
            }
        }

        FastTextModel {
            config,
            input,
            output,
            labels,
        }
    }

    /// The label set, index = class id.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Embeds `text` as the averaged input embedding (the hidden state).
    /// Returns the zero vector for featureless text.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let dim = self.config.dim;
        let feats = self.config.features.extract(text);
        let mut hidden = vec![0.0f32; dim];
        if feats.is_empty() {
            return hidden;
        }
        for &f in &feats {
            let row = &self.input[f * dim..(f + 1) * dim];
            for (h, w) in hidden.iter_mut().zip(row) {
                *h += w;
            }
        }
        let inv = 1.0 / feats.len() as f32;
        hidden.iter_mut().for_each(|h| *h *= inv);
        hidden
    }

    /// Class probabilities for `text`, aligned with [`FastTextModel::labels`].
    pub fn predict_proba(&self, text: &str) -> Vec<f32> {
        let dim = self.config.dim;
        let hidden = self.embed(text);
        let mut scores: Vec<f32> = (0..self.labels.len())
            .map(|li| {
                let row = &self.output[li * dim..(li + 1) * dim];
                hidden.iter().zip(row).map(|(h, w)| h * w).sum()
            })
            .collect();
        softmax(&mut scores);
        scores
    }

    /// The most likely label and its probability.
    pub fn predict(&self, text: &str) -> (&str, f32) {
        let probs = self.predict_proba(text);
        let (best, p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
            .expect("at least one label");
        (&self.labels[best], *p)
    }
}

fn softmax(scores: &mut [f32]) {
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    if sum > 0.0 {
        for s in scores.iter_mut() {
            *s /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_training_set() -> Vec<(String, String)> {
        let mut out = Vec::new();
        for i in 0..12 {
            out.push((
                format!("UDP socket count exhausted hub ports WinSock 11001 case {i}"),
                "HubPortExhaustion".to_string(),
            ));
            out.push((
                format!("disk full IOException no space left volume case {i}"),
                "FullDisk".to_string(),
            ));
            out.push((
                format!("TenantSettingsNotFoundException journaling invalid config case {i}"),
                "InvalidJournaling".to_string(),
            ));
        }
        out
    }

    fn small_config() -> FastTextConfig {
        FastTextConfig {
            dim: 32,
            epochs: 40,
            lr: 0.5,
            seed: 3,
            features: FeatureExtractor {
                buckets: 1 << 12,
                ..FeatureExtractor::default()
            },
        }
    }

    #[test]
    fn model_learns_separable_classes() {
        let model = FastTextModel::train(&toy_training_set(), small_config());
        assert_eq!(model.labels().len(), 3);
        let (label, p) = model.predict("WinSock 11001 UDP socket exhausted on hub");
        assert_eq!(label, "HubPortExhaustion");
        assert!(p > 0.5, "confidence {p}");
        let (label, _) = model.predict("IOException: there is not enough space on the disk");
        assert_eq!(label, "FullDisk");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let model = FastTextModel::train(&toy_training_set(), small_config());
        let probs = model.predict_proba("journaling config invalid");
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn embeddings_cluster_by_topic() {
        let model = FastTextModel::train(&toy_training_set(), small_config());
        let a = model.embed("UDP socket exhausted WinSock hub ports");
        let b = model.embed("hub ports exhausted socket count WinSock");
        let c = model.embed("disk full IOException space");
        let d2 =
            |x: &[f32], y: &[f32]| -> f32 { x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum() };
        assert!(d2(&a, &b) < d2(&a, &c), "same-topic embeddings closer");
    }

    #[test]
    fn empty_text_embeds_to_zero_vector() {
        let model = FastTextModel::train(&toy_training_set(), small_config());
        let z = model.embed("");
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn training_is_deterministic() {
        let m1 = FastTextModel::train(&toy_training_set(), small_config());
        let m2 = FastTextModel::train(&toy_training_set(), small_config());
        assert_eq!(m1.embed("WinSock"), m2.embed("WinSock"));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_set_panics() {
        let _ = FastTextModel::train(&[], small_config());
    }
}
