//! Deterministic approximate nearest neighbors: a seeded HNSW graph.
//!
//! [`HnswIndex`] is the serving plane's answer to million-incident
//! corpora: a hierarchical navigable small world graph (Malkov &
//! Yashunin) whose search cost grows roughly logarithmically with the
//! corpus while the exact indexes in [`crate::index`] stay linear. It is
//! a *candidate generator*, not a scorer — the retrieval plane re-ranks
//! its candidate set with the exact temporal-decay similarity, so any
//! approximation shows up only as candidate misses, never as wrong
//! scores.
//!
//! Three properties distinguish this implementation from a textbook one:
//!
//! - **Determinism.** Layer assignment is a pure hash of
//!   `(seed, insertion sequence)`, every ordering uses `total_cmp` with
//!   an insertion-sequence tie-break, and the traversal queues are
//!   strictly ordered — two builds over the same insert stream produce
//!   the same graph and the same candidate lists, on any machine.
//! - **Saturation.** A search with `ef >= len` short-circuits to the
//!   full id list in `(distance, seq)` order: candidate recall is
//!   *guaranteed* 100%, which is the lever the retrieval plane's
//!   byte-identity proptests pull.
//! - **Copy-on-write chunks.** Nodes live in fixed-size chunks behind
//!   [`Arc`]s, so cloning the index (the epoch-snapshot operation) costs
//!   `O(n / chunk)` pointer bumps and a post-snapshot insert pays one
//!   chunk copy per touched neighborhood — the same contract as the
//!   bucketed index's cells.

use crate::index::IndexStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Nodes per copy-on-write chunk (see module docs).
const NODE_CHUNK: usize = 64;

/// Hard cap on layer assignment; `ml = 1/ln(m)` makes layers this high
/// astronomically unlikely, the cap just bounds the worst case.
const MAX_LEVEL: usize = 16;

/// HNSW build/search parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HnswConfig {
    /// Max neighbors per node on layers above 0 (layer 0 allows `2m`).
    pub m: usize,
    /// Beam width while inserting.
    pub ef_construction: usize,
    /// Default beam width while searching (callers may override per
    /// query; `ef >= len` saturates to exact candidate recall).
    pub ef_search: usize,
    /// Seed of the deterministic layer-assignment hash.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 64,
            ef_search: 64,
            seed: 0xA22_5EED,
        }
    }
}

/// One graph node: the caller's id, its vector, and one adjacency list
/// per layer it participates in (`links.len() == level + 1`).
#[derive(Debug, Clone)]
struct Node {
    id: u64,
    vector: Vec<f32>,
    links: Vec<Vec<u32>>,
}

/// `(squared distance, node)` with a total, deterministic order:
/// distance first (`total_cmp`), insertion sequence as the tie-break.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DistNode(f32, u32);

impl Eq for DistNode {}

impl Ord for DistNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

impl PartialOrd for DistNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn d2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// SplitMix64 — the stable scrambler behind layer assignment.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic, incrementally grown HNSW graph index.
#[derive(Debug, Clone)]
pub struct HnswIndex {
    config: HnswConfig,
    chunks: Vec<Arc<Vec<Node>>>,
    len: usize,
    /// Entry point: the node owning the highest layer.
    entry: Option<u32>,
    top_level: usize,
}

impl Default for HnswIndex {
    fn default() -> Self {
        HnswIndex::new(HnswConfig::default())
    }
}

impl HnswIndex {
    /// Creates an empty index. `m` and `ef_construction` are clamped to
    /// ≥ 2 and ≥ 4 (degenerate values would disconnect the graph) —
    /// counted degradation rather than a panic.
    pub fn new(config: HnswConfig) -> Self {
        HnswIndex {
            config: HnswConfig {
                m: config.m.max(2),
                ef_construction: config.ef_construction.max(4),
                ..config
            },
            chunks: Vec::new(),
            len: 0,
            entry: None,
            top_level: 0,
        }
    }

    /// The (clamped) build/search parameters.
    pub fn config(&self) -> &HnswConfig {
        &self.config
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn node(&self, i: u32) -> &Node {
        &self.chunks[i as usize / NODE_CHUNK][i as usize % NODE_CHUNK]
    }

    /// Mutable access through the copy-on-write chunk (a chunk shared
    /// with a snapshot is copied once, then mutated in place).
    fn node_mut(&mut self, i: u32) -> &mut Node {
        let chunk = Arc::make_mut(&mut self.chunks[i as usize / NODE_CHUNK]);
        &mut chunk[i as usize % NODE_CHUNK]
    }

    /// Deterministic geometric layer assignment for insertion `seq`:
    /// `floor(-ln(u) / ln(m))` with `u` drawn from a seeded SplitMix64
    /// hash — no RNG state, so the graph shape is a pure function of the
    /// insert stream and the seed.
    fn level_for(&self, seq: u64) -> usize {
        let h = splitmix64(self.config.seed ^ seq.wrapping_mul(0x2545_F491_4F6C_DD1D));
        // 53-bit mantissa draw in (0, 1].
        let u = ((h >> 11) + 1) as f64 / (1u64 << 53) as f64;
        let ml = 1.0 / (self.config.m as f64).ln();
        ((-u.ln() * ml) as usize).min(MAX_LEVEL)
    }

    /// Beam search on one layer from `seeds`, keeping the `ef` best.
    /// Returns hits sorted ascending by `(distance, seq)`.
    fn search_layer(
        &self,
        query: &[f32],
        seeds: &[DistNode],
        ef: usize,
        layer: usize,
    ) -> Vec<DistNode> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut visited: BTreeSet<u32> = seeds.iter().map(|s| s.1).collect();
        let mut frontier: BinaryHeap<Reverse<DistNode>> =
            seeds.iter().map(|&s| Reverse(s)).collect();
        let mut best: BinaryHeap<DistNode> = seeds.iter().copied().collect();
        while best.len() > ef {
            best.pop();
        }
        while let Some(Reverse(cand)) = frontier.pop() {
            if best.len() >= ef {
                let worst = *best.peek().expect("non-empty result heap");
                if worst < cand {
                    break;
                }
            }
            for &n in &self.node(cand.1).links[layer] {
                if !visited.insert(n) {
                    continue;
                }
                let d = DistNode(d2(&self.node(n).vector, query), n);
                if best.len() < ef || d < *best.peek().expect("non-empty result heap") {
                    frontier.push(Reverse(d));
                    best.push(d);
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }
        let mut out: Vec<DistNode> = best.into_vec();
        out.sort();
        out
    }

    /// Greedy single-step descent through layers `top..=stop`, returning
    /// the closest node found.
    fn descend(&self, query: &[f32], mut cur: DistNode, from: usize, stop: usize) -> DistNode {
        for layer in (stop..=from).rev() {
            loop {
                let mut improved = false;
                for &n in &self.node(cur.1).links[layer] {
                    let d = DistNode(d2(&self.node(n).vector, query), n);
                    if d < cur {
                        cur = d;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        cur
    }

    /// Adds a vector under `id`. Insertion order defines the node
    /// sequence used in every tie-break, so two indexes fed the same
    /// stream are identical.
    ///
    /// # Panics
    ///
    /// Panics if `vector`'s dimension differs from previously added ones.
    pub fn add(&mut self, id: u64, vector: Vec<f32>) {
        if let Some(first) = self.chunks.first().and_then(|c| c.first()) {
            assert_eq!(first.vector.len(), vector.len(), "dimension mismatch");
        }
        let seq = self.len as u32;
        let level = self.level_for(seq as u64);
        if self.len.is_multiple_of(NODE_CHUNK) {
            self.chunks.push(Arc::new(Vec::with_capacity(NODE_CHUNK)));
        }
        {
            let last = self.chunks.last_mut().expect("chunk just ensured");
            Arc::make_mut(last).push(Node {
                id,
                vector,
                links: vec![Vec::new(); level + 1],
            });
        }
        self.len += 1;
        let Some(entry) = self.entry else {
            self.entry = Some(seq);
            self.top_level = level;
            return;
        };
        let query = self.node(seq).vector.clone();
        let mut cur = DistNode(d2(&self.node(entry).vector, &query), entry);
        if self.top_level > level {
            cur = self.descend(&query, cur, self.top_level, level + 1);
        }
        for layer in (0..=level.min(self.top_level)).rev() {
            let found = self.search_layer(&query, &[cur], self.config.ef_construction, layer);
            cur = found[0];
            let cap = if layer == 0 {
                self.config.m * 2
            } else {
                self.config.m
            };
            let neighbors: Vec<u32> = found.iter().take(cap).map(|d| d.1).collect();
            self.node_mut(seq).links[layer] = neighbors.clone();
            for n in neighbors {
                let links = &mut self.node_mut(n).links[layer];
                links.push(seq);
                if links.len() > cap {
                    self.shrink_links(n, layer, cap);
                }
            }
        }
        if level > self.top_level {
            self.entry = Some(seq);
            self.top_level = level;
        }
    }

    /// Prunes node `n`'s layer adjacency back to the `cap` closest
    /// neighbors (deterministic: distance then sequence).
    fn shrink_links(&mut self, n: u32, layer: usize, cap: usize) {
        let center = self.node(n).vector.clone();
        let mut ranked: Vec<DistNode> = self.node(n).links[layer]
            .iter()
            .map(|&o| DistNode(d2(&self.node(o).vector, &center), o))
            .collect();
        ranked.sort();
        ranked.truncate(cap);
        self.node_mut(n).links[layer] = ranked.into_iter().map(|d| d.1).collect();
    }

    /// The ids of (up to) `ef` approximate nearest neighbors of `query`,
    /// closest first.
    ///
    /// **Saturation:** when `ef >= len`, the graph walk is skipped and
    /// *every* id is returned in exact `(distance, seq)` order —
    /// guaranteed 100% candidate recall. This is the mode the retrieval
    /// plane's byte-identity properties pin.
    pub fn candidates(&self, query: &[f32], ef: usize) -> Vec<u64> {
        self.search(query, ef)
            .into_iter()
            .map(|d| self.node(d.1).id)
            .collect()
    }

    /// The `k` approximate nearest neighbors as `(id, euclidean
    /// distance)`, closest first, searching with
    /// `max(k, ef_search)` beam width — the [`crate::index`] knn shape,
    /// for recall tests and benches.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<(u64, f32)> {
        let mut hits = self.search(query, k.max(self.config.ef_search));
        hits.truncate(k);
        hits.into_iter()
            .map(|d| (self.node(d.1).id, d.0.sqrt()))
            .collect()
    }

    fn search(&self, query: &[f32], ef: usize) -> Vec<DistNode> {
        let Some(entry) = self.entry else {
            return Vec::new();
        };
        if ef >= self.len {
            // Saturated: exact scan in (distance, seq) order.
            let mut all: Vec<DistNode> = (0..self.len as u32)
                .map(|i| DistNode(d2(&self.node(i).vector, query), i))
                .collect();
            all.sort();
            return all;
        }
        let ef = ef.max(1);
        let mut cur = DistNode(d2(&self.node(entry).vector, query), entry);
        if self.top_level > 0 {
            cur = self.descend(query, cur, self.top_level, 1);
        }
        self.search_layer(query, &[cur], ef, 0)
    }

    /// Structure report: vectors, layer count, edges, estimated resident
    /// bytes.
    pub fn stats(&self) -> IndexStats {
        let dim = self
            .chunks
            .first()
            .and_then(|c| c.first())
            .map_or(0, |n| n.vector.len());
        let mut edges = 0usize;
        let mut links_cap = 0usize;
        for chunk in &self.chunks {
            for node in chunk.iter() {
                for l in &node.links {
                    edges += l.len();
                    links_cap += l.capacity();
                }
            }
        }
        IndexStats {
            vectors: self.len,
            dim,
            cells: 0,
            layers: self.top_level + 1,
            edges,
            bytes: self.len * (dim * 4 + std::mem::size_of::<Node>()) + links_cap * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::BruteForceIndex;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn cloud(n: u64, seed: u64) -> Vec<(u64, Vec<f32>)> {
        // Eight gaussian-ish clusters in 8d.
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = (i % 8) as f32 * 3.0;
                (
                    i,
                    (0..8)
                        .map(|d| c * ((d + i as usize) % 3) as f32 + rng.gen_range(-0.4..0.4))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn empty_and_single_node_searches() {
        let mut idx = HnswIndex::new(HnswConfig::default());
        assert!(idx.is_empty());
        assert!(idx.candidates(&[0.0; 8], 4).is_empty());
        idx.add(7, vec![0.0; 8]);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.candidates(&[0.0; 8], 4), vec![7]);
        assert_eq!(idx.knn(&[0.0; 8], 3), vec![(7, 0.0)]);
    }

    #[test]
    fn saturated_search_is_exact_including_tie_order() {
        let mut hnsw = HnswIndex::new(HnswConfig {
            m: 4,
            ef_construction: 8,
            ..HnswConfig::default()
        });
        let mut bf = BruteForceIndex::new();
        // Duplicate vectors stress the insertion-order tie-break.
        for i in 0..40u64 {
            let v = vec![(i % 5) as f32, (i % 3) as f32];
            hnsw.add(i, v.clone());
            bf.add(i, v);
        }
        for q in [[0.0f32, 0.0], [4.0, 2.0], [2.5, 1.5]] {
            let exact: Vec<u64> = bf.knn(&q, 40).into_iter().map(|(id, _)| id).collect();
            assert_eq!(hnsw.candidates(&q, 40), exact, "q={q:?}");
            assert_eq!(hnsw.candidates(&q, 10_000), exact, "ef past len saturates");
        }
    }

    #[test]
    fn recall_is_high_on_clustered_data_and_degrades_with_ef() {
        let data = cloud(400, 3);
        let mut hnsw = HnswIndex::new(HnswConfig::default());
        let mut bf = BruteForceIndex::new();
        for (id, v) in &data {
            hnsw.add(*id, v.clone());
            bf.add(*id, v.clone());
        }
        let mut rng = SmallRng::seed_from_u64(9);
        let recall_at = |ef: usize, rng: &mut SmallRng| {
            let mut hit = 0usize;
            let mut total = 0usize;
            for _ in 0..30 {
                let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..9.0)).collect();
                let exact: std::collections::BTreeSet<u64> =
                    bf.knn(&q, 10).into_iter().map(|(id, _)| id).collect();
                let approx = hnsw.candidates(&q, ef);
                hit += approx
                    .iter()
                    .take(10)
                    .filter(|id| exact.contains(id))
                    .count();
                total += exact.len();
            }
            hit as f64 / total as f64
        };
        let high = recall_at(64, &mut rng);
        let low = recall_at(10, &mut rng);
        assert!(high >= 0.95, "recall@10 with ef=64 was {high}");
        assert!(low <= high + 1e-9, "ef=10 recall {low} vs ef=64 {high}");
    }

    #[test]
    fn identical_insert_streams_build_identical_graphs() {
        let build = || {
            let mut idx = HnswIndex::new(HnswConfig {
                m: 6,
                ef_construction: 24,
                ..HnswConfig::default()
            });
            for (id, v) in cloud(200, 5) {
                idx.add(id, v);
            }
            idx
        };
        let (a, b) = (build(), build());
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..20 {
            let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-2.0..10.0)).collect();
            assert_eq!(a.candidates(&q, 16), b.candidates(&q, 16));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn snapshot_clones_are_isolated_from_later_inserts() {
        let mut idx = HnswIndex::new(HnswConfig::default());
        for (id, v) in cloud(100, 1) {
            idx.add(id, v);
        }
        let snap = idx.clone();
        let before = snap.candidates(&[1.0; 8], 100);
        for (id, v) in cloud(100, 2) {
            idx.add(id + 1000, v);
        }
        assert_eq!(snap.len(), 100, "sealed clone must not grow");
        assert_eq!(snap.candidates(&[1.0; 8], 100), before);
        assert_eq!(idx.len(), 200);
    }

    #[test]
    fn degenerate_config_is_clamped_not_panicking() {
        let mut idx = HnswIndex::new(HnswConfig {
            m: 0,
            ef_construction: 0,
            ef_search: 0,
            seed: 1,
        });
        assert_eq!(idx.config().m, 2);
        assert_eq!(idx.config().ef_construction, 4);
        for (id, v) in cloud(50, 4) {
            idx.add(id, v);
        }
        assert_eq!(idx.len(), 50);
        assert!(!idx.candidates(&[0.0; 8], 5).is_empty());
    }

    #[test]
    fn stats_report_structure() {
        let mut idx = HnswIndex::new(HnswConfig::default());
        for (id, v) in cloud(300, 8) {
            idx.add(id, v);
        }
        let s = idx.stats();
        assert_eq!(s.vectors, 300);
        assert_eq!(s.dim, 8);
        assert!(s.layers >= 1);
        assert!(s.edges > 300, "graph must be connected beyond a chain");
        assert!(s.bytes > 300 * 8 * 4, "bytes must cover the vectors");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::index::BruteForceIndex;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Saturated candidate generation equals the exact scan — same
        /// ids, same order — for arbitrary clouds (small integer grid:
        /// plenty of exact ties), configs and queries.
        #[test]
        fn saturated_candidates_equal_exact_scan(
            points in proptest::collection::vec(
                proptest::collection::vec(-4.0f32..4.0, 3..=3), 1..60),
            query in proptest::collection::vec(-4.0f32..4.0, 3..=3),
            m in 2usize..8,
            efc in 4usize..24,
            seed in 0u64..4,
        ) {
            let mut hnsw = HnswIndex::new(HnswConfig { m, ef_construction: efc, ef_search: 16, seed });
            let mut bf = BruteForceIndex::new();
            for (i, p) in points.iter().enumerate() {
                hnsw.add(i as u64, p.clone());
                bf.add(i as u64, p.clone());
            }
            let exact: Vec<u64> = bf.knn(&query, points.len()).into_iter().map(|(id, _)| id).collect();
            prop_assert_eq!(hnsw.candidates(&query, points.len()), exact);
        }

        /// Unsaturated searches always return `min(ef, len)` distinct
        /// candidates sorted by true distance.
        #[test]
        fn candidates_are_distinct_and_distance_sorted(
            points in proptest::collection::vec(
                proptest::collection::vec(-8.0f32..8.0, 2..=2), 2..50),
            query in proptest::collection::vec(-8.0f32..8.0, 2..=2),
            ef in 1usize..12,
        ) {
            let mut hnsw = HnswIndex::new(HnswConfig { m: 4, ef_construction: 12, ef_search: 8, seed: 2 });
            for (i, p) in points.iter().enumerate() {
                hnsw.add(i as u64, p.clone());
            }
            let got = hnsw.candidates(&query, ef);
            prop_assert_eq!(got.len(), ef.min(points.len()));
            let mut seen = std::collections::BTreeSet::new();
            let mut last = f32::NEG_INFINITY;
            for id in got {
                prop_assert!(seen.insert(id), "duplicate candidate {}", id);
                let d: f32 = points[id as usize]
                    .iter()
                    .zip(&query)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                prop_assert!(d >= last - 1e-6);
                last = d;
            }
        }
    }
}
