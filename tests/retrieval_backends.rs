//! End-to-end contract of the ANN retrieval tier: the serving engine's
//! prediction log with a **saturated** `Hnsw` backend (`ef_search` far
//! above the corpus size ⇒ 100% candidate recall) must be
//! **byte-identical** to the `Exact` backend's, across worker × shard
//! geometries; and a non-saturated backend must still be deterministic
//! across worker counts at a fixed shard count. Recall degradation at
//! small `ef_search` is measured (never silent) by the last test.

use proptest::prelude::*;
use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::core::retrieval::RetrievalBackend;
use rcacopilot::core::ContextSpec;
use rcacopilot::embed::{FastTextConfig, FeatureExtractor};
use rcacopilot::serve::{
    AdmissionConfig, EngineConfig, EventOutcome, IndexMode, ServeEngine, StreamConfig,
};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, Incident, Topology};
use std::sync::OnceLock;

/// Shared fixture: one trained copilot plus its held-out incidents.
/// Training is the expensive part; every proptest case replays subsets.
fn fixture() -> &'static (RcaCopilot, Vec<Incident>) {
    static FIXTURE: OnceLock<(RcaCopilot, Vec<Incident>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = generate_dataset(&CampaignConfig {
            seed: 29,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile::default(),
        });
        let split = dataset.split(7, 0.6);
        let prepared = PreparedDataset::prepare(&dataset, &split);
        let copilot = RcaCopilot::train(
            &prepared.train_examples(&ContextSpec::default()),
            RcaCopilotConfig {
                embedding: FastTextConfig {
                    dim: 16,
                    epochs: 4,
                    lr: 0.4,
                    features: FeatureExtractor {
                        buckets: 1 << 10,
                        ..FeatureExtractor::default()
                    },
                    ..FastTextConfig::default()
                },
                ..RcaCopilotConfig::default()
            },
        );
        let test: Vec<Incident> = split
            .test
            .iter()
            .map(|&i| dataset.incidents()[i].clone())
            .collect();
        (copilot, test)
    })
}

fn run_log(
    copilot: &RcaCopilot,
    incidents: &[Incident],
    workers: usize,
    shards: usize,
    backend: RetrievalBackend,
) -> String {
    let engine = ServeEngine::new(
        copilot.clone(),
        EngineConfig {
            workers,
            shards,
            backend,
            index_mode: IndexMode::Online,
            admission: AdmissionConfig::unbounded(),
            ..EngineConfig::default()
        },
    );
    engine.run(incidents, &StreamConfig::replay()).log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole invariant: at 100% candidate recall the ANN tier is
    /// invisible — the online engine's prediction log is byte-identical
    /// between `Exact` and saturated `Hnsw`, for arbitrary incident
    /// subsets and every worker × shard geometry.
    #[test]
    fn saturated_hnsw_log_matches_exact_across_geometries(
        picks in proptest::collection::vec(0usize..100, 4..16),
        m in 4usize..12,
    ) {
        let (copilot, test) = fixture();
        let incidents: Vec<Incident> = picks
            .iter()
            .map(|&p| test[p % test.len()].clone())
            .collect();
        let saturated = RetrievalBackend::Hnsw {
            m,
            ef_construction: 16,
            ef_search: usize::MAX,
        };
        let reference = run_log(copilot, &incidents, 1, 1, RetrievalBackend::Exact);
        prop_assert!(!reference.is_empty());
        for &(workers, shards) in &[(1usize, 1usize), (4, 1), (1, 3), (4, 3)] {
            prop_assert_eq!(
                &run_log(copilot, &incidents, workers, shards, RetrievalBackend::Exact),
                &reference,
                "exact backend diverged at workers={} shards={}", workers, shards
            );
            prop_assert_eq!(
                &run_log(copilot, &incidents, workers, shards, saturated),
                &reference,
                "saturated hnsw diverged at workers={} shards={}", workers, shards
            );
        }
    }

    /// Below saturation answers may differ from exact, but they must be
    /// *deterministic*: the same backend at the same shard count yields
    /// the same log at any worker count (the per-shard graphs are pure
    /// functions of the insert stream).
    #[test]
    fn non_saturated_hnsw_is_deterministic_across_workers(
        picks in proptest::collection::vec(0usize..100, 4..12),
        ef in 1usize..12,
        shards in 1usize..4,
    ) {
        let (copilot, test) = fixture();
        let incidents: Vec<Incident> = picks
            .iter()
            .map(|&p| test[p % test.len()].clone())
            .collect();
        let backend = RetrievalBackend::Hnsw { m: 4, ef_construction: 8, ef_search: ef };
        let reference = run_log(copilot, &incidents, 1, shards, backend);
        for workers in [2usize, 4] {
            prop_assert_eq!(
                &run_log(copilot, &incidents, workers, shards, backend),
                &reference,
                "hnsw ef={} diverged at workers={} shards={}", ef, workers, shards
            );
        }
    }
}

/// Accuracy degradation at small `ef_search` is measured, not silent:
/// predictions still complete for every event, and the degradation is
/// bounded — the narrow beam changes *which* neighbors are retrieved,
/// never whether the engine can answer.
#[test]
fn tiny_ef_search_still_serves_every_event() {
    let (copilot, test) = fixture();
    let incidents: Vec<Incident> = test.iter().take(30).cloned().collect();
    let exact = {
        let engine = ServeEngine::new(
            copilot.clone(),
            EngineConfig {
                workers: 2,
                shards: 2,
                index_mode: IndexMode::Online,
                admission: AdmissionConfig::unbounded(),
                ..EngineConfig::default()
            },
        );
        engine.run(&incidents, &StreamConfig::replay())
    };
    let narrow = {
        let engine = ServeEngine::new(
            copilot.clone(),
            EngineConfig {
                workers: 2,
                shards: 2,
                backend: RetrievalBackend::Hnsw {
                    m: 4,
                    ef_construction: 8,
                    ef_search: 2,
                },
                index_mode: IndexMode::Online,
                admission: AdmissionConfig::unbounded(),
                ..EngineConfig::default()
            },
        );
        engine.run(&incidents, &StreamConfig::replay())
    };
    assert_eq!(exact.records.len(), narrow.records.len());
    let served = |o: &rcacopilot::serve::ServeOutcome| {
        o.records
            .iter()
            .filter(|r| matches!(r.outcome, EventOutcome::Predicted { .. }))
            .count()
    };
    assert_eq!(served(&exact), served(&narrow), "every event still answers");
    // Measure (and print) how many predictions changed under the narrow
    // beam — the quantity EXPERIMENTS.md reports from the bench.
    let diverged = exact
        .records
        .iter()
        .zip(&narrow.records)
        .filter(|(a, b)| a.outcome != b.outcome)
        .count();
    println!(
        "ef_search=2: {diverged}/{} predictions diverged from exact",
        exact.records.len()
    );
}
