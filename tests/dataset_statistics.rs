//! The generated dataset must carry the paper's statistical fingerprint
//! for *every* seed, not just the benchmark seed.

use proptest::prelude::*;
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, Topology};

fn tiny_noise() -> NoiseProfile {
    NoiseProfile {
        routine_logs: 2,
        herring_logs: 1,
        healthy_traces: 1,
        unrelated_failure: false,
        bystander_anomalies: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn campaign_statistics_hold_for_any_seed(seed in 0u64..1_000_000) {
        let dataset = generate_dataset(&CampaignConfig {
            seed,
            topology: Topology::new(2, 4, 2, 2),
            noise: tiny_noise(),
        });
        let stats = dataset.stats();
        // Paper §5.1 / Figure 3.
        prop_assert_eq!(stats.total, 653);
        prop_assert_eq!(stats.categories, 163);
        prop_assert!((stats.new_category_share - 0.2496).abs() < 0.001);
        // Paper Figure 2: most recurrences within 20 days.
        let within20 = stats.recurrence_share_within(20.0);
        prop_assert!((0.85..=0.99).contains(&within20), "within20 = {}", within20);
        // Chronological order and unique incident ids.
        let mut seen = std::collections::BTreeSet::new();
        for w in dataset.incidents().windows(2) {
            prop_assert!(w[0].occurred_at() <= w[1].occurred_at());
        }
        for inc in dataset.incidents() {
            prop_assert!(seen.insert(inc.alert.incident));
        }
    }

    #[test]
    fn splits_partition_the_dataset(seed in 0u64..100_000, frac in 0.5f64..0.9) {
        let dataset = generate_dataset(&CampaignConfig {
            seed: 3,
            topology: Topology::new(2, 4, 2, 2),
            noise: tiny_noise(),
        });
        let split = dataset.split(seed, frac);
        prop_assert_eq!(split.train.len() + split.test.len(), dataset.len());
        let mut all: Vec<usize> = split.train.iter().chain(&split.test).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), dataset.len());
        let expected = (dataset.len() as f64 * frac).round() as usize;
        prop_assert_eq!(split.train.len(), expected);
    }
}

#[test]
fn table1_head_categories_present_with_exact_counts() {
    let dataset = generate_dataset(&CampaignConfig {
        seed: 42,
        topology: Topology::new(2, 4, 2, 2),
        noise: tiny_noise(),
    });
    let stats = dataset.stats();
    let count = |name: &str| {
        stats
            .category_counts
            .iter()
            .find(|(c, _)| c == name)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    assert_eq!(count("HubPortExhaustion"), 27);
    assert_eq!(count("DispatcherTaskCancelled"), 22);
    assert_eq!(count("CodeRegressionSmtpAuth"), 15);
    assert_eq!(count("CertForBogusTenants"), 11);
    assert_eq!(count("InvalidJournaling"), 11);
    assert_eq!(count("UseRouteResolution"), 9);
    assert_eq!(count("DeliveryHang"), 6);
    assert_eq!(count("AuthCertIssue"), 3);
    assert_eq!(count("FullDisk"), 2);
    assert_eq!(count("MaliciousAttackPowerShellBlob"), 2);
}
