//! Property test for the unified inference plan: executing an
//! `InferencePlan` over a batch of replay arrivals must be byte-identical
//! to a frozen-replay serving run of the same incidents — for arbitrary
//! incident subsets (with repeats), arbitrary `ContextSpec` gatings, and
//! the exact memo policy on or off. This is the contract that lets the
//! batch harness and the serving engine share one execution layer.

use proptest::prelude::*;
use rcacopilot::core::collection::CollectionStage;
use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::memo::{ExactMemo, MemoPolicy, NoMemo};
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::core::plan::{InferencePlan, PlanCaches, PlanExecutor};
use rcacopilot::core::ContextSpec;
use rcacopilot::embed::{FastTextConfig, FeatureExtractor};
use rcacopilot::serve::engine::EventRecord;
use rcacopilot::serve::{
    stream, AdmissionConfig, EngineConfig, EventOutcome, IndexMode, ServeEngine, StreamConfig,
};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, Incident, Topology};
use rcacopilot::telemetry::ids::TenantId;
use std::sync::{Arc, OnceLock};

/// Shared fixture: one trained copilot plus its held-out incidents.
/// Training is the expensive part; every proptest case replays subsets.
fn fixture() -> &'static (RcaCopilot, Vec<Incident>) {
    static FIXTURE: OnceLock<(RcaCopilot, Vec<Incident>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = generate_dataset(&CampaignConfig {
            seed: 29,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile::default(),
        });
        let split = dataset.split(7, 0.6);
        let prepared = PreparedDataset::prepare(&dataset, &split);
        let copilot = RcaCopilot::train(
            &prepared.train_examples(&ContextSpec::default()),
            RcaCopilotConfig {
                embedding: FastTextConfig {
                    dim: 16,
                    epochs: 4,
                    lr: 0.4,
                    features: FeatureExtractor {
                        buckets: 1 << 10,
                        ..FeatureExtractor::default()
                    },
                    ..FastTextConfig::default()
                },
                ..RcaCopilotConfig::default()
            },
        );
        let test: Vec<Incident> = split
            .test
            .iter()
            .map(|&i| dataset.incidents()[i].clone())
            .collect();
        (copilot, test)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batch plan execution ≡ frozen-replay serving, byte for byte.
    #[test]
    fn batch_plan_matches_frozen_replay_serving(
        picks in proptest::collection::vec(0usize..100, 1..8),
        alert_info in 0u8..2,
        diagnostic_info in 0u8..2,
        summarized in 0u8..2,
        action_output in 0u8..2,
        exact_cache in 0u8..2,
        workers in 1usize..4,
    ) {
        let (copilot, test) = fixture();
        // Subsets may repeat incidents: repeats are exactly what the memo
        // policies exist for.
        let incidents: Vec<Incident> = picks
            .iter()
            .map(|&p| test[p % test.len()].clone())
            .collect();
        let spec = ContextSpec {
            alert_info: alert_info == 1,
            diagnostic_info: diagnostic_info == 1,
            summarized: summarized == 1,
            action_output: action_output == 1,
        };
        let policy: Arc<dyn MemoPolicy> = if exact_cache == 1 {
            Arc::new(ExactMemo)
        } else {
            Arc::new(NoMemo)
        };
        let config = StreamConfig::replay();

        // Serving plane: frozen index, replayed timeline, no admission
        // control — the configuration the engine documents as "literally
        // the batch pipeline".
        let engine = ServeEngine::new(
            copilot.clone(),
            EngineConfig {
                workers,
                index_mode: IndexMode::Frozen,
                admission: AdmissionConfig::unbounded(),
                spec,
                memo: policy.clone(),
                ..EngineConfig::default()
            },
        );
        let served = engine.run(&incidents, &config);

        // Batch plane: the same plan executed over the same arrivals.
        let plan = InferencePlan::new(spec).with_policy(policy);
        let stage = CollectionStage::standard();
        let caches = PlanCaches::new(4);
        let executor = PlanExecutor::new(copilot, &stage, &plan, &caches);
        let events = stream::schedule(&incidents, &config);
        let arrivals: Vec<_> = events.iter().map(|e| (e.incident_idx, e.at)).collect();
        let outcomes = executor.run_batch(&incidents, &arrivals, copilot.index());

        let mut batch_log = String::new();
        for (event, outcome) in events.iter().zip(outcomes) {
            let out = match outcome {
                Ok(out) => out,
                Err(e) => return Err(TestCaseError::fail(format!(
                    "fault-free batch collection failed: {e}"
                ))),
            };
            let alert = &incidents[event.incident_idx].alert;
            let record = EventRecord {
                seq: event.seq,
                incident_idx: event.incident_idx,
                at: event.at,
                severity: alert.severity,
                alert_type: alert.alert_type,
                tenant: TenantId::default(),
                outcome: EventOutcome::Predicted {
                    prediction: out.prediction,
                    degraded: false,
                },
            };
            batch_log.push_str(&record.log_line());
            batch_log.push('\n');
        }

        prop_assert_eq!(
            &batch_log,
            &served.log,
            "batch plan diverged from frozen-replay serving \
             (spec {:?}, policy {}, workers {})",
            spec,
            if exact_cache == 1 { "exact" } else { "none" },
            workers
        );
    }
}
