//! Sharded retrieval-plane integration tests: the prediction log must be
//! byte-identical between the sharded and unsharded engines for every
//! (shard count × worker count) combination, a crashed run must resume
//! from shard-tagged WAL records — even into a *different* shard count —
//! and OCE feedback corrections must journal and replay into the index
//! with their visibility watermark respected.

use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::core::{ContextSpec, HistoricalEntry};
use rcacopilot::embed::{FastTextConfig, FeatureExtractor};
use rcacopilot::serve::{
    AdmissionConfig, ArrivalModel, EngineConfig, IndexMode, OceFeedback, ServeEngine, StreamConfig,
    WalRecord, WorkerFaultConfig, WriteAheadLog,
};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, Incident, IncidentDataset, Topology};
use rcacopilot::telemetry::SimTime;
use serde_json::Value;

fn dataset() -> IncidentDataset {
    generate_dataset(&CampaignConfig {
        seed: 19,
        topology: Topology::new(2, 4, 2, 2),
        noise: NoiseProfile {
            routine_logs: 2,
            herring_logs: 1,
            healthy_traces: 1,
            unrelated_failure: false,
            bystander_anomalies: 1,
        },
    })
}

fn quick_config() -> RcaCopilotConfig {
    RcaCopilotConfig {
        embedding: FastTextConfig {
            dim: 24,
            epochs: 8,
            lr: 0.4,
            features: FeatureExtractor {
                buckets: 1 << 12,
                ..FeatureExtractor::default()
            },
            ..FastTextConfig::default()
        },
        ..RcaCopilotConfig::default()
    }
}

fn trained() -> (RcaCopilot, Vec<Incident>) {
    let dataset = dataset();
    let split = dataset.split(7, 0.6);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let copilot = RcaCopilot::train(
        &prepared.train_examples(&ContextSpec::default()),
        quick_config(),
    );
    let test: Vec<Incident> = split
        .test
        .iter()
        .take(24)
        .map(|&i| dataset.incidents()[i].clone())
        .collect();
    (copilot, test)
}

/// Looks up a (possibly nested) field of a JSON report map.
fn field<'a>(v: &'a Value, path: &[&str]) -> &'a Value {
    let mut cur = v;
    for key in path {
        cur = cur
            .as_map()
            .expect("report node is a map")
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("report field {key} missing"));
    }
    cur
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::U64(n) => *n,
        Value::I64(n) => *n as u64,
        other => panic!("expected number, got {other:?}"),
    }
}

/// A bursty storm so concurrent workers actually contend on the index.
fn storm() -> StreamConfig {
    StreamConfig {
        seed: 12,
        arrivals: ArrivalModel::Bursty {
            mean_gap_secs: 300,
            burst_prob: 0.5,
            burst_len: 6,
            burst_gap_secs: 5,
        },
        reraise_prob: 0.2,
    }
}

/// The tentpole invariant: the prediction log is byte-identical between
/// the unsharded engine and every sharded configuration, across worker
/// counts, under a bursty online-mode storm.
#[test]
fn sharded_log_is_byte_identical_across_shards_and_workers() {
    let (copilot, test) = trained();
    let stream = storm();
    let run = |shards: usize, workers: usize| {
        let engine = ServeEngine::new(
            copilot.clone(),
            EngineConfig {
                workers,
                shards,
                index_mode: IndexMode::Online,
                admission: AdmissionConfig::unbounded(),
                ..EngineConfig::default()
            },
        );
        engine.run(&test, &stream)
    };
    let reference = run(1, 1);
    assert_eq!(reference.records.len(), reference.planned);
    let ref_len = as_u64(field(&reference.report, &["online_index_len"]));
    for shards in [1usize, 2, 8] {
        for workers in [1usize, 4] {
            let out = run(shards, workers);
            assert_eq!(
                out.log, reference.log,
                "{shards} shards × {workers} workers diverged from the unsharded log"
            );
            assert_eq!(
                as_u64(field(&out.report, &["engine", "shards"])) as usize,
                shards
            );
            assert_eq!(
                as_u64(field(&out.report, &["online_index_len"])),
                ref_len,
                "index length must not depend on the shard count"
            );
        }
    }
}

/// Crash-at-virtual-time recovery with shard-tagged WAL records: a run
/// killed mid-stream resumes byte-identically — including when the
/// resumed engine uses a *different* shard count than the crashed one,
/// because checkpoints store entries in global insertion order and the
/// category router re-routes them deterministically.
#[test]
fn crash_recovery_replays_shard_tagged_records_across_shard_counts() {
    let (copilot, test) = trained();
    let stream = storm();
    let base = EngineConfig {
        index_mode: IndexMode::Online,
        admission: AdmissionConfig::unbounded(),
        faults: WorkerFaultConfig {
            panic_per_mille: 60,
            stall_per_mille: 40,
            error_per_mille: 30,
            ..WorkerFaultConfig::default()
        },
        checkpoint_every: 3,
        compact_epochs: 2,
        shards: 4,
        ..EngineConfig::default()
    };

    // Uninterrupted sharded reference.
    let reference = {
        let engine = ServeEngine::new(
            copilot.clone(),
            EngineConfig {
                workers: 2,
                ..base.clone()
            },
        );
        let mut wal = WriteAheadLog::new();
        engine
            .run_with_wal(&test, &stream, &mut wal)
            .expect("fresh journal")
    };
    assert!(!reference.crashed());

    let n = reference.records.len();
    let crash_at = reference.records[n / 2].at;
    for (resume_shards, workers) in [(4usize, 1usize), (2, 4), (8, 1), (1, 4)] {
        let crashed = ServeEngine::new(
            copilot.clone(),
            EngineConfig {
                workers,
                crash_at: Some(crash_at),
                ..base.clone()
            },
        );
        let mut wal = WriteAheadLog::new();
        let partial = crashed
            .run_with_wal(&test, &stream, &mut wal)
            .expect("fresh journal");
        assert!(partial.crashed());
        assert!(reference.log.starts_with(&partial.log));
        // The journal's epoch records carry the shard that published.
        let epochs: Vec<usize> = wal
            .records()
            .expect("clean journal")
            .into_iter()
            .filter_map(|r| match r {
                WalRecord::Epoch { shard, .. } => Some(shard),
                _ => None,
            })
            .collect();
        if !epochs.is_empty() {
            assert!(epochs.iter().all(|&s| s < 4), "shard tags within range");
            assert!(
                epochs.iter().any(|&s| s > 0),
                "4 shards over many categories must publish beyond shard 0"
            );
        }
        // Process death: only the serialized bytes survive. Resume with a
        // different shard count than the run that crashed.
        let bytes = wal.serialized();
        let mut reloaded = WriteAheadLog::load(&bytes);
        let resumed = ServeEngine::new(
            copilot.clone(),
            EngineConfig {
                workers,
                shards: resume_shards,
                ..base.clone()
            },
        )
        .run_with_wal(&test, &stream, &mut reloaded)
        .expect("recoverable journal");
        assert_eq!(
            resumed.log, reference.log,
            "resume into {resume_shards} shards with {workers} workers diverged"
        );
    }
}

/// OCE feedback corrections journal as `WalRecord::Feedback`, replay
/// into the corrected category's shard on the next run, and respect
/// their `visible_from` watermark: a correction visible only after the
/// stream's end leaves the prediction log byte-identical while still
/// landing in the index.
#[test]
fn feedback_corrections_journal_and_replay_with_watermark() {
    let (copilot, test) = trained();
    let stream = storm();
    let config = |shards: usize| EngineConfig {
        workers: 2,
        shards,
        index_mode: IndexMode::Online,
        admission: AdmissionConfig::unbounded(),
        ..EngineConfig::default()
    };

    // Crash a journaled run halfway so the correction replays *before*
    // uncommitted events.
    let engine = ServeEngine::new(copilot.clone(), config(2));
    let reference = {
        let mut wal = WriteAheadLog::new();
        engine
            .run_with_wal(&test, &stream, &mut wal)
            .expect("fresh journal")
    };
    let crash_at = reference.records[reference.records.len() / 2].at;
    let crashed = ServeEngine::new(
        copilot.clone(),
        EngineConfig {
            crash_at: Some(crash_at),
            ..config(2)
        },
    );
    let mut wal = WriteAheadLog::new();
    let partial = crashed
        .run_with_wal(&test, &stream, &mut wal)
        .expect("fresh journal");
    assert!(partial.crashed());

    // The OCE corrects the first served prediction after the fact.
    let original = HistoricalEntry {
        id: 0,
        category: test[0].category.clone(),
        summary: "as served".to_string(),
        at: reference.records[0].at,
        embedding: copilot.embed_scaled("original diagnostic text"),
    };
    // Visible only after every remaining event: the log must not move.
    let far_future = SimTime::from_secs(u64::MAX / 2);
    let corrected = engine.ingest_feedback(
        &mut wal,
        &original,
        &OceFeedback {
            category: test[1].category.clone(),
            summary: "OCE: actually a downstream config rollout".to_string(),
            corrected_at: far_future,
        },
    );
    assert_eq!(corrected.category, test[1].category);
    assert_eq!(corrected.embedding, original.embedding);
    let recovery = wal.recover().expect("gapless");
    assert!(
        recovery
            .entries
            .iter()
            .any(|ce| ce.visible_from == far_future
                && ce.entry.summary == "OCE: actually a downstream config rollout"),
        "the correction must replay from the journal"
    );

    // Resume with the correction in the journal, at two shard counts:
    // both must match the uncorrected reference log (the watermark hides
    // the correction from every query) while the index carries the
    // extra entry.
    let bytes = wal.serialized();
    for shards in [1usize, 4] {
        let mut reloaded = WriteAheadLog::load(&bytes);
        let resumed = ServeEngine::new(copilot.clone(), config(shards))
            .run_with_wal(&test, &stream, &mut reloaded)
            .expect("recoverable journal");
        assert_eq!(
            resumed.log, reference.log,
            "a future-dated correction must not change the log ({shards} shards)"
        );
        assert_eq!(
            as_u64(field(&resumed.report, &["online_index_len"])),
            as_u64(field(&reference.report, &["online_index_len"])) + 1,
            "the correction must still land in the index ({shards} shards)"
        );
    }
}
