//! Property test for the dual-mode runtime: a frozen-replay serving run
//! under [`RealClock`](rcacopilot::serve::RealClock) — real worker
//! threads, real (scaled) stage sleeps, wall-clock measurement — must
//! produce a prediction log byte-identical to the deterministic
//! virtual-time run of the same incidents, for any worker count. This is
//! the contract that makes the DES results trustworthy as predictions of
//! real deployments: the clock backend changes *when* work happens in
//! wall time, never *what* the engine decides.
//!
//! Faults stay disabled here on purpose: fault *fates* are planned on
//! virtual time and mode-independent by the same construction, but
//! panic-driven respawns add real-sleep backoff noise that makes the
//! test slower without strengthening the property (engine unit tests
//! cover faulted real runs).

use proptest::prelude::*;
use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::core::ContextSpec;
use rcacopilot::embed::{FastTextConfig, FeatureExtractor};
use rcacopilot::serve::{
    AdmissionConfig, ClockConfig, EngineConfig, IndexMode, RealClockConfig, ServeEngine,
    StreamConfig,
};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, Incident, Topology};
use std::sync::OnceLock;

/// Shared fixture: one trained copilot plus its held-out incidents.
/// Training is the expensive part; every proptest case replays subsets.
fn fixture() -> &'static (RcaCopilot, Vec<Incident>) {
    static FIXTURE: OnceLock<(RcaCopilot, Vec<Incident>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = generate_dataset(&CampaignConfig {
            seed: 29,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile::default(),
        });
        let split = dataset.split(7, 0.6);
        let prepared = PreparedDataset::prepare(&dataset, &split);
        let copilot = RcaCopilot::train(
            &prepared.train_examples(&ContextSpec::default()),
            RcaCopilotConfig {
                embedding: FastTextConfig {
                    dim: 16,
                    epochs: 4,
                    lr: 0.4,
                    features: FeatureExtractor {
                        buckets: 1 << 10,
                        ..FeatureExtractor::default()
                    },
                    ..FastTextConfig::default()
                },
                ..RcaCopilotConfig::default()
            },
        );
        let test: Vec<Incident> = split
            .test
            .iter()
            .map(|&i| dataset.incidents()[i].clone())
            .collect();
        (copilot, test)
    })
}

/// Runs a frozen-replay engine over `incidents` under the given clock.
fn run(
    incidents: &[Incident],
    workers: usize,
    clock: ClockConfig,
) -> rcacopilot::serve::ServeOutcome {
    let (copilot, _) = fixture();
    let engine = ServeEngine::new(
        copilot.clone(),
        EngineConfig {
            workers,
            index_mode: IndexMode::Frozen,
            admission: AdmissionConfig::unbounded(),
            clock,
            ..EngineConfig::default()
        },
    );
    engine.run(incidents, &StreamConfig::replay())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// RealClock frozen replay ≡ DES frozen replay, byte for byte,
    /// across worker counts.
    #[test]
    fn real_clock_replay_matches_the_des_log(
        picks in proptest::collection::vec(0usize..100, 1..8),
        real_workers in 1usize..5,
    ) {
        let (_, test) = fixture();
        let incidents: Vec<Incident> = picks
            .iter()
            .map(|&p| test[p % test.len()].clone())
            .collect();

        let des = run(&incidents, 1, ClockConfig::Virtual);
        prop_assert!(des.wall.is_none(), "DES runs carry no wall stats");

        // 1 µs per virtual second keeps each case's real sleeps in the
        // low milliseconds while still exercising the sleep paths.
        let real = run(
            &incidents,
            real_workers,
            ClockConfig::Real(RealClockConfig {
                nanos_per_virtual_sec: 1_000,
                pace_arrivals: false,
            }),
        );
        let wall = real.wall;
        prop_assert_eq!(
            &real.log,
            &des.log,
            "real-clock log diverged from DES (workers {})",
            real_workers
        );
        let wall = match wall {
            Some(w) => w,
            None => return Err(TestCaseError::fail("real runs must measure wall time")),
        };
        prop_assert_eq!(wall.completed, incidents.len());
        prop_assert!(wall.wall_nanos > 0, "real runs burn real time");
    }
}
