//! Integration tests of the online serving engine against the batch
//! pipeline: replayed streams must reproduce the batch predictions
//! byte-for-byte, logs must be independent of the worker count, and the
//! online index must let the stream learn from its own resolved
//! incidents.

use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::core::ContextSpec;
use rcacopilot::embed::{FastTextConfig, FeatureExtractor};
use rcacopilot::serve::{
    AdmissionConfig, ArrivalModel, EngineConfig, EventOutcome, IndexMode, ServeEngine, StreamConfig,
};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{
    generate_dataset, CampaignConfig, Incident, IncidentDataset, Topology, TrainTestSplit,
};

fn dataset() -> IncidentDataset {
    generate_dataset(&CampaignConfig {
        seed: 13,
        topology: Topology::new(2, 4, 2, 2),
        noise: NoiseProfile {
            routine_logs: 2,
            herring_logs: 1,
            healthy_traces: 1,
            unrelated_failure: false,
            bystander_anomalies: 1,
        },
    })
}

fn quick_config() -> RcaCopilotConfig {
    RcaCopilotConfig {
        embedding: FastTextConfig {
            dim: 24,
            epochs: 8,
            lr: 0.4,
            features: FeatureExtractor {
                buckets: 1 << 12,
                ..FeatureExtractor::default()
            },
            ..FastTextConfig::default()
        },
        ..RcaCopilotConfig::default()
    }
}

fn trained(
    dataset: &IncidentDataset,
) -> (RcaCopilot, PreparedDataset, TrainTestSplit, Vec<Incident>) {
    let split = dataset.split(7, 0.6);
    let prepared = PreparedDataset::prepare(dataset, &split);
    let spec = ContextSpec::default();
    let copilot = RcaCopilot::train(&prepared.train_examples(&spec), quick_config());
    let test: Vec<Incident> = split
        .test
        .iter()
        .map(|&i| dataset.incidents()[i].clone())
        .collect();
    (copilot, prepared, split, test)
}

/// Frozen index + replayed timeline + no admission control is *literally*
/// the batch pipeline: every streamed prediction must equal
/// `predict_degraded` on the prepared dataset, field for field.
#[test]
fn frozen_replay_matches_batch_pipeline_exactly() {
    let dataset = dataset();
    let (copilot, prepared, split, test) = trained(&dataset);
    let spec = ContextSpec::default();
    let engine = ServeEngine::new(
        copilot.clone(),
        EngineConfig {
            workers: 3,
            queue_capacity: 4,
            index_mode: IndexMode::Frozen,
            admission: AdmissionConfig::unbounded(),
            ..EngineConfig::default()
        },
    );
    let out = engine.run(&test, &StreamConfig::replay());
    assert_eq!(out.records.len(), test.len());
    for record in &out.records {
        let i = split.test[record.incident_idx];
        let inc = &prepared.incidents[i];
        let batch = copilot.predict_degraded(
            &inc.raw_diag,
            &prepared.context_text(i, &spec),
            inc.at,
            &inc.degradation,
        );
        match &record.outcome {
            EventOutcome::Predicted {
                prediction,
                degraded,
            } => {
                assert!(!degraded, "unbounded admission never degrades");
                assert_eq!(
                    prediction, &batch,
                    "streamed prediction diverged from batch for incident {i}"
                );
            }
            EventOutcome::Shed { .. } => panic!("unbounded admission never sheds"),
            EventOutcome::Failed { reason } => panic!("fault-free run failed: {reason}"),
        }
    }
}

/// The full engine — online index, bursty stream, flapping monitors,
/// admission control — must produce byte-identical prediction logs no
/// matter how many workers execute it.
#[test]
fn online_log_is_byte_identical_across_worker_counts() {
    let dataset = dataset();
    let stream = StreamConfig {
        seed: 21,
        arrivals: ArrivalModel::Bursty {
            mean_gap_secs: 300,
            burst_prob: 0.5,
            burst_len: 6,
            burst_gap_secs: 6,
        },
        reraise_prob: 0.2,
    };
    let run = |workers: usize, queue_capacity: usize| {
        let (copilot, _, _, test) = trained(&dataset);
        let engine = ServeEngine::new(
            copilot,
            EngineConfig {
                workers,
                queue_capacity,
                index_mode: IndexMode::Online,
                admission: AdmissionConfig {
                    capacity_secs: 1_800,
                    ..AdmissionConfig::default()
                },
                ..EngineConfig::default()
            },
        );
        engine.run(&test, &stream)
    };
    let serial = run(1, 64);
    let wide = run(4, 2);
    assert_eq!(
        serial.log, wide.log,
        "worker count or queue capacity leaked into the prediction log"
    );
    assert!(
        serial.log.contains("verdict=shed"),
        "the storm should engage admission control"
    );
    assert!(
        serial
            .records
            .iter()
            .any(|r| matches!(&r.outcome, EventOutcome::Predicted { degraded, .. } if *degraded)),
        "the storm should degrade some admissions"
    );
}

/// Online mode learns from the stream: an incident whose category the
/// training set has never seen is predicted correctly the *second* time
/// it streams, because the first occurrence resolved into the index. The
/// frozen index, by construction, cannot do this.
#[test]
fn online_index_learns_new_categories_from_resolved_incidents() {
    let dataset = dataset();
    let (copilot, _, split, test) = trained(&dataset);
    // A category absent from training, streamed twice with a quiet gap so
    // the first occurrence resolves before the second arrives.
    let train_cats: std::collections::BTreeSet<&str> = split
        .train
        .iter()
        .map(|&i| dataset.incidents()[i].category.as_str())
        .collect();
    let novel = test
        .iter()
        .find(|inc| !train_cats.contains(inc.category.as_str()))
        .expect("held-out split contains a never-trained category")
        .clone();
    let stream_slice = vec![novel.clone(), novel.clone()];
    let stream = StreamConfig {
        seed: 3,
        arrivals: ArrivalModel::Poisson {
            mean_gap_secs: 7_200,
        },
        reraise_prob: 0.0,
    };
    let run = |mode: IndexMode| {
        let engine = ServeEngine::new(
            copilot.clone(),
            EngineConfig {
                workers: 2,
                index_mode: mode,
                admission: AdmissionConfig::unbounded(),
                ..EngineConfig::default()
            },
        );
        engine.run(&stream_slice, &stream)
    };
    let online = run(IndexMode::Online);
    let frozen = run(IndexMode::Frozen);
    let second = |out: &rcacopilot::serve::ServeOutcome| match &out.records[1].outcome {
        EventOutcome::Predicted { prediction, .. } => prediction.clone(),
        EventOutcome::Shed { .. } => panic!("nothing sheds here"),
        EventOutcome::Failed { reason } => panic!("fault-free run failed: {reason}"),
    };
    let online_second = second(&online);
    let frozen_second = second(&frozen);
    assert!(
        online_second.demo_categories.contains(&novel.category),
        "first occurrence should be retrievable once resolved: demos {:?}",
        online_second.demo_categories
    );
    assert_eq!(
        online_second.label, novel.category,
        "second occurrence should be recognized online"
    );
    assert!(
        !frozen_second.demo_categories.contains(&novel.category),
        "frozen index cannot contain the streamed category"
    );
}
