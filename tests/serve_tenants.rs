//! Multi-tenant bulkhead integration tests.
//!
//! The tentpole isolation property: in a merged multi-tenant run, every
//! tenant's prediction log is **byte-identical** to a solo run of that
//! tenant with the same derived fair-share config — across worker counts
//! and shard counts, and with a noisy neighbor (flapping monitor storm +
//! ~30% worker-fault climate) raging in the same plane. Plus the
//! satellite: a durable journal holding interleaved multi-tenant records
//! reopens after a torn tail with only the owning tenant's watermark
//! rolled back.

use proptest::prelude::*;
use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::core::ContextSpec;
use rcacopilot::embed::{FastTextConfig, FeatureExtractor};
use rcacopilot::serve::{
    AdmissionConfig, BreakerConfig, EngineConfig, IndexMode, MultiTenantConfig, MultiTenantEngine,
    ServeEngine, WriteAheadLog,
};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{
    generate_dataset, partition_tenants, CampaignConfig, Incident, TenantStormPlan, Topology,
};
use rcacopilot::telemetry::ids::TenantId;
use std::sync::OnceLock;

/// Shared fixture: one trained copilot plus its held-out incidents.
/// Training is the expensive part; every case replays subsets.
fn fixture() -> &'static (RcaCopilot, Vec<Incident>) {
    static FIXTURE: OnceLock<(RcaCopilot, Vec<Incident>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = generate_dataset(&CampaignConfig {
            seed: 31,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile::default(),
        });
        let split = dataset.split(7, 0.6);
        let prepared = PreparedDataset::prepare(&dataset, &split);
        let copilot = RcaCopilot::train(
            &prepared.train_examples(&ContextSpec::default()),
            RcaCopilotConfig {
                embedding: FastTextConfig {
                    dim: 16,
                    epochs: 4,
                    lr: 0.4,
                    features: FeatureExtractor {
                        buckets: 1 << 10,
                        ..FeatureExtractor::default()
                    },
                    ..FastTextConfig::default()
                },
                ..RcaCopilotConfig::default()
            },
        );
        let test: Vec<Incident> = split
            .test
            .iter()
            .map(|&i| dataset.incidents()[i].clone())
            .collect();
        (copilot, test)
    })
}

fn base_config(workers: usize, shards: usize) -> EngineConfig {
    EngineConfig {
        workers,
        shards,
        index_mode: IndexMode::Online,
        admission: AdmissionConfig {
            capacity_secs: 28_800,
            ..AdmissionConfig::default()
        },
        breaker: Some(BreakerConfig::default()),
        ..EngineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cross-tenant isolation, the tentpole invariant: each tenant's log
    /// in a merged run (workers w₁, shards s₁) is byte-identical to a
    /// solo run of that tenant (workers w₂, shards s₂ — *different*
    /// pool geometry) using the same derived fair-share config — even
    /// though one tenant is a flapping storm with a ~30% worker-fault
    /// climate and its own circuit breaker tripping.
    #[test]
    fn tenant_logs_match_solo_baselines_across_workers_and_shards(
        picks in proptest::collection::vec(0usize..100, 6..14),
        quiet_tenants in 1usize..4,
        storm_slot in 0usize..4,
        merged_workers in 1usize..5,
        solo_workers in 1usize..5,
        merged_shards_pow in 0u32..3,
        solo_shards_pow in 0u32..3,
        seed in 40u64..60,
    ) {
        let (copilot, test) = fixture();
        let incidents: Vec<Incident> = picks
            .iter()
            .map(|&p| test[p % test.len()].clone())
            .collect();
        let mut plans: Vec<TenantStormPlan> = (0..quiet_tenants)
            .map(|i| TenantStormPlan::quiet(TenantId(1 + i as u64), seed + i as u64))
            .collect();
        let storm_slot = storm_slot % (plans.len() + 1);
        plans.insert(
            storm_slot,
            TenantStormPlan::flapping_storm(TenantId(100), seed + 17),
        );
        let parts = partition_tenants(&incidents, &plans);

        let merged_cfg = MultiTenantConfig {
            base: base_config(merged_workers, 1 << merged_shards_pow),
            ..MultiTenantConfig::default()
        };
        let plane = MultiTenantEngine::from_plans(copilot.clone(), merged_cfg, &plans);
        let out = plane.run(&parts);

        let solo_base = base_config(solo_workers, 1 << solo_shards_pow);
        for (i, run) in out.tenants.iter().enumerate() {
            let solo_cfg = MultiTenantEngine::tenant_engine_config(
                &solo_base,
                &plane.specs()[i],
                plane.total_weight(),
                None,
            );
            let solo = ServeEngine::new(copilot.clone(), solo_cfg)
                .run(&parts[i], &plane.specs()[i].stream);
            prop_assert_eq!(
                &run.outcome.log,
                &solo.log,
                "tenant {:?} (slot {}) diverged from its solo baseline \
                 (merged {}w×{}s vs solo {}w×{}s)",
                run.tenant,
                i,
                merged_workers,
                1 << merged_shards_pow,
                solo_workers,
                1 << solo_shards_pow
            );
        }

        // The merged transcript is a pure interleave: `ten=`-filtering
        // recovers each tenant's log exactly, and nothing else is in it.
        let mut recovered = 0usize;
        for run in &out.tenants {
            let tag = format!(" ten={} ", run.tenant.0);
            let filtered: String = out
                .log
                .lines()
                .filter(|l| l.contains(&tag))
                .map(|l| format!("{l}\n"))
                .collect();
            prop_assert_eq!(&filtered, &run.outcome.log);
            recovered += filtered.lines().count();
        }
        prop_assert_eq!(recovered, out.log.lines().count());
    }
}

/// Satellite: a *durable* journal holding interleaved multi-tenant
/// records survives a torn-tail reopen with per-tenant watermarks — the
/// tenant owning the torn line loses exactly that commit; every other
/// tenant's watermark is untouched.
#[test]
fn durable_interleaved_wal_reopen_rolls_back_only_the_torn_tenant() {
    let (copilot, test) = fixture();
    let incidents: Vec<Incident> = test.iter().take(10).cloned().collect();
    let plans = [
        TenantStormPlan::quiet(TenantId(1), 71),
        TenantStormPlan::quiet(TenantId(2), 72),
    ];
    let parts = partition_tenants(&incidents, &plans);
    let config = MultiTenantConfig {
        base: EngineConfig {
            admission: AdmissionConfig::unbounded(),
            ..EngineConfig::default()
        },
        ..MultiTenantConfig::default()
    };
    let plane = MultiTenantEngine::from_plans(copilot.clone(), config, &plans);

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/wal-tests");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("multitenant.wal");
    let _ = std::fs::remove_file(&path);

    // Run both tenants through one durable journal; the adopted merge
    // interleaves their streams by virtual anchor time.
    let out = {
        let mut wal = WriteAheadLog::open_durable(&path).expect("create");
        plane.run_with_wal(&parts, &mut wal).expect("clean journal")
    };
    let committed: Vec<usize> = out
        .tenants
        .iter()
        .map(|t| t.outcome.records.len())
        .collect();
    assert!(committed.iter().all(|&c| c > 0), "both tenants commit");

    // Tear the tail of the last line on disk — a crash mid-append.
    let bytes = std::fs::read(&path).expect("journal file");
    let torn_owner = {
        let text = String::from_utf8(bytes.clone()).expect("utf8 journal");
        let last = text.lines().last().expect("nonempty journal");
        // The last journaled line belongs to whichever tenant anchors
        // latest; recover its owner from the parsed record.
        let wal = WriteAheadLog::load(&text).expect("clean journal");
        let records = wal.records().expect("parseable");
        assert!(last.len() > 16, "line long enough to tear");
        records.last().expect("nonempty").tenant()
    };
    std::fs::write(&path, &bytes[..bytes.len() - 12]).expect("tear tail");

    // Reopen: the torn line is dropped; per-tenant recovery rolls back
    // only the owner of the torn record.
    let reopened = WriteAheadLog::open_durable(&path).expect("torn tail tolerated");
    let recovered = reopened.recover_tenants().expect("gapless per tenant");
    for (i, run) in out.tenants.iter().enumerate() {
        let got = recovered
            .get(&run.tenant)
            .map(|r| r.committed())
            .unwrap_or(0);
        if run.tenant == torn_owner {
            assert!(
                got < committed[i],
                "the torn tenant must lose at least the torn commit"
            );
        } else {
            assert_eq!(
                got, committed[i],
                "tenant {:?} watermark must be untouched by a neighbor's torn tail",
                run.tenant
            );
        }
    }

    // And the plane resumes from the torn journal to the same merged log.
    let mut reloaded = WriteAheadLog::open_durable(&path).expect("reopen");
    let resumed = plane
        .run_with_wal(&parts, &mut reloaded)
        .expect("recoverable journal");
    assert_eq!(resumed.log, out.log, "resume after torn tail diverged");
}
