//! Multi-tenant bulkhead integration tests.
//!
//! The tentpole isolation property: in a merged multi-tenant run, every
//! tenant's prediction log is **byte-identical** to a solo run of that
//! tenant with the same derived fair-share config — across worker counts
//! and shard counts, and with a noisy neighbor (flapping monitor storm +
//! ~30% worker-fault climate) raging in the same plane. Plus the
//! satellite: a durable journal holding interleaved multi-tenant records
//! reopens after a torn tail with only the owning tenant's watermark
//! rolled back.

use proptest::prelude::*;
use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::core::ContextSpec;
use rcacopilot::embed::{FastTextConfig, FeatureExtractor};
use rcacopilot::serve::{
    AdmissionConfig, BreakerConfig, EngineConfig, IndexMode, MultiTenantConfig, MultiTenantEngine,
    ServeEngine, WriteAheadLog,
};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{
    generate_dataset, partition_tenants, CampaignConfig, Incident, TenantStormPlan, Topology,
};
use rcacopilot::telemetry::ids::TenantId;
use std::sync::OnceLock;

/// Shared fixture: one trained copilot plus its held-out incidents.
/// Training is the expensive part; every case replays subsets.
fn fixture() -> &'static (RcaCopilot, Vec<Incident>) {
    static FIXTURE: OnceLock<(RcaCopilot, Vec<Incident>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = generate_dataset(&CampaignConfig {
            seed: 31,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile::default(),
        });
        let split = dataset.split(7, 0.6);
        let prepared = PreparedDataset::prepare(&dataset, &split);
        let copilot = RcaCopilot::train(
            &prepared.train_examples(&ContextSpec::default()),
            RcaCopilotConfig {
                embedding: FastTextConfig {
                    dim: 16,
                    epochs: 4,
                    lr: 0.4,
                    features: FeatureExtractor {
                        buckets: 1 << 10,
                        ..FeatureExtractor::default()
                    },
                    ..FastTextConfig::default()
                },
                ..RcaCopilotConfig::default()
            },
        );
        let test: Vec<Incident> = split
            .test
            .iter()
            .map(|&i| dataset.incidents()[i].clone())
            .collect();
        (copilot, test)
    })
}

fn base_config(workers: usize, shards: usize) -> EngineConfig {
    EngineConfig {
        workers,
        shards,
        index_mode: IndexMode::Online,
        admission: AdmissionConfig {
            capacity_secs: 28_800,
            ..AdmissionConfig::default()
        },
        breaker: Some(BreakerConfig::default()),
        ..EngineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cross-tenant isolation, the tentpole invariant: each tenant's log
    /// in a merged run (workers w₁, shards s₁) is byte-identical to a
    /// solo run of that tenant (workers w₂, shards s₂ — *different*
    /// pool geometry) using the same derived fair-share config — even
    /// though one tenant is a flapping storm with a ~30% worker-fault
    /// climate and its own circuit breaker tripping.
    #[test]
    fn tenant_logs_match_solo_baselines_across_workers_and_shards(
        picks in proptest::collection::vec(0usize..100, 6..14),
        quiet_tenants in 1usize..4,
        storm_slot in 0usize..4,
        merged_workers in 1usize..5,
        solo_workers in 1usize..5,
        merged_shards_pow in 0u32..3,
        solo_shards_pow in 0u32..3,
        seed in 40u64..60,
    ) {
        let (copilot, test) = fixture();
        let incidents: Vec<Incident> = picks
            .iter()
            .map(|&p| test[p % test.len()].clone())
            .collect();
        let mut plans: Vec<TenantStormPlan> = (0..quiet_tenants)
            .map(|i| TenantStormPlan::quiet(TenantId(1 + i as u64), seed + i as u64))
            .collect();
        let storm_slot = storm_slot % (plans.len() + 1);
        plans.insert(
            storm_slot,
            TenantStormPlan::flapping_storm(TenantId(100), seed + 17),
        );
        let parts = partition_tenants(&incidents, &plans);

        let merged_cfg = MultiTenantConfig {
            base: base_config(merged_workers, 1 << merged_shards_pow),
            ..MultiTenantConfig::default()
        };
        let plane = MultiTenantEngine::from_plans(copilot.clone(), merged_cfg, &plans)
            .expect("generated plans are distinct and non-empty");
        let out = plane.run(&parts).expect("one slice per tenant");

        let solo_base = base_config(solo_workers, 1 << solo_shards_pow);
        for (i, run) in out.tenants.iter().enumerate() {
            let solo_cfg = MultiTenantEngine::tenant_engine_config(
                &solo_base,
                &plane.specs()[i],
                plane.total_weight(),
                None,
            );
            let solo = ServeEngine::new(copilot.clone(), solo_cfg)
                .run(&parts[i], &plane.specs()[i].stream);
            prop_assert_eq!(
                &run.outcome.log,
                &solo.log,
                "tenant {:?} (slot {}) diverged from its solo baseline \
                 (merged {}w×{}s vs solo {}w×{}s)",
                run.tenant,
                i,
                merged_workers,
                1 << merged_shards_pow,
                solo_workers,
                1 << solo_shards_pow
            );
        }

        // The merged transcript is a pure interleave: `ten=`-filtering
        // recovers each tenant's log exactly, and nothing else is in it.
        let mut recovered = 0usize;
        for run in &out.tenants {
            let tag = format!(" ten={} ", run.tenant.0);
            let filtered: String = out
                .log
                .lines()
                .filter(|l| l.contains(&tag))
                .map(|l| format!("{l}\n"))
                .collect();
            prop_assert_eq!(&filtered, &run.outcome.log);
            recovered += filtered.lines().count();
        }
        prop_assert_eq!(recovered, out.log.lines().count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tenant-sharded runtime is a pure re-scheduling: over arbitrary
    /// (tenant count × shard count × per-tenant worker count) geometries,
    /// the parallel sharded composition reproduces the sequential one
    /// byte for byte — merged transcript, every per-tenant log, and the
    /// shared virtual horizon. Journaling through a WAL under one shard
    /// count and *recovering under a different one* also converges to the
    /// same transcript: shard geometry is invisible to the journal.
    #[test]
    fn sharded_runtime_reproduces_the_sequential_composition(
        picks in proptest::collection::vec(0usize..100, 8..16),
        quiet_tenants in 2usize..6,
        shards_pow in 1u32..4,
        resume_shards_pow in 0u32..4,
        tenant_workers in 1usize..3,
        seed in 60u64..80,
    ) {
        let (copilot, test) = fixture();
        let incidents: Vec<Incident> = picks
            .iter()
            .map(|&p| test[p % test.len()].clone())
            .collect();
        let mut plans: Vec<TenantStormPlan> = (0..quiet_tenants)
            .map(|i| TenantStormPlan::quiet(TenantId(1 + i as u64), seed + i as u64))
            .collect();
        let storm_slot = (seed as usize) % (plans.len() + 1);
        plans.insert(
            storm_slot,
            TenantStormPlan::flapping_storm(TenantId(100), seed + 23),
        );
        let parts = partition_tenants(&incidents, &plans);
        let config = |shards: usize| MultiTenantConfig {
            base: base_config(2, 2),
            shards,
            tenant_workers: Some(tenant_workers),
            ..MultiTenantConfig::default()
        };
        let plane = |shards: usize| {
            MultiTenantEngine::from_plans(copilot.clone(), config(shards), &plans)
                .expect("generated plans are distinct and non-empty")
        };

        let sequential = plane(1).run(&parts).expect("one slice per tenant");
        let shards = 1usize << shards_pow;
        let sharded = plane(shards).run(&parts).expect("one slice per tenant");
        prop_assert_eq!(
            &sharded.log,
            &sequential.log,
            "{} shards diverged from the sequential composition",
            shards
        );
        for (a, b) in sharded.tenants.iter().zip(&sequential.tenants) {
            prop_assert_eq!(&a.outcome.log, &b.outcome.log, "tenant {:?}", a.tenant);
        }
        prop_assert_eq!(sharded.horizon_secs, sequential.horizon_secs);

        // Journal under the sharded geometry, then recover the journal
        // under a different shard count: same transcript, no re-execution
        // drift — the WAL stream merge is shard-agnostic.
        let mut wal = WriteAheadLog::new();
        let journaled = plane(shards)
            .run_with_wal(&parts, &mut wal)
            .expect("clean in-memory journal");
        prop_assert_eq!(&journaled.log, &sequential.log);
        let resume_shards = 1usize << resume_shards_pow;
        let resumed = plane(resume_shards)
            .run_with_wal(&parts, &mut wal.clone())
            .expect("clean in-memory journal");
        prop_assert_eq!(
            &resumed.log,
            &sequential.log,
            "recovery into {} shards diverged from the {}-shard journal",
            resume_shards,
            shards
        );
    }
}

/// Satellite: a *durable* journal holding interleaved multi-tenant
/// records survives a torn-tail reopen with per-tenant watermarks — the
/// tenant owning the torn line loses exactly that commit; every other
/// tenant's watermark is untouched.
#[test]
fn durable_interleaved_wal_reopen_rolls_back_only_the_torn_tenant() {
    let (copilot, test) = fixture();
    let incidents: Vec<Incident> = test.iter().take(10).cloned().collect();
    let plans = [
        TenantStormPlan::quiet(TenantId(1), 71),
        TenantStormPlan::quiet(TenantId(2), 72),
    ];
    let parts = partition_tenants(&incidents, &plans);
    let config = MultiTenantConfig {
        base: EngineConfig {
            admission: AdmissionConfig::unbounded(),
            ..EngineConfig::default()
        },
        ..MultiTenantConfig::default()
    };
    let plane =
        MultiTenantEngine::from_plans(copilot.clone(), config, &plans).expect("well-formed plans");

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/wal-tests");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("multitenant.wal");
    let _ = std::fs::remove_file(&path);

    // Run both tenants through one durable journal; the adopted merge
    // interleaves their streams by virtual anchor time.
    let out = {
        let mut wal = WriteAheadLog::open_durable(&path).expect("create");
        plane.run_with_wal(&parts, &mut wal).expect("clean journal")
    };
    let committed: Vec<usize> = out
        .tenants
        .iter()
        .map(|t| t.outcome.records.len())
        .collect();
    assert!(committed.iter().all(|&c| c > 0), "both tenants commit");

    // Tear the tail of the last line on disk — a crash mid-append.
    let bytes = std::fs::read(&path).expect("journal file");
    let torn_owner = {
        let text = String::from_utf8(bytes.clone()).expect("utf8 journal");
        let last = text.lines().last().expect("nonempty journal");
        // The last journaled line belongs to whichever tenant anchors
        // latest; recover its owner from the parsed record.
        let wal = WriteAheadLog::load(&text);
        let records = wal.records().expect("parseable");
        assert!(last.len() > 16, "line long enough to tear");
        records.last().expect("nonempty").tenant()
    };
    std::fs::write(&path, &bytes[..bytes.len() - 12]).expect("tear tail");

    // Reopen: the torn line is dropped; per-tenant recovery rolls back
    // only the owner of the torn record.
    let reopened = WriteAheadLog::open_durable(&path).expect("torn tail tolerated");
    let recovered = reopened.recover_tenants().expect("gapless per tenant");
    for (i, run) in out.tenants.iter().enumerate() {
        let got = recovered
            .get(&run.tenant)
            .map(|r| r.committed())
            .unwrap_or(0);
        if run.tenant == torn_owner {
            assert!(
                got < committed[i],
                "the torn tenant must lose at least the torn commit"
            );
        } else {
            assert_eq!(
                got, committed[i],
                "tenant {:?} watermark must be untouched by a neighbor's torn tail",
                run.tenant
            );
        }
    }

    // And the plane resumes from the torn journal to the same merged log.
    let mut reloaded = WriteAheadLog::open_durable(&path).expect("reopen");
    let resumed = plane
        .run_with_wal(&parts, &mut reloaded)
        .expect("recoverable journal");
    assert_eq!(resumed.log, out.log, "resume after torn tail diverged");
}

/// Satellite: *mid-log* corruption (bit rot, not a torn tail) in one
/// tenant's stream of an interleaved durable journal is quarantined on
/// reopen, rolls the owner back to the record before the flip, and must
/// not move any other tenant's watermark. The plane then resumes from
/// the damaged journal to the exact merged log of the clean run.
#[test]
fn mid_log_corruption_in_one_tenant_leaves_neighbor_watermarks_intact() {
    let (copilot, test) = fixture();
    let incidents: Vec<Incident> = test.iter().take(12).cloned().collect();
    let plans = [
        TenantStormPlan::quiet(TenantId(1), 81),
        TenantStormPlan::quiet(TenantId(2), 82),
    ];
    let parts = partition_tenants(&incidents, &plans);
    let config = MultiTenantConfig {
        base: EngineConfig {
            admission: AdmissionConfig::unbounded(),
            ..EngineConfig::default()
        },
        ..MultiTenantConfig::default()
    };
    let plane =
        MultiTenantEngine::from_plans(copilot.clone(), config, &plans).expect("well-formed plans");

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/wal-tests");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("multitenant_bitrot.wal");
    let _ = std::fs::remove_file(&path);

    let out = {
        let mut wal = WriteAheadLog::open_durable(&path).expect("create");
        plane.run_with_wal(&parts, &mut wal).expect("clean journal")
    };
    let committed: Vec<usize> = out
        .tenants
        .iter()
        .map(|t| t.outcome.records.len())
        .collect();
    assert!(
        committed.iter().all(|&c| c >= 2),
        "both tenants commit twice"
    );

    // Pick a mid-log commit with seq >= 1 whose owner has a later
    // record, and flip one bit inside its framed payload.
    let text = std::fs::read_to_string(&path).expect("journal file");
    let records = WriteAheadLog::load(&text).records().expect("parseable");
    let lines: Vec<&str> = text.lines().collect();
    let (victim_line, victim_owner, victim_seq) = records
        .iter()
        .enumerate()
        .filter_map(|(i, r)| match r {
            rcacopilot::serve::WalRecord::Commit { seq, .. }
                if *seq >= 1 && i + 1 < lines.len() =>
            {
                Some((i, r.tenant(), *seq))
            }
            _ => None,
        })
        .next()
        .expect("an interleaved journal has a mid-log commit past seq 0");
    let offset: usize = lines[..victim_line].iter().map(|l| l.len() + 1).sum();
    let mut bytes = text.into_bytes();
    bytes[offset + 20] ^= 0x01;
    std::fs::write(&path, &bytes).expect("inject bit rot");

    // Reopen: the flip is caught by the record CRC and quarantined, the
    // owner rolls back to the break, the neighbor is untouched.
    let reopened = WriteAheadLog::open_durable(&path).expect("corruption quarantined, not fatal");
    assert_eq!(reopened.quarantined().len(), 1, "exactly the injected flip");
    let recovered = reopened.recover_tenants().expect("gapless per tenant");
    for (i, run) in out.tenants.iter().enumerate() {
        let got = recovered
            .get(&run.tenant)
            .map(|r| r.committed())
            .unwrap_or(0);
        if run.tenant == victim_owner {
            assert_eq!(
                got, victim_seq,
                "owner must roll back to exactly the corrupted record"
            );
        } else {
            assert_eq!(
                got, committed[i],
                "tenant {:?} watermark must be untouched by a neighbor's bit rot",
                run.tenant
            );
        }
    }

    // The reopen rewrote the journal to its consistent prefix; resuming
    // re-executes the owner's lost suffix and converges byte-identically.
    let mut reloaded = WriteAheadLog::open_durable(&path).expect("reopen");
    let resumed = plane
        .run_with_wal(&parts, &mut reloaded)
        .expect("recoverable journal");
    assert_eq!(resumed.log, out.log, "resume after bit rot diverged");
}
