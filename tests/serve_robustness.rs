//! Crash-tolerance integration tests of the serving engine: injected
//! worker faults must never lose an event or leak into the prediction
//! log, poison pills must quarantine instead of aborting the process,
//! collection failures must degrade a single event, and a run killed at
//! a virtual instant must resume from its write-ahead log with a
//! byte-identical prediction log.

use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::core::{CollectionStage, ContextSpec};
use rcacopilot::embed::{FastTextConfig, FeatureExtractor};
use rcacopilot::handlers::HandlerRegistry;
use rcacopilot::serve::{
    AdmissionConfig, ArrivalModel, EngineConfig, EventOutcome, IndexMode, ServeEngine,
    StreamConfig, WorkerFaultConfig, WriteAheadLog,
};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, Incident, IncidentDataset, Topology};
use rcacopilot::telemetry::SimTime;
use serde_json::Value;

fn dataset() -> IncidentDataset {
    generate_dataset(&CampaignConfig {
        seed: 19,
        topology: Topology::new(2, 4, 2, 2),
        noise: NoiseProfile {
            routine_logs: 2,
            herring_logs: 1,
            healthy_traces: 1,
            unrelated_failure: false,
            bystander_anomalies: 1,
        },
    })
}

fn quick_config() -> RcaCopilotConfig {
    RcaCopilotConfig {
        embedding: FastTextConfig {
            dim: 24,
            epochs: 8,
            lr: 0.4,
            features: FeatureExtractor {
                buckets: 1 << 12,
                ..FeatureExtractor::default()
            },
            ..FastTextConfig::default()
        },
        ..RcaCopilotConfig::default()
    }
}

fn trained() -> (RcaCopilot, Vec<Incident>) {
    let dataset = dataset();
    let split = dataset.split(7, 0.6);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let copilot = RcaCopilot::train(
        &prepared.train_examples(&ContextSpec::default()),
        quick_config(),
    );
    let test: Vec<Incident> = split
        .test
        .iter()
        .take(24)
        .map(|&i| dataset.incidents()[i].clone())
        .collect();
    (copilot, test)
}

/// Looks up a (possibly nested) field of a JSON report map.
fn field<'a>(v: &'a Value, path: &[&str]) -> &'a Value {
    let mut cur = v;
    for key in path {
        cur = cur
            .as_map()
            .expect("report node is a map")
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("report field {key} missing"));
    }
    cur
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::U64(n) => *n,
        Value::I64(n) => *n as u64,
        other => panic!("expected number, got {other:?}"),
    }
}

/// 20% worker faults (panics + stalls + transient errors): every stream
/// event must still complete — predicted or quarantined, never lost —
/// and the prediction log must stay byte-identical across worker counts.
#[test]
fn twenty_percent_worker_faults_lose_nothing_and_stay_deterministic() {
    let (copilot, test) = trained();
    let stream = StreamConfig {
        seed: 4,
        arrivals: ArrivalModel::Poisson { mean_gap_secs: 600 },
        reraise_prob: 0.2,
    };
    let faults = WorkerFaultConfig {
        panic_per_mille: 120,
        stall_per_mille: 50,
        error_per_mille: 30,
        ..WorkerFaultConfig::default()
    };
    let run = |workers: usize| {
        let engine = ServeEngine::new(
            copilot.clone(),
            EngineConfig {
                workers,
                index_mode: IndexMode::Online,
                admission: AdmissionConfig::unbounded(),
                faults,
                ..EngineConfig::default()
            },
        );
        engine.run(&test, &stream)
    };
    let out1 = run(1);
    let out4 = run(4);
    assert_eq!(
        out1.records.len(),
        out1.planned,
        "every event must complete under 20% worker faults"
    );
    assert!(!out1.crashed());
    assert_eq!(
        out1.log, out4.log,
        "fault handling leaked worker count into the log"
    );
    let panics = as_u64(field(&out1.report, &["faults", "worker_panics"]));
    let respawns = as_u64(field(&out1.report, &["faults", "worker_respawns"]));
    assert!(panics > 0, "the seeded plan must fire panics at 12%");
    assert_eq!(panics, respawns, "every kill must respawn a worker");
    let redispatches = as_u64(field(&out1.report, &["faults", "redispatches"]));
    assert!(redispatches > 0, "lost attempts must be re-dispatched");
}

/// With a 100% panic rate every event is a poison pill: after the
/// default two worker kills each must be quarantined to a dead-letter
/// `[pipeline failure]` record — the process must not abort and the
/// stream must still finish in order.
#[test]
fn poison_pills_quarantine_to_dead_letter_records() {
    let (copilot, test) = trained();
    let engine = ServeEngine::new(
        copilot,
        EngineConfig {
            workers: 3,
            admission: AdmissionConfig::unbounded(),
            faults: WorkerFaultConfig {
                panic_per_mille: 1000,
                ..WorkerFaultConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    let out = engine.run(&test, &StreamConfig::replay());
    assert_eq!(out.records.len(), test.len());
    for (i, record) in out.records.iter().enumerate() {
        assert_eq!(record.seq, i, "records must stay in stream order");
        match &record.outcome {
            EventOutcome::Failed { reason } => {
                assert!(
                    reason.contains("[pipeline failure] quarantined: kills=2"),
                    "unexpected reason {reason:?}"
                );
            }
            other => panic!("event {i} should be quarantined, got {other:?}"),
        }
    }
    let quarantined = as_u64(field(&out.report, &["faults", "quarantined"]));
    assert_eq!(quarantined as usize, test.len());
    assert!(out.log.contains("verdict=failed"));
}

/// A collection stage with no registered handlers fails every event:
/// each must degrade to a `[pipeline failure] collection` dead-letter
/// record instead of panicking the engine.
#[test]
fn collection_failure_degrades_the_event_not_the_run() {
    let (copilot, test) = trained();
    let engine = ServeEngine::with_stage(
        copilot,
        CollectionStage::new(HandlerRegistry::new()),
        EngineConfig {
            workers: 2,
            admission: AdmissionConfig::unbounded(),
            ..EngineConfig::default()
        },
    );
    let out = engine.run(&test, &StreamConfig::replay());
    assert_eq!(out.records.len(), test.len());
    assert!(out.records.iter().all(|r| matches!(
        &r.outcome,
        EventOutcome::Failed { reason } if reason.contains("[pipeline failure] collection")
    )));
    let failures = as_u64(field(&out.report, &["faults", "collection_failures"]));
    assert_eq!(failures as usize, test.len());
}

/// A zero-fault journaled run must produce exactly the log of the plain
/// engine: the WAL layer is observationally free when nothing crashes.
#[test]
fn journaling_is_free_when_nothing_crashes() {
    let (copilot, test) = trained();
    let stream = StreamConfig {
        seed: 9,
        arrivals: ArrivalModel::Poisson { mean_gap_secs: 900 },
        reraise_prob: 0.25,
    };
    let config = EngineConfig {
        workers: 2,
        index_mode: IndexMode::Online,
        admission: AdmissionConfig::unbounded(),
        checkpoint_every: 4,
        compact_epochs: 2,
        ..EngineConfig::default()
    };
    let engine = ServeEngine::new(copilot, config.clone());
    let plain = engine.run(&test, &stream);
    let mut wal = WriteAheadLog::new();
    let journaled = engine
        .run_with_wal(&test, &stream, &mut wal)
        .expect("fresh journal");
    assert_eq!(plain.log, journaled.log, "journaling changed the output");
    assert!(!wal.is_empty(), "commits must be journaled");
    assert!(
        wal.checkpointed() > 0,
        "checkpoint folding must engage at checkpoint_every=4"
    );
}

/// The tentpole invariant: an engine killed at a seeded virtual time —
/// journal serialized to bytes, process gone — resumes from the reloaded
/// journal with a prediction log byte-identical to the uninterrupted
/// run, for 1 and 4 workers, at several crash points, with faults and
/// checkpoint folding and epoch compaction all enabled.
#[test]
fn crash_at_virtual_time_recovers_byte_identically() {
    let (copilot, test) = trained();
    let stream = StreamConfig {
        seed: 6,
        arrivals: ArrivalModel::Poisson { mean_gap_secs: 700 },
        reraise_prob: 0.2,
    };
    let faults = WorkerFaultConfig {
        panic_per_mille: 60,
        stall_per_mille: 40,
        error_per_mille: 30,
        ..WorkerFaultConfig::default()
    };
    let base = EngineConfig {
        index_mode: IndexMode::Online,
        admission: AdmissionConfig::unbounded(),
        faults,
        checkpoint_every: 3,
        compact_epochs: 2,
        ..EngineConfig::default()
    };

    // Uninterrupted reference.
    let reference = {
        let engine = ServeEngine::new(
            copilot.clone(),
            EngineConfig {
                workers: 2,
                ..base.clone()
            },
        );
        let mut wal = WriteAheadLog::new();
        engine
            .run_with_wal(&test, &stream, &mut wal)
            .expect("fresh journal")
    };
    // Re-raises make the stream longer than the incident slice.
    assert_eq!(reference.records.len(), reference.planned);
    assert!(!reference.crashed());

    // Crash points: virtual arrival instants one, two and three quarters
    // into the stream.
    let n = reference.records.len();
    let crash_times: Vec<SimTime> = [n / 4, n / 2, 3 * n / 4]
        .iter()
        .map(|&k| reference.records[k].at)
        .collect();

    for &crash_at in &crash_times {
        for workers in [1usize, 4] {
            let crashed = ServeEngine::new(
                copilot.clone(),
                EngineConfig {
                    workers,
                    crash_at: Some(crash_at),
                    ..base.clone()
                },
            );
            let mut wal = WriteAheadLog::new();
            let partial = crashed
                .run_with_wal(&test, &stream, &mut wal)
                .expect("fresh journal");
            assert!(
                partial.crashed(),
                "crash at {}s must cut the stream short",
                crash_at.as_secs()
            );
            assert!(
                reference.log.starts_with(&partial.log),
                "the committed prefix must match the uninterrupted run"
            );
            // Simulate process death: only the serialized journal
            // survives.
            let bytes = wal.serialized();
            let mut reloaded = WriteAheadLog::load(&bytes);
            let resumed = ServeEngine::new(
                copilot.clone(),
                EngineConfig {
                    workers,
                    ..base.clone()
                },
            )
            .run_with_wal(&test, &stream, &mut reloaded)
            .expect("recoverable journal");
            assert_eq!(
                resumed.log,
                reference.log,
                "resume after crash at {}s with {workers} workers diverged",
                crash_at.as_secs()
            );
            assert_eq!(resumed.records.len(), reference.records.len());
        }
    }
}
