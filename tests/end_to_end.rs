//! End-to-end integration: campaign → collection → summarization →
//! retrieval → prediction, across every workspace crate.

use rcacopilot::core::context::ContextSpec;
use rcacopilot::core::eval::{evaluate_method, Method, PreparedDataset};
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::embed::{FastTextConfig, FeatureExtractor};
use rcacopilot::llm::ModelProfile;
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, Topology};

/// A reduced campaign + pipeline configuration so debug-mode test runs
/// stay fast while still exercising every stage.
fn small_setup() -> (PreparedDataset, RcaCopilotConfig) {
    let dataset = generate_dataset(&CampaignConfig {
        seed: 42,
        topology: Topology::new(2, 6, 3, 3),
        noise: NoiseProfile {
            routine_logs: 8,
            herring_logs: 2,
            healthy_traces: 3,
            unrelated_failure: true,
            bystander_anomalies: 2,
        },
    });
    let split = dataset.split(7, 0.75);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let config = RcaCopilotConfig {
        embedding: FastTextConfig {
            dim: 32,
            epochs: 6,
            lr: 0.35,
            features: FeatureExtractor {
                buckets: 1 << 13,
                ..FeatureExtractor::default()
            },
            ..FastTextConfig::default()
        },
        ..RcaCopilotConfig::default()
    };
    (prepared, config)
}

#[test]
fn pipeline_beats_trivial_baselines_end_to_end() {
    let (prepared, config) = small_setup();
    let spec = ContextSpec::default();
    let copilot = RcaCopilot::train(&prepared.train_examples(&spec), config);

    let gold: Vec<String> = prepared.test_gold();
    let preds: Vec<String> = prepared
        .test
        .iter()
        .map(|&i| {
            let inc = &prepared.incidents[i];
            copilot
                .predict(&inc.raw_diag, &prepared.context_text(i, &spec), inc.at)
                .label
        })
        .collect();
    let f1 = rcacopilot::core::metrics::f1_scores(&gold, &preds);

    // Majority-class accuracy on this dataset is ~4% (27/653); the
    // pipeline must be far above it even with the reduced config.
    assert!(
        f1.micro_f1 > 0.45,
        "end-to-end micro-F1 too low: {}",
        f1.micro_f1
    );
    assert!(f1.macro_f1 > 0.30, "macro-F1 too low: {}", f1.macro_f1);
}

#[test]
fn predictions_are_deterministic_given_seeds() {
    let (prepared, config) = small_setup();
    let spec = ContextSpec::default();
    let copilot_a = RcaCopilot::train(&prepared.train_examples(&spec), config.clone());
    let copilot_b = RcaCopilot::train(&prepared.train_examples(&spec), config);
    for &i in prepared.test.iter().take(25) {
        let inc = &prepared.incidents[i];
        let a = copilot_a.predict(&inc.raw_diag, &prepared.context_text(i, &spec), inc.at);
        let b = copilot_b.predict(&inc.raw_diag, &prepared.context_text(i, &spec), inc.at);
        assert_eq!(a.label, b.label, "nondeterministic prediction at {i}");
        assert_eq!(a.explanation, b.explanation);
    }
}

#[test]
fn every_prediction_carries_an_explanation_and_demos_or_unseen() {
    let (prepared, config) = small_setup();
    let spec = ContextSpec::default();
    let copilot = RcaCopilot::train(&prepared.train_examples(&spec), config);
    for &i in prepared.test.iter().take(40) {
        let inc = &prepared.incidents[i];
        let pred = copilot.predict(&inc.raw_diag, &prepared.context_text(i, &spec), inc.at);
        assert!(!pred.label.is_empty());
        assert!(
            pred.explanation.len() > 40,
            "explanation too thin: {}",
            pred.explanation
        );
        if !pred.unseen {
            assert!(pred.demo_categories.contains(&pred.label));
        }
    }
}

#[test]
fn zero_shot_baseline_runs_through_the_harness() {
    let (prepared, _) = small_setup();
    let report = evaluate_method(&prepared, Method::ZeroShot, 3);
    assert_eq!(report.predictions.len(), prepared.test.len());
    // Zero-shot free-generates keywords; they rarely match OCE labels.
    assert!(report.f1.micro_f1 < 0.2);
}

#[test]
fn gpt4_profile_is_at_least_as_good_as_gpt35_on_average() {
    let (prepared, config) = small_setup();
    let spec = ContextSpec::default();
    let mut wins = 0;
    for seed in [1, 2, 3] {
        let mut cfg4 = config.clone();
        cfg4.llm_seed = seed;
        cfg4.profile = ModelProfile::Gpt4;
        let mut cfg35 = config.clone();
        cfg35.llm_seed = seed;
        cfg35.profile = ModelProfile::Gpt35;
        let c4 = RcaCopilot::train(&prepared.train_examples(&spec), cfg4);
        let c35 = RcaCopilot::train(&prepared.train_examples(&spec), cfg35);
        let gold = prepared.test_gold();
        let p4: Vec<String> = prepared
            .test
            .iter()
            .map(|&i| {
                let inc = &prepared.incidents[i];
                c4.predict(&inc.raw_diag, &prepared.context_text(i, &spec), inc.at)
                    .label
            })
            .collect();
        let p35: Vec<String> = prepared
            .test
            .iter()
            .map(|&i| {
                let inc = &prepared.incidents[i];
                c35.predict(&inc.raw_diag, &prepared.context_text(i, &spec), inc.at)
                    .label
            })
            .collect();
        let f4 = rcacopilot::core::metrics::f1_scores(&gold, &p4).micro_f1;
        let f35 = rcacopilot::core::metrics::f1_scores(&gold, &p35).micro_f1;
        if f4 >= f35 {
            wins += 1;
        }
    }
    assert!(
        wins >= 2,
        "GPT-4 profile should win most rounds, won {wins}/3"
    );
}
