//! Integration of simulator + handler engine: every incident in a
//! campaign must be collectable, and the collected diagnostics must carry
//! the cross-source evidence the paper's Insight 1 demands.

use rcacopilot::core::collection::CollectionStage;
use rcacopilot::handlers::standard_handlers;
use rcacopilot::llm::Summarizer;
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, IncidentDataset, Topology};
use rcacopilot::telemetry::alert::AlertType;

fn dataset() -> IncidentDataset {
    generate_dataset(&CampaignConfig {
        seed: 42,
        topology: Topology::new(2, 6, 3, 3),
        noise: NoiseProfile {
            routine_logs: 8,
            herring_logs: 2,
            healthy_traces: 3,
            unrelated_failure: true,
            bystander_anomalies: 2,
        },
    })
}

#[test]
fn all_653_incidents_are_collectable() {
    let ds = dataset();
    let stage = CollectionStage::standard();
    for inc in ds.incidents() {
        let collected = stage
            .collect(inc)
            .unwrap_or_else(|e| panic!("{}: {e}", inc.category));
        assert!(
            collected.run.sections.len() >= 3,
            "{}: too few sections ({})",
            inc.category,
            collected.run.sections.len()
        );
        assert!(!collected.diagnostic_text().is_empty());
    }
}

#[test]
fn handler_paths_differ_across_alert_types() {
    let ds = dataset();
    let stage = CollectionStage::standard();
    let mut first_steps = std::collections::BTreeMap::new();
    for inc in ds.incidents() {
        let collected = stage.collect(inc).unwrap();
        first_steps
            .entry(inc.alert.alert_type.name())
            .or_insert_with(|| collected.run.path.clone());
    }
    assert_eq!(first_steps.len(), AlertType::ALL.len());
    let distinct: std::collections::BTreeSet<&Vec<String>> = first_steps.values().collect();
    assert!(
        distinct.len() >= AlertType::ALL.len() - 1,
        "handlers should follow distinct workflows"
    );
}

#[test]
fn summaries_respect_budget_and_keep_signal() {
    let ds = dataset();
    let stage = CollectionStage::standard();
    let summarizer = Summarizer::default();
    let mut compressed = 0;
    for inc in ds.incidents().iter().take(120) {
        let diag = stage.collect(inc).unwrap().diagnostic_text();
        let summary = summarizer.summarize(&diag);
        let words = summary.split_whitespace().count();
        assert!(words <= 140, "{}: {words} words", inc.category);
        if summary.len() < diag.len() {
            compressed += 1;
        }
    }
    assert!(
        compressed > 100,
        "summaries should shorten most incidents ({compressed}/120)"
    );
}

#[test]
fn hub_port_exhaustion_signal_spans_two_sources() {
    // Paper Insight 1 via Figure 6: probe/log evidence alone is ambiguous;
    // the socket table completes the picture. The handler must collect
    // both for every HubPortExhaustion incident.
    let ds = dataset();
    let stage = CollectionStage::standard();
    for inc in ds
        .incidents()
        .iter()
        .filter(|i| i.category == "HubPortExhaustion")
    {
        let text = stage.collect(inc).unwrap().diagnostic_text();
        assert!(
            text.contains("WinSock error: 11001"),
            "probe/log evidence missing"
        );
        assert!(
            text.contains("Total UDP socket count"),
            "socket table missing"
        );
    }
}

#[test]
fn registry_round_trips_through_json_with_all_handlers() {
    let registry = standard_handlers();
    let json = registry.to_json();
    let restored = rcacopilot::handlers::HandlerRegistry::from_json(&json).unwrap();
    assert_eq!(restored.enabled_count(), AlertType::ALL.len());
    for at in AlertType::ALL {
        let original = registry.current(at).unwrap();
        let back = restored.current(at).unwrap();
        assert_eq!(original, back, "{at} handler drifted through JSON");
    }
}
