//! Robustness of the collection pipeline under fault-injected telemetry:
//! the no-fault plan is byte-identical to the plain path, every fault
//! kind degrades gracefully instead of panicking, the resilient executor
//! is deterministic for a fixed (plan seed, retry policy), and a heavily
//! faulted campaign still flows end-to-end into downgraded predictions.

use proptest::prelude::*;
use rcacopilot::core::collection::CollectionStage;
use rcacopilot::core::context::ContextSpec;
use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::handlers::RetryPolicy;
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{
    generate_dataset, CampaignConfig, FaultPlan, IncidentDataset, Topology,
};
use rcacopilot::telemetry::fault::{FaultDecision, FaultInjector};
use rcacopilot::telemetry::query::{Scope, TimeWindow};
use rcacopilot::telemetry::DataSource;
use std::sync::OnceLock;

/// A small campaign shared across tests (generation is the expensive
/// part; collection runs are cheap).
fn dataset() -> &'static IncidentDataset {
    static DS: OnceLock<IncidentDataset> = OnceLock::new();
    DS.get_or_init(|| {
        generate_dataset(&CampaignConfig {
            seed: 21,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile {
                routine_logs: 6,
                herring_logs: 2,
                healthy_traces: 2,
                unrelated_failure: true,
                bystander_anomalies: 2,
            },
        })
    })
}

/// An injector that returns the same decision for every first attempt
/// (and lets retries through, for transient-recovery coverage).
#[derive(Debug)]
struct Always(FaultDecision);

impl FaultInjector for Always {
    fn decide(&self, _: DataSource, _: Scope, _: TimeWindow, _: u32) -> FaultDecision {
        self.0
    }
}

#[test]
fn no_fault_plan_is_byte_identical_to_plain_pipeline() {
    let ds = dataset();
    let plain = CollectionStage::standard();
    let faulted = CollectionStage::standard_with_faults(Box::new(FaultPlan::none()));
    for inc in ds.incidents().iter().take(60) {
        let a = plain.collect(inc).expect("plain collection");
        let b = faulted.collect(inc).expect("inert-plan collection");
        assert_eq!(a, b, "{}: inert fault plan changed the run", inc.category);
        assert_eq!(a.diagnostic_text(), b.diagnostic_text());
        assert_eq!(b.completeness(), 1.0);
    }
}

#[test]
fn every_fault_kind_degrades_gracefully_without_panicking() {
    let ds = dataset();
    let kinds = [
        (FaultDecision::Timeout, "[data unavailable:"),
        (FaultDecision::Unavailable, "[data unavailable:"),
        (
            FaultDecision::PartialRows {
                keep_per_mille: 400,
            },
            "[data degraded:",
        ),
        (
            FaultDecision::StaleWindow { lag_secs: 1800 },
            "[data degraded:",
        ),
    ];
    for (decision, marker) in kinds {
        let stage = CollectionStage::standard_with_faults(Box::new(Always(decision)));
        for inc in ds.incidents().iter().take(12) {
            let collected = stage
                .collect(inc)
                .unwrap_or_else(|e| panic!("{decision:?} aborted the run: {e}"));
            let text = collected.diagnostic_text();
            assert!(
                text.contains(marker),
                "{decision:?} on {}: no {marker} section in:\n{text}",
                inc.category
            );
            assert!(collected.completeness() < 1.0, "{decision:?} not recorded");
        }
    }
}

#[test]
fn heavy_fault_rate_still_flows_end_to_end_with_downgraded_confidence() {
    let ds = dataset();
    let split = ds.split(7, 0.75);
    let stage = CollectionStage::standard_with_faults(Box::new(FaultPlan::uniform(5, 0.3)));
    // Every handler run must complete: prepare_with panics on any
    // collection abort, so reaching this point is itself the assertion.
    let prepared = PreparedDataset::prepare_with(ds, &split, &stage);
    assert_eq!(prepared.incidents.len(), ds.incidents().len());

    let degraded_count = prepared
        .incidents
        .iter()
        .filter(|i| i.completeness() < 1.0)
        .count();
    assert!(
        degraded_count > prepared.incidents.len() / 10,
        "30% fault rate degraded only {degraded_count} incidents"
    );
    assert!(prepared.mean_test_completeness() < 1.0);
    assert!(prepared
        .incidents
        .iter()
        .any(|i| i.raw_diag.contains("[data unavailable:")));

    let spec = ContextSpec::default();
    let copilot = RcaCopilot::train(&prepared.train_examples(&spec), RcaCopilotConfig::default());
    let mut saw_downgrade = false;
    for &i in prepared.test.iter().take(40) {
        let inc = &prepared.incidents[i];
        let context = prepared.context_text(i, &spec);
        let pred = copilot.predict_degraded(&inc.raw_diag, &context, inc.at, &inc.degradation);
        assert!(!pred.label.is_empty());
        if inc.completeness() < 1.0 {
            let clean = copilot.predict(&inc.raw_diag, &context, inc.at);
            assert!(
                pred.confidence <= clean.confidence,
                "degraded confidence {} above clean {}",
                pred.confidence,
                clean.confidence
            );
            assert!(pred.completeness < 1.0);
            assert!(
                pred.explanation.contains("incomplete"),
                "no degradation annotation in: {}",
                pred.explanation
            );
            saw_downgrade = true;
        }
    }
    assert!(saw_downgrade, "no degraded test incident in the first 40");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same fault-plan seed + retry policy ⇒ identical handler runs,
    /// section for section.
    #[test]
    fn executor_is_deterministic_for_fixed_seed(
        seed in 0u64..1_000,
        rate_pct in 0u32..60,
        max_attempts in 1u32..5,
    ) {
        let ds = dataset();
        let rate = f64::from(rate_pct) / 100.0;
        let policy = RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        };
        let make_stage = || {
            let mut stage = CollectionStage::standard_with_faults(
                Box::new(FaultPlan::uniform(seed, rate)),
            );
            stage.set_retry_policy(policy);
            stage
        };
        let (a, b) = (make_stage(), make_stage());
        for inc in ds.incidents().iter().step_by(37).take(10) {
            let ra = a.collect(inc).expect("resilient run never aborts");
            let rb = b.collect(inc).expect("resilient run never aborts");
            prop_assert_eq!(&ra.run, &rb.run);
            prop_assert_eq!(ra.diagnostic_text(), rb.diagnostic_text());
        }
    }

    /// Virtual-time spend never exceeds the handler budget by more than
    /// one worst-case action (the budget gate runs before each attempt).
    #[test]
    fn budget_overshoot_is_bounded_by_one_action(
        seed in 0u64..500,
        budget_ms in 100u64..5_000,
    ) {
        let ds = dataset();
        let policy = RetryPolicy {
            handler_budget_ms: budget_ms,
            ..RetryPolicy::default()
        };
        let slack = policy.worst_case_action_ms();
        let mut stage = CollectionStage::standard_with_faults(
            Box::new(FaultPlan::uniform(seed, 0.4)),
        );
        stage.set_retry_policy(policy);
        for inc in ds.incidents().iter().step_by(53).take(8) {
            let run = stage.collect(inc).expect("resilient run never aborts").run;
            prop_assert!(
                run.degradation.budget_spent_ms < budget_ms + slack,
                "spent {}ms against budget {}ms (+{}ms slack)",
                run.degradation.budget_spent_ms, budget_ms, slack
            );
        }
    }
}
