//! Crash-point torture tests for the WAL storage fault plane.
//!
//! The serving engine journals through a seeded simulated disk
//! ([`SimDisk`]) that records every write and fsync barrier, so after a
//! run we can ask: *what would the media hold if the process had died
//! here?* — at any barrier, plus any byte prefix of the un-fsynced
//! window, with seeded page drops and bit rot layered on. Each crash
//! image is recovered through the normal [`WriteAheadLog`] load path and
//! the engine is resumed from it. The invariants, searched rather than
//! spot-checked:
//!
//! 1. **No acked commit lost**: every record fully fsync'd before the
//!    crash survives recovery, at every crash point (clean-crash mixes).
//! 2. **Byte-identical replay**: the resumed run's prediction log equals
//!    the uninterrupted baseline, whatever the crash left behind.
//! 3. **Corruption is quarantined, not fatal**: injected bit flips map
//!    to exactly the quarantined dead letters (or the torn tail, when
//!    the flip hits the final line), and recovery still converges.
//! 4. **`ENOSPC` degrades, never aborts**: a tight byte budget pauses
//!    durability, checkpoint-fold-and-retry resumes it, and the run
//!    completes with the baseline log and honest fault counters.
//!
//! The exhaustive sweep (hundreds of points × fault mixes × geometries)
//! lives in the `wal_torture` bench; these tests keep CI-sized slices of
//! the same machinery permanently red/green.

use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::core::ContextSpec;
use rcacopilot::embed::{FastTextConfig, FeatureExtractor};
use rcacopilot::serve::{
    AdmissionConfig, ArrivalModel, CrashPoint, EngineConfig, IndexMode, ServeEngine, SimDisk,
    SimDiskConfig, StreamConfig, WalSink, WriteAheadLog,
};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{
    generate_dataset, CampaignConfig, Incident, StorageFaultPlan, Topology,
};
use std::sync::OnceLock;

/// Shared fixture: one trained copilot plus its held-out incidents.
fn fixture() -> &'static (RcaCopilot, Vec<Incident>) {
    static FIXTURE: OnceLock<(RcaCopilot, Vec<Incident>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = generate_dataset(&CampaignConfig {
            seed: 33,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile::default(),
        });
        let split = dataset.split(7, 0.6);
        let prepared = PreparedDataset::prepare(&dataset, &split);
        let copilot = RcaCopilot::train(
            &prepared.train_examples(&ContextSpec::default()),
            RcaCopilotConfig {
                embedding: FastTextConfig {
                    dim: 16,
                    epochs: 4,
                    lr: 0.4,
                    features: FeatureExtractor {
                        buckets: 1 << 10,
                        ..FeatureExtractor::default()
                    },
                    ..FastTextConfig::default()
                },
                ..RcaCopilotConfig::default()
            },
        );
        let test: Vec<Incident> = split
            .test
            .iter()
            .map(|&i| dataset.incidents()[i].clone())
            .collect();
        (copilot, test)
    })
}

fn stream() -> StreamConfig {
    StreamConfig {
        seed: 9,
        arrivals: ArrivalModel::Poisson { mean_gap_secs: 600 },
        reraise_prob: 0.1,
    }
}

fn config(workers: usize, shards: usize) -> EngineConfig {
    EngineConfig {
        workers,
        shards,
        index_mode: IndexMode::Online,
        admission: AdmissionConfig::unbounded(),
        ..EngineConfig::default()
    }
}

/// Runs the engine journaling through a fresh [`SimDisk`] built from
/// `plan`, returning the disk (which outlives the run, like real media
/// outliving a crashed process) and the run's prediction log.
fn run_on_disk(
    workers: usize,
    shards: usize,
    incidents: &[Incident],
    plan: &StorageFaultPlan,
) -> (SimDisk, String) {
    let (copilot, _) = fixture();
    let disk = SimDisk::new(SimDiskConfig::from_plan(plan));
    let mut wal = WriteAheadLog::with_sink(Box::new(disk.clone())).expect("fresh disk");
    let out = ServeEngine::new(copilot.clone(), config(workers, shards))
        .run_with_wal(incidents, &stream(), &mut wal)
        .expect("fresh journal");
    (disk, out.log)
}

/// Recovers a crash image into a WAL over a restored clean disk.
fn recover_image(bytes: &[u8]) -> (SimDisk, WriteAheadLog) {
    let disk = SimDisk::restore(SimDiskConfig::default(), bytes);
    let wal = WriteAheadLog::with_sink(Box::new(disk.clone())).expect("restored disk");
    (disk, wal)
}

/// Sweeps clean crash points (no injected corruption) at every sampled
/// fsync barrier × tail offset: commits acked by a completed fsync must
/// survive recovery at every point, and a sampled subset of points must
/// resume to the byte-identical baseline log.
#[test]
fn clean_crash_sweep_never_loses_an_acked_commit() {
    let (copilot, test) = fixture();
    let incidents: Vec<Incident> = test.iter().take(10).cloned().collect();
    // Two pool geometries: the journal contents differ (epoch batching),
    // the invariants must not.
    for (workers, shards) in [(1usize, 1usize), (3, 2)] {
        let baseline = ServeEngine::new(copilot.clone(), config(workers, shards))
            .run(&incidents, &stream())
            .log;
        let plan = StorageFaultPlan::clean(17);
        let (disk, full_log) = run_on_disk(workers, shards, &incidents, &plan);
        assert_eq!(full_log, baseline, "journaled run must match baseline");

        let windows = disk.barrier_windows();
        let barriers = disk.barriers();
        assert!(barriers >= incidents.len(), "every append fsyncs");
        let mut points_checked = 0usize;
        let mut resumes = 0usize;
        for (k, &window) in windows.iter().enumerate() {
            for tail in [0usize, 1, window / 2, window] {
                let point = CrashPoint {
                    barriers: k,
                    tail_bytes: tail,
                    nonce: k as u64,
                };
                let image = disk.crash_image(point);
                // The acked prefix: exactly what fsync promised — the
                // media at the last completed barrier, no torn tail.
                let acked = WriteAheadLog::load_bytes(
                    &disk
                        .crash_image(CrashPoint {
                            barriers: k,
                            tail_bytes: 0,
                            nonce: k as u64,
                        })
                        .bytes,
                );
                let acked_recovery = acked.recover().expect("acked prefix is clean");
                let (_, recovered) = recover_image(&image.bytes);
                assert!(
                    recovered.quarantined().is_empty(),
                    "a clean crash never produces corruption (point {point:?})"
                );
                let recovery = recovered.recover().expect("clean crash image");
                assert!(
                    recovery.committed() >= acked_recovery.committed(),
                    "acked commit lost at {point:?}: {} < {}",
                    recovery.committed(),
                    acked_recovery.committed()
                );
                assert_eq!(
                    &recovery.records[..acked_recovery.committed()],
                    &acked_recovery.records[..],
                    "recovered prefix diverged from the acked records at {point:?}"
                );
                points_checked += 1;
                // Resuming the engine is the expensive half: sample it.
                if tail == window / 2 && k % 3 == 0 {
                    let (_, mut wal) = recover_image(&image.bytes);
                    let resumed = ServeEngine::new(copilot.clone(), config(workers, shards))
                        .run_with_wal(&incidents, &stream(), &mut wal)
                        .expect("recovered journal");
                    assert_eq!(
                        resumed.log, baseline,
                        "resume from {point:?} must replay byte-identically"
                    );
                    resumes += 1;
                }
            }
        }
        assert!(
            points_checked >= 40,
            "sweep too small to mean anything: {points_checked}"
        );
        assert!(resumes >= 3, "too few resume points: {resumes}");
    }
}

/// Injects seeded single-bit rot over a completed journal: every flip
/// must surface as either a quarantined dead letter or a torn tail —
/// never a silent wrong record, never a fatal error — and the resumed
/// run must still converge to the baseline log.
#[test]
fn bit_rot_maps_to_quarantine_exactly_and_replay_converges() {
    let (copilot, test) = fixture();
    let incidents: Vec<Incident> = test.iter().take(8).cloned().collect();
    let baseline = ServeEngine::new(copilot.clone(), config(2, 2))
        .run(&incidents, &stream())
        .log;
    let (disk, _) = run_on_disk(2, 2, &incidents, &StorageFaultPlan::clean(23));
    let clean: Vec<u8> = disk
        .crash_image(CrashPoint {
            barriers: usize::MAX,
            tail_bytes: 0,
            nonce: 0,
        })
        .bytes;
    // Offset → line index map of the clean journal.
    let line_of: Vec<usize> = {
        let mut v = Vec::with_capacity(clean.len());
        let mut line = 0usize;
        for &b in &clean {
            v.push(line);
            if b == b'\n' {
                line += 1;
            }
        }
        v
    };
    let last_line = *line_of.last().expect("nonempty journal");
    let total_lines = clean.iter().filter(|&&b| b == b'\n').count();

    // Lay the finished journal onto a bit-rotting disk and take crash
    // images across nonces: each draws a different flip pattern.
    let rot = SimDisk::restore(
        SimDiskConfig::from_plan(&StorageFaultPlan::bit_rot(29)),
        &clean,
    );
    let mut images_with_flips = 0usize;
    let mut resumes = 0usize;
    for nonce in 0..100u64 {
        let image = rot.crash_image(CrashPoint {
            barriers: 1,
            tail_bytes: 0,
            nonce,
        });
        if image.flipped.is_empty() {
            continue;
        }
        images_with_flips += 1;
        if image.flipped.iter().any(|&o| clean[o] == b'\n') {
            // A flipped newline fuses two physical lines; the loader's
            // resync handles it but line accounting shifts, so exact
            // set-matching only applies to the other images. Still: it
            // must recover and replay.
            let (_, mut wal) = recover_image(&image.bytes);
            let resumed = ServeEngine::new(copilot.clone(), config(2, 2))
                .run_with_wal(&incidents, &stream(), &mut wal)
                .expect("recovered journal");
            assert_eq!(resumed.log, baseline);
            resumes += 1;
            continue;
        }
        let mut hit_lines: Vec<usize> = image.flipped.iter().map(|&o| line_of[o]).collect();
        hit_lines.sort_unstable();
        hit_lines.dedup();
        let expect_torn = hit_lines.contains(&last_line);
        let expect_quarantined: Vec<usize> = hit_lines
            .iter()
            .copied()
            .filter(|&l| l != last_line)
            .collect();

        let (_, recovered) = recover_image(&image.bytes);
        let got: Vec<usize> = recovered.quarantined().iter().map(|q| q.line).collect();
        assert_eq!(
            got, expect_quarantined,
            "quarantined lines must be exactly the flipped lines \
             (nonce {nonce}, flips {:?})",
            image.flipped
        );
        assert_eq!(
            recovered.had_torn_tail(),
            expect_torn,
            "a final-line flip is indistinguishable from a torn tail (nonce {nonce})"
        );
        assert!(
            recovered.len()
                + recovered.quarantined().len()
                + recovered.dropped_records() as usize
                + usize::from(recovered.had_torn_tail())
                <= total_lines,
            "accounting must never invent records"
        );
        // Replay converges on a sample of the rotten images.
        if resumes < 5 {
            let (_, mut wal) = recover_image(&image.bytes);
            let resumed = ServeEngine::new(copilot.clone(), config(2, 2))
                .run_with_wal(&incidents, &stream(), &mut wal)
                .expect("recovered journal");
            assert_eq!(
                resumed.log, baseline,
                "resume after bit rot (nonce {nonce})"
            );
            resumes += 1;
        }
    }
    assert!(
        images_with_flips >= 10,
        "bit-rot preset too weak to exercise anything: {images_with_flips}"
    );
    assert!(resumes >= 3, "too few rotten resumes: {resumes}");
}

/// A disk with a tight byte budget: the engine must complete the run
/// with the baseline log, answering `ENOSPC` with fold-and-retry and
/// surfacing the degradation in the report instead of aborting.
#[test]
fn enospc_budget_degrades_to_paused_durability_but_completes() {
    let (copilot, test) = fixture();
    let incidents: Vec<Incident> = test.iter().take(10).cloned().collect();
    let baseline = ServeEngine::new(copilot.clone(), config(2, 1))
        .run(&incidents, &stream())
        .log;
    // Size the budget off the clean journal: roomy enough to start,
    // far too small for the whole run.
    let (clean_disk, _) = run_on_disk(2, 1, &incidents, &StorageFaultPlan::clean(31));
    let full_len = clean_disk
        .crash_image(CrashPoint {
            barriers: usize::MAX,
            tail_bytes: 0,
            nonce: 0,
        })
        .bytes
        .len();
    let plan = StorageFaultPlan::tight_budget(31, (full_len / 3) as u64);
    let disk = SimDisk::new(SimDiskConfig::from_plan(&plan));
    let mut wal = WriteAheadLog::with_sink(Box::new(disk.clone())).expect("fresh disk");
    let mut cfg = config(2, 1);
    cfg.checkpoint_every = 4; // folding is what frees budget
    let out = ServeEngine::new(copilot.clone(), cfg)
        .run_with_wal(&incidents, &stream(), &mut wal)
        .expect("ENOSPC must never be fatal");
    assert_eq!(out.log, baseline, "budget pressure must not change results");
    assert!(wal.enospc_events() > 0, "budget was sized to be hit");
    assert!(wal.durability_paused_spans() > 0);
    assert!(
        wal.is_durable(),
        "ENOSPC keeps the sink attached (paused), never detaches it"
    );
    // The journal on media is a consistent loadable prefix even if the
    // run ended mid-pause.
    let mut media = disk.clone();
    let bytes = media.contents().expect("media");
    let reloaded = WriteAheadLog::load_bytes(&bytes);
    assert!(reloaded.quarantined().is_empty());
    reloaded.recover().expect("media journal is consistent");
    // Degradation is surfaced in the engine report's fault counters.
    let rendered = serde_json::to_string(&out.report).expect("report");
    assert!(
        rendered.contains("\"enospc_events\""),
        "report must carry the durability counters"
    );
}

/// Flaky I/O (injected per-mille write + fsync errors): the engine
/// retries, degrades, and completes with the baseline log — transient
/// storage noise must never change predictions or abort a run.
#[test]
fn flaky_io_is_retried_or_degraded_but_never_changes_results() {
    let (copilot, test) = fixture();
    let incidents: Vec<Incident> = test.iter().take(10).cloned().collect();
    let baseline = ServeEngine::new(copilot.clone(), config(2, 1))
        .run(&incidents, &stream())
        .log;
    // The preset's 30‰ rate is tuned for long bench sweeps; a short CI
    // run needs hotter dice to guarantee at least one firing.
    let mut disk_cfg = SimDiskConfig::from_plan(&StorageFaultPlan::flaky(37));
    disk_cfg.write_error_per_mille = 150;
    disk_cfg.fsync_error_per_mille = 150;
    let disk = SimDisk::new(disk_cfg);
    let mut wal = WriteAheadLog::with_sink(Box::new(disk.clone())).expect("fresh disk");
    let out = ServeEngine::new(copilot.clone(), config(2, 1))
        .run_with_wal(&incidents, &stream(), &mut wal)
        .expect("flaky I/O must never be fatal");
    assert_eq!(out.log, baseline);
    assert!(
        wal.sink_retries() + wal.fsync_failures() + wal.sink_failures() > 0,
        "150‰ error rates must fire at least once over a whole run"
    );
    // Whatever survived on media must load and recover cleanly.
    let mut media = disk.clone();
    let bytes = media.contents().expect("media");
    let reloaded = WriteAheadLog::load_bytes(&bytes);
    reloaded.recover().expect("media journal is consistent");
}
