//! Integration of retrieval, prompt construction, and the simulated LLM.

use rcacopilot::core::retrieval::{similarity, HistoricalEntry, HistoricalIndex, RetrievalConfig};
use rcacopilot::llm::prompt::{PredictionPrompt, PromptOption, SummaryPrompt};
use rcacopilot::llm::{CotEngine, ModelProfile};
use rcacopilot::telemetry::time::SimTime;
use rcacopilot::textkit::bpe::BpeTokenizer;

#[test]
fn paper_similarity_formula_end_to_end() {
    // sim = 1/(1+d) * e^(-alpha*|dt|), paper §4.2.2.
    let d = 3.0f64;
    let dt = 4.0f64;
    let alpha = 0.3f64;
    let expected = (1.0 / (1.0 + d)) * (-alpha * dt).exp();
    assert!((similarity(d, dt, alpha) - expected).abs() < 1e-12);
}

#[test]
fn retrieval_feeds_figure9_prompt_and_cot_selects() {
    let mut index = HistoricalIndex::new();
    let entries = [
        (0usize, "HubPortExhaustion", 95u64, vec![0.1f32, 0.0],
         "DatacenterHubOutboundProxyProbe failed twice with WinSock error 11001; UDP socket count 14923 held by Transport.exe."),
        (1, "DeliveryHang", 97, vec![4.0, 4.0],
         "62 managed threads BLOCKED in TransportDelivery waiting on DeliveryQueue; mailbox delivery queue over limit."),
        (2, "FullDisk", 60, vec![8.0, 0.5],
         "System.IO.IOException: not enough space on the disk; volume C: at 99.7% used; processes crashed."),
    ];
    for (id, cat, day, emb, summary) in entries {
        index.add(HistoricalEntry {
            id,
            category: cat.to_string(),
            summary: summary.to_string(),
            at: SimTime::from_days(day),
            embedding: emb,
        });
    }
    let neighbors = index.top_k_diverse(
        &[0.0, 0.0],
        SimTime::from_days(100),
        &RetrievalConfig {
            k: 3,
            alpha: 0.3,
            ..RetrievalConfig::default()
        },
    );
    assert_eq!(neighbors[0].entry.category, "HubPortExhaustion");

    let prompt = PredictionPrompt::new(
        "The hub outbound probe failed with WinSock error 11001 and the UDP socket \
         count reached 15276, almost all owned by Transport.exe.",
        neighbors
            .iter()
            .map(|n| PromptOption {
                summary: n.entry.summary.as_str().into(),
                category: n.entry.category.as_str().into(),
            })
            .collect(),
    );
    let rendered = prompt.render();
    assert!(rendered.contains("A: Unseen incident."));
    assert!(rendered.contains("category: HubPortExhaustion."));

    let engine = CotEngine::new(ModelProfile::Gpt4, 1);
    let pred = engine.predict(&prompt);
    assert_eq!(pred.label, "HubPortExhaustion");
    assert!(!pred.unseen);
    assert!(pred.explanation.contains("HubPortExhaustion"));
}

#[test]
fn prompt_token_budget_is_enforced_with_real_tokenizer() {
    let corpus: Vec<String> = (0..30)
        .map(|i| format!("incident summary number {i} exception failure queue socket"))
        .collect();
    let tokenizer = BpeTokenizer::train(&corpus, 400);
    let mut prompt = PredictionPrompt::new(
        corpus[0].clone(),
        (0..200)
            .map(|i| PromptOption {
                summary: format!("{} option {i}", corpus[i % 30].clone()).into(),
                category: format!("Cat{i}").into(),
            })
            .collect(),
    );
    let dropped = prompt.truncate_to_budget(&tokenizer, 2000);
    assert!(dropped > 0, "budget should force truncation");
    assert!(prompt.token_count(&tokenizer) <= 2000);
    assert!(!prompt.options.is_empty());
}

#[test]
fn summary_prompt_carries_figure7_instruction() {
    let p = SummaryPrompt {
        diagnostic_info: "Total Probes: 2, Failed Probes: 2".into(),
    };
    let text = p.render();
    assert!(text.contains("about 120 words, no more than 140 words"));
    assert!(text.contains("Just return the summary"));
}

#[test]
fn weaker_profile_is_more_conservative_about_matching() {
    // GPT-3.5 has a higher unseen threshold: borderline matches that the
    // GPT-4 profile accepts may be declared unseen by GPT-3.5.
    assert!(ModelProfile::Gpt35.unseen_threshold() > ModelProfile::Gpt4.unseen_threshold());
    assert!(ModelProfile::Gpt35.noise() > ModelProfile::Gpt4.noise());
    assert!(ModelProfile::Gpt35.length_sensitivity() > ModelProfile::Gpt4.length_sensitivity());
}
